// Package overlay defines the common contract implemented by the DOSN
// overlay organizations of the paper's Section II-B: structured (DHT),
// unstructured (gossip/flooding), semi-structured (super-peers), hybrid, and
// server federation.
//
// Each implementation lives in a subpackage and runs on
// internal/overlay/simnet. Experiments E6/E7 (DESIGN.md) drive them through
// this interface to compare lookup cost and availability under churn.
package overlay

import (
	"errors"
	"time"
)

// Errors shared by overlay implementations.
var (
	ErrNotFound    = errors.New("overlay: key not found")
	ErrUnavailable = errors.New("overlay: no replica reachable")
	ErrNoNodes     = errors.New("overlay: overlay has no nodes")
	// ErrUnknownOrigin reports an operation originating at a node that is
	// not part of the overlay — a permanent caller error, never retryable.
	ErrUnknownOrigin = errors.New("overlay: origin not in overlay")
)

// OpStats reports the cost of one overlay operation.
type OpStats struct {
	// Hops is the number of RPC edges traversed.
	Hops int
	// Messages is the number of simulated messages exchanged.
	Messages int
	// Bytes is the simulated traffic volume.
	Bytes int
	// Latency is the simulated end-to-end delay.
	Latency time.Duration
}

// Add accumulates another operation's costs into s.
func (s *OpStats) Add(other OpStats) {
	s.Hops += other.Hops
	s.Messages += other.Messages
	s.Bytes += other.Bytes
	s.Latency += other.Latency
}

// KV is the storage interface every overlay provides: store a value under a
// key from the perspective of an originating node, and look it up again.
type KV interface {
	// Name identifies the overlay organization (for experiment output).
	Name() string
	// Store places the value in the overlay, originating at node origin.
	Store(origin string, key string, value []byte) (OpStats, error)
	// Lookup resolves the key, originating at node origin.
	Lookup(origin string, key string) ([]byte, OpStats, error)
}

// ReplicaKV is implemented by overlays that can enumerate and individually
// address a key's replica set. The resilience layer uses it for hedged
// reads: resolve the candidates once, then race fetches against several of
// them instead of walking the set serially.
type ReplicaKV interface {
	KV
	// ReplicasFor resolves the node names expected to hold key, in
	// preference order, favoring currently-reachable candidates. The stats
	// charge the routing cost of the resolution.
	ReplicasFor(origin string, key string) ([]string, OpStats, error)
	// LookupFrom fetches key directly from one named replica.
	LookupFrom(origin string, key string, replica string) ([]byte, OpStats, error)
}

// HealReport summarizes one anti-entropy repair pass.
type HealReport struct {
	// KeysScanned is the number of distinct keys examined.
	KeysScanned int
	// Repaired is the number of replica copies re-created.
	Repaired int
	// Unrepairable is the number of keys still under-replicated after the
	// pass (e.g. the re-replication push itself was dropped).
	Unrepairable int
	// Stats is the network cost of the pass.
	Stats OpStats
}

// Healer is implemented by overlays that can repair under-replicated keys
// after churn (DHT anti-entropy re-replication).
type Healer interface {
	// Heal runs one repair pass and reports what it did.
	Heal() (HealReport, error)
}

// Ticker is implemented by every layer that advances per-tick state on the
// shared experiment tick clock: DHT server-side admission gates, the
// resilience decorator's client gate / health tracker / cache TTLs, and
// the windowed telemetry collector. A driver (the scenario runtime, a
// bench loop) advances the simnet clock with TickCapacity and ticks each
// registered Ticker once per step, so "a tick" means the same instant at
// every layer — the property windowed time-series and guilty-window
// localization depend on.
type Ticker interface {
	// Tick advances one tick window.
	Tick()
}
