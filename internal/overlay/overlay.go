// Package overlay defines the common contract implemented by the DOSN
// overlay organizations of the paper's Section II-B: structured (DHT),
// unstructured (gossip/flooding), semi-structured (super-peers), hybrid, and
// server federation.
//
// Each implementation lives in a subpackage and runs on
// internal/overlay/simnet. Experiments E6/E7 (DESIGN.md) drive them through
// this interface to compare lookup cost and availability under churn.
package overlay

import (
	"errors"
	"time"
)

// Errors shared by overlay implementations.
var (
	ErrNotFound    = errors.New("overlay: key not found")
	ErrUnavailable = errors.New("overlay: no replica reachable")
	ErrNoNodes     = errors.New("overlay: overlay has no nodes")
)

// OpStats reports the cost of one overlay operation.
type OpStats struct {
	// Hops is the number of RPC edges traversed.
	Hops int
	// Messages is the number of simulated messages exchanged.
	Messages int
	// Bytes is the simulated traffic volume.
	Bytes int
	// Latency is the simulated end-to-end delay.
	Latency time.Duration
}

// KV is the storage interface every overlay provides: store a value under a
// key from the perspective of an originating node, and look it up again.
type KV interface {
	// Name identifies the overlay organization (for experiment output).
	Name() string
	// Store places the value in the overlay, originating at node origin.
	Store(origin string, key string, value []byte) (OpStats, error)
	// Lookup resolves the key, originating at node origin.
	Lookup(origin string, key string) ([]byte, OpStats, error)
}
