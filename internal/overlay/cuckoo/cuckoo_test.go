package cuckoo

import (
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

func build(t *testing.T, n int, cfg Config) (*Overlay, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(5))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	o, err := New(net, names, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o, names
}

func TestStoreLookup(t *testing.T) {
	o, names := build(t, 32, DefaultConfig())
	if _, err := o.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, _, err := o.Lookup(string(names[7]), "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Lookup: %q, %v", got, err)
	}
}

func TestPopularItemsGetCheaper(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PopularityThreshold = 2
	o, names := build(t, 64, cfg)
	o.Store(string(names[0]), "viral", []byte("v"))

	// Drive demand from many origins; record per-lookup cost.
	var costs []int
	for i := 1; i <= 20; i++ {
		_, st, err := o.Lookup(string(names[i]), "viral")
		if err != nil {
			t.Fatalf("Lookup %d: %v", i, err)
		}
		costs = append(costs, st.Hops)
	}
	early := costs[0]
	// Late lookups from nodes whose neighbors hold the item should be far
	// cheaper than the initial DHT routing.
	cheap := 0
	for _, c := range costs[10:] {
		if c <= 1 {
			cheap++
		}
	}
	if cheap == 0 {
		t.Fatalf("no late lookup was cheap; early=%d costs=%v", early, costs)
	}
}

func TestRareItemsUseDHT(t *testing.T) {
	o, names := build(t, 64, DefaultConfig())
	o.Store(string(names[0]), "rare", []byte("v"))
	_, st, err := o.Lookup(string(names[33]), "rare")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if st.Hops < 1 {
		t.Fatalf("rare lookup reported %d hops; expected DHT routing", st.Hops)
	}
}

func TestMissingKey(t *testing.T) {
	o, names := build(t, 16, DefaultConfig())
	if _, _, err := o.Lookup(string(names[0]), "missing"); err == nil {
		t.Fatal("missing key found")
	}
}

func TestUnknownOrigin(t *testing.T) {
	o, _ := build(t, 8, DefaultConfig())
	if _, _, err := o.Lookup("stranger", "k"); err == nil {
		t.Fatal("lookup from stranger succeeded")
	}
}

func TestName(t *testing.T) {
	o, _ := build(t, 4, DefaultConfig())
	if o.Name() == "" {
		t.Fatal("empty name")
	}
}
