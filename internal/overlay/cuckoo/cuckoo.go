// Package cuckoo implements a Cuckoo-style hybrid *control* overlay (paper
// Section II-B): "The hybrid control overlay of Cuckoo uses structured
// lookup for finding rare items, whereas, the unstructured lookup helps
// with the fast discovery of popular items."
//
// Popular items are proactively disseminated to a node's random neighbors
// (a gossip push keyed on observed demand), so later lookups hit a neighbor
// in one hop; rare items fall through to the DHT's O(log n) routing. The
// popularity threshold is the knob experiment E12 sweeps.
package cuckoo

import (
	"fmt"
	"sync"

	"godosn/internal/overlay"
	"godosn/internal/overlay/dht"
	"godosn/internal/overlay/simnet"
)

// Config parameterizes the hybrid control overlay.
type Config struct {
	// DHT configures the structured layer.
	DHT dht.Config
	// Degree is the number of random gossip neighbors per node.
	Degree int
	// PopularityThreshold is the access count at which an item starts being
	// pushed to neighbors.
	PopularityThreshold int
}

// DefaultConfig pushes items after 3 observed accesses.
func DefaultConfig() Config {
	return Config{DHT: dht.Config{ReplicationFactor: 2}, Degree: 4, PopularityThreshold: 3}
}

type node struct {
	name      simnet.NodeID
	neighbors []simnet.NodeID

	mu     sync.Mutex
	cached map[string][]byte
}

// Overlay is the Cuckoo-style hybrid control overlay.
type Overlay struct {
	net *simnet.Network
	cfg Config
	dht *dht.DHT

	mu    sync.Mutex
	nodes map[simnet.NodeID]*node
	// demand tracks global access counts per key (each node would track its
	// own demand; a shared counter is equivalent under uniform routing and
	// keeps the simulation simple).
	demand map[string]int
	// pushed records keys already disseminated.
	pushed map[string]bool
}

var _ overlay.KV = (*Overlay)(nil)

// gossipIdentity is the simnet identity of a node's gossip cache service.
func gossipIdentity(name simnet.NodeID) simnet.NodeID { return name + "#cuckoo" }

// New builds the overlay: a DHT plus a seeded random neighbor graph for the
// popularity push layer.
func New(net *simnet.Network, names []simnet.NodeID, cfg Config) (*Overlay, error) {
	base, err := dht.New(net, names, cfg.DHT)
	if err != nil {
		return nil, fmt.Errorf("cuckoo: building DHT layer: %w", err)
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	if cfg.Degree >= len(names) {
		cfg.Degree = len(names) - 1
	}
	o := &Overlay{
		net:    net,
		cfg:    cfg,
		dht:    base,
		nodes:  make(map[simnet.NodeID]*node, len(names)),
		demand: make(map[string]int),
		pushed: make(map[string]bool),
	}
	rng := net.Rand("cuckoo-topology")
	for _, name := range names {
		n := &node{name: name, cached: make(map[string][]byte)}
		o.nodes[name] = n
		if err := net.Register(gossipIdentity(name), o.handlerFor(n)); err != nil {
			return nil, fmt.Errorf("cuckoo: registering %s: %w", name, err)
		}
	}
	for i, name := range names {
		n := o.nodes[name]
		n.neighbors = append(n.neighbors, names[(i+1)%len(names)])
		for len(n.neighbors) < cfg.Degree {
			peer := names[rng.Intn(len(names))]
			if peer == name || containsID(n.neighbors, peer) {
				continue
			}
			n.neighbors = append(n.neighbors, peer)
		}
	}
	return o, nil
}

func containsID(list []simnet.NodeID, x simnet.NodeID) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// Name implements overlay.KV.
func (o *Overlay) Name() string { return "hybrid-control-cuckoo" }

// RPC message kinds.
const (
	kindProbe = "cuckoo.probe"
	kindPush  = "cuckoo.push"
)

type probeReq struct{ Key string }
type probeResp struct {
	Found bool
	Value []byte
}
type pushReq struct {
	Key   string
	Value []byte
}

func (o *Overlay) handlerFor(n *node) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		switch msg.Kind {
		case kindProbe:
			req, ok := msg.Payload.(probeReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("cuckoo: bad payload")
			}
			n.mu.Lock()
			v, found := n.cached[req.Key]
			n.mu.Unlock()
			resp := probeResp{Found: found}
			if found {
				resp.Value = append([]byte(nil), v...)
			}
			return simnet.Message{Kind: kindProbe, Payload: resp, Size: 8 + len(resp.Value)}, nil
		case kindPush:
			req, ok := msg.Payload.(pushReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("cuckoo: bad payload")
			}
			n.mu.Lock()
			n.cached[req.Key] = append([]byte(nil), req.Value...)
			n.mu.Unlock()
			return simnet.Message{Kind: kindPush, Size: 4}, nil
		}
		return simnet.Message{}, fmt.Errorf("cuckoo: unknown message kind %q", msg.Kind)
	}
}

// Store implements overlay.KV via the DHT layer.
func (o *Overlay) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	return o.dht.Store(origin, key, value)
}

// Lookup implements overlay.KV: popular items resolve from the gossip layer
// (own cache or a one-hop neighbor), everything else routes through the DHT.
// Items crossing the demand threshold are pushed to the caller's neighbors.
func (o *Overlay) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	o.mu.Lock()
	n := o.nodes[simnet.NodeID(origin)]
	o.mu.Unlock()
	if n == nil {
		return nil, overlay.OpStats{}, fmt.Errorf("cuckoo: origin %s not in overlay", origin)
	}
	// Local cache (popular item already pushed here).
	n.mu.Lock()
	if v, ok := n.cached[key]; ok {
		value := append([]byte(nil), v...)
		n.mu.Unlock()
		o.recordDemand(key)
		return value, overlay.OpStats{}, nil
	}
	n.mu.Unlock()

	tr := &simnet.Trace{}
	// One-hop neighbor probes for popular items.
	if o.isPopular(key) {
		for _, peer := range n.neighbors {
			reply, err := o.net.RPC(tr, gossipIdentity(n.name), gossipIdentity(peer), simnet.Message{
				Kind: kindProbe, Payload: probeReq{Key: key}, Size: len(key),
			})
			if err != nil {
				continue
			}
			if resp, ok := reply.Payload.(probeResp); ok && resp.Found {
				o.recordDemand(key)
				o.maybePush(tr, n, key, resp.Value)
				return resp.Value, stats(tr), nil
			}
		}
	}
	// Structured fallback for rare items.
	value, dhtStats, err := o.dht.Lookup(origin, key)
	total := stats(tr)
	total.Hops += dhtStats.Hops
	total.Messages += dhtStats.Messages
	total.Bytes += dhtStats.Bytes
	total.Latency += dhtStats.Latency
	if err != nil {
		return nil, total, err
	}
	o.recordDemand(key)
	o.maybePush(tr, n, key, value)
	return value, total, nil
}

// recordDemand bumps the key's observed access count.
func (o *Overlay) recordDemand(key string) {
	o.mu.Lock()
	o.demand[key]++
	o.mu.Unlock()
}

// isPopular reports whether the key has crossed the dissemination threshold.
func (o *Overlay) isPopular(key string) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.demand[key] >= o.cfg.PopularityThreshold
}

// maybePush disseminates a newly-popular item to the node's neighbors (and
// caches it locally). Push traffic is charged to the triggering lookup —
// that is the bandwidth cost of fast popular discovery.
func (o *Overlay) maybePush(tr *simnet.Trace, n *node, key string, value []byte) {
	n.mu.Lock()
	n.cached[key] = append([]byte(nil), value...)
	n.mu.Unlock()
	if !o.isPopular(key) {
		return
	}
	o.mu.Lock()
	if o.pushed[key] {
		o.mu.Unlock()
		return
	}
	o.pushed[key] = true
	o.mu.Unlock()
	for _, peer := range n.neighbors {
		//nolint:errcheck // push is best-effort gossip
		o.net.Cast(tr, gossipIdentity(n.name), gossipIdentity(peer), simnet.Message{
			Kind: kindPush, Payload: pushReq{Key: key, Value: value}, Size: len(key) + len(value),
		})
	}
}

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
