// Package hybrid implements a Cachet-style hybrid structured/unstructured
// storage overlay: a DHT base layer combined with gossip-based social
// caching.
//
// The paper (Section II-B): "As the storage overlay, Cachet uses hybrid
// structured-unstructured overlay using a DHT-based approach together with
// gossip-based caching to achieve high performance." A lookup first probes
// the node's own cache and its social neighbors' caches (one hop), falling
// back to the DHT; hits then populate the local cache, so popular content
// gets cheaper over time — the behaviour experiment E6/E7 measures.
package hybrid

import (
	"fmt"
	"sync"

	"godosn/internal/overlay"
	"godosn/internal/overlay/dht"
	"godosn/internal/overlay/simnet"
)

// Config parameterizes the hybrid overlay.
type Config struct {
	// DHT configures the structured base layer.
	DHT dht.Config
	// CacheSize bounds each node's cache entries (0 = unbounded).
	CacheSize int
	// Fanout is how many social neighbors are probed before the DHT.
	Fanout int
}

// DefaultConfig uses a replication factor of 2 and probes 3 friends.
func DefaultConfig() Config {
	return Config{DHT: dht.Config{ReplicationFactor: 2}, CacheSize: 256, Fanout: 3}
}

type cacheNode struct {
	name    simnet.NodeID
	friends []simnet.NodeID

	mu    sync.Mutex
	cache map[string][]byte
	order []string // FIFO eviction order
}

// Overlay is the hybrid DHT + social-cache overlay.
type Overlay struct {
	net *simnet.Network
	cfg Config
	dht *dht.DHT

	mu    sync.RWMutex
	nodes map[simnet.NodeID]*cacheNode
}

var _ overlay.KV = (*Overlay)(nil)

// New builds the hybrid overlay. The friends map supplies the social edges
// used for cache gossip; nodes absent from the map simply have no cache
// neighbors.
func New(net *simnet.Network, names []simnet.NodeID, friends map[simnet.NodeID][]simnet.NodeID, cfg Config) (*Overlay, error) {
	base, err := dht.New(net, names, cfg.DHT)
	if err != nil {
		return nil, fmt.Errorf("hybrid: building DHT layer: %w", err)
	}
	o := &Overlay{net: net, cfg: cfg, dht: base, nodes: make(map[simnet.NodeID]*cacheNode, len(names))}
	for _, name := range names {
		n := &cacheNode{name: name, friends: friends[name], cache: make(map[string][]byte)}
		o.nodes[name] = n
		// The cache protocol piggybacks on a distinct simnet identity so it
		// can coexist with the DHT handler for the same logical node.
		cacheID := CacheIdentity(name)
		if err := net.Register(cacheID, o.cacheHandler(n)); err != nil {
			return nil, fmt.Errorf("hybrid: registering cache for %s: %w", name, err)
		}
	}
	return o, nil
}

// CacheIdentity derives the simnet identity of a node's cache service.
// Churn injection must take a node's cache identity offline together with
// the node itself.
func CacheIdentity(name simnet.NodeID) simnet.NodeID {
	return name + "#cache"
}

// Name implements overlay.KV.
func (o *Overlay) Name() string { return "hybrid-dht-gossip-cache" }

// RPC message kinds.
const kindCacheProbe = "hybrid.cache_probe"

type probeReq struct{ Key string }
type probeResp struct {
	Found bool
	Value []byte
}

func (o *Overlay) cacheHandler(n *cacheNode) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		if msg.Kind != kindCacheProbe {
			return simnet.Message{}, fmt.Errorf("hybrid: unknown message kind %q", msg.Kind)
		}
		req, ok := msg.Payload.(probeReq)
		if !ok {
			return simnet.Message{}, fmt.Errorf("hybrid: bad payload")
		}
		n.mu.Lock()
		v, found := n.cache[req.Key]
		n.mu.Unlock()
		resp := probeResp{Found: found}
		if found {
			resp.Value = append([]byte(nil), v...)
		}
		return simnet.Message{Kind: kindCacheProbe, Payload: resp, Size: 8 + len(resp.Value)}, nil
	}
}

// cachePut inserts into a node's bounded cache.
func (o *Overlay) cachePut(n *cacheNode, key string, value []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.cache[key]; !exists {
		n.order = append(n.order, key)
		if o.cfg.CacheSize > 0 && len(n.order) > o.cfg.CacheSize {
			evict := n.order[0]
			n.order = n.order[1:]
			delete(n.cache, evict)
		}
	}
	n.cache[key] = append([]byte(nil), value...)
}

// Store implements overlay.KV: store through the DHT and seed the origin's
// cache.
func (o *Overlay) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	st, err := o.dht.Store(origin, key, value)
	if err != nil {
		return st, err
	}
	o.mu.RLock()
	n := o.nodes[simnet.NodeID(origin)]
	o.mu.RUnlock()
	if n != nil {
		o.cachePut(n, key, value)
	}
	return st, nil
}

// Lookup implements overlay.KV: local cache, then friends' caches, then the
// DHT; hits backfill the local cache.
func (o *Overlay) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	o.mu.RLock()
	n := o.nodes[simnet.NodeID(origin)]
	o.mu.RUnlock()
	if n == nil {
		return nil, overlay.OpStats{}, fmt.Errorf("hybrid: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	// Local cache.
	n.mu.Lock()
	if v, ok := n.cache[key]; ok {
		value := append([]byte(nil), v...)
		n.mu.Unlock()
		return value, overlay.OpStats{}, nil
	}
	n.mu.Unlock()

	// Social cache probes.
	tr := &simnet.Trace{}
	probed := 0
	for _, friend := range n.friends {
		if probed >= o.cfg.Fanout {
			break
		}
		probed++
		reply, err := o.net.RPC(tr, CacheIdentity(n.name), CacheIdentity(friend), simnet.Message{
			Kind:    kindCacheProbe,
			Payload: probeReq{Key: key},
			Size:    len(key),
		})
		if err != nil {
			continue
		}
		if resp, ok := reply.Payload.(probeResp); ok && resp.Found {
			o.cachePut(n, key, resp.Value)
			return resp.Value, stats(tr), nil
		}
	}

	// DHT fallback.
	value, dhtStats, err := o.dht.Lookup(origin, key)
	total := stats(tr)
	total.Hops += dhtStats.Hops
	total.Messages += dhtStats.Messages
	total.Bytes += dhtStats.Bytes
	total.Latency += dhtStats.Latency
	if err != nil {
		return nil, total, err
	}
	o.cachePut(n, key, value)
	return value, total, nil
}

// ReplicasFor implements overlay.ReplicaKV by delegating to the DHT base
// layer: hedged reads bypass the social caches and race the replica set.
func (o *Overlay) ReplicasFor(origin, key string) ([]string, overlay.OpStats, error) {
	return o.dht.ReplicasFor(origin, key)
}

// LookupFrom implements overlay.ReplicaKV via the DHT base layer.
func (o *Overlay) LookupFrom(origin, key, replica string) ([]byte, overlay.OpStats, error) {
	return o.dht.LookupFrom(origin, key, replica)
}

// Heal implements overlay.Healer: the DHT base layer re-replicates; the
// gossip caches are best-effort and need no repair.
func (o *Overlay) Heal() (overlay.HealReport, error) {
	return o.dht.Heal()
}

var (
	_ overlay.ReplicaKV = (*Overlay)(nil)
	_ overlay.Healer    = (*Overlay)(nil)
)

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
