package hybrid

import (
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

func build(t *testing.T, n int, cfg Config) (*Overlay, *simnet.Network, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(6))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	// Ring-of-friends social graph.
	friends := make(map[simnet.NodeID][]simnet.NodeID, n)
	for i, name := range names {
		friends[name] = []simnet.NodeID{
			names[(i+1)%n], names[(i+2)%n], names[(i+n-1)%n],
		}
	}
	o, err := New(net, names, friends, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o, net, names
}

func TestStoreLookup(t *testing.T) {
	o, _, names := build(t, 24, DefaultConfig())
	if _, err := o.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	got, _, err := o.Lookup(string(names[9]), "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Lookup: %v %q", err, got)
	}
}

func TestRepeatLookupHitsCache(t *testing.T) {
	o, _, names := build(t, 24, DefaultConfig())
	o.Store(string(names[0]), "k", []byte("v"))
	_, first, err := o.Lookup(string(names[9]), "k")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	_, second, err := o.Lookup(string(names[9]), "k")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if second.Messages != 0 {
		t.Fatalf("second lookup cost %d messages, want 0 (local cache)", second.Messages)
	}
	if first.Messages == 0 {
		t.Fatal("first lookup was free; cache effect untestable")
	}
}

func TestFriendCacheCheaperThanDHT(t *testing.T) {
	o, _, names := build(t, 64, DefaultConfig())
	o.Store(string(names[0]), "hot", []byte("v"))
	// node-10 fetches via DHT, populating its cache.
	if _, _, err := o.Lookup(string(names[10]), "hot"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	// node-9 has node-10 as a friend: the friend-cache probe should beat a
	// full DHT lookup in hops.
	_, viaFriend, err := o.Lookup(string(names[9]), "hot")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if viaFriend.Hops > 3 {
		t.Fatalf("friend-cache lookup took %d hops", viaFriend.Hops)
	}
}

func TestCacheEviction(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheSize = 2
	o, _, names := build(t, 8, cfg)
	origin := string(names[0])
	for i := 0; i < 5; i++ {
		o.Store(origin, fmt.Sprintf("k%d", i), []byte("v"))
	}
	n := o.nodes[names[0]]
	n.mu.Lock()
	size := len(n.cache)
	n.mu.Unlock()
	if size > 2 {
		t.Fatalf("cache grew to %d entries, bound 2", size)
	}
}

func TestMissingKey(t *testing.T) {
	o, _, names := build(t, 8, DefaultConfig())
	if _, _, err := o.Lookup(string(names[0]), "missing"); err == nil {
		t.Fatal("missing key found")
	}
}

func TestUnknownOrigin(t *testing.T) {
	o, _, _ := build(t, 4, DefaultConfig())
	if _, _, err := o.Lookup("stranger", "k"); err == nil {
		t.Fatal("Lookup from stranger succeeded")
	}
}

func TestOfflineFriendsFallBackToDHT(t *testing.T) {
	o, net, names := build(t, 32, DefaultConfig())
	o.Store(string(names[0]), "k", []byte("v"))
	// Take node-9's friends' caches offline; DHT must still serve.
	for _, f := range []int{10, 11, 8} {
		net.SetOnline(CacheIdentity(names[f]), false)
	}
	got, _, err := o.Lookup(string(names[9]), "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Lookup with offline friends: %v", err)
	}
}
