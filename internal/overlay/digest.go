package overlay

import (
	"encoding/binary"

	"godosn/internal/crypto/merkle"
)

// This file defines the Merkle anti-entropy contract between overlays and
// the integrity scrubber (internal/resilience/scrub): a replica summarizes
// its local copies of a key set as one Merkle root, so a scrubber can
// compare whole replica sets in O(1) reply bytes and fetch full values only
// for key sets whose digests diverge. Both sides must compute leaves
// identically, which is why the leaf formats live here, in the shared
// contract package.

// copyPresent and copyAbsent domain-separate a held copy from a missing one,
// so "node lost the key" and "node holds an empty value" digest differently.
const (
	copyPresent = "godosn/scrub/copy-v1\x00"
	copyAbsent  = "godosn/scrub/absent-v1\x00"
	// nonceDomain domain-separates the freshness nonce leaf that binds a
	// digest to one scrub pass.
	nonceDomain = "godosn/scrub/nonce-v1\x00"
)

// CopyLeaf hashes one replica's copy of key for digest comparison. present
// distinguishes a held (possibly empty) value from a missing key; the key is
// bound into the leaf so a value cannot stand in for another key's copy.
func CopyLeaf(key string, value []byte, present bool) [32]byte {
	if !present {
		return merkle.LeafHash([]byte(copyAbsent + key))
	}
	buf := make([]byte, 0, len(copyPresent)+len(key)+1+len(value))
	buf = append(buf, copyPresent...)
	buf = append(buf, key...)
	buf = append(buf, 0)
	buf = append(buf, value...)
	return merkle.LeafHash(buf)
}

// DigestOf folds copy leaves, in caller-fixed key order, into one Merkle
// root. Order matters: both sides must walk the same sorted key list.
func DigestOf(leaves [][32]byte) [32]byte {
	t := &merkle.Tree{}
	for _, l := range leaves {
		t.AppendLeafHash(l)
	}
	return t.Root()
}

// NoncedDigestOf is DigestOf with the scrub pass's freshness nonce bound in
// as the first leaf. The nonce forces a replica to commit per pass: a
// Byzantine node replaying an old-but-matching digest reply answers for a
// stale nonce, so its root diverges from the honest replicas' and the
// scrubber drills down within the same pass instead of one round late.
func NoncedDigestOf(nonce uint64, leaves [][32]byte) [32]byte {
	t := &merkle.Tree{}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], nonce)
	t.AppendLeafHash(merkle.LeafHash(append([]byte(nonceDomain), buf[:]...)))
	for _, l := range leaves {
		t.AppendLeafHash(l)
	}
	return t.Root()
}

// RepairKV is implemented by overlays that can write a value directly onto
// one named replica, bypassing placement. The integrity scrubber uses it to
// push a verified canonical copy over a divergent or missing one.
type RepairKV interface {
	ReplicaKV
	// StoreTo writes key=value onto the named replica only.
	StoreTo(origin string, key string, value []byte, replica string) (OpStats, error)
}

// Digest is one replica's summary of its copies of a key set. Fresh is the
// nonce-bound root (NoncedDigestOf) — the root compared across replicas, so
// a reply recorded under an earlier nonce cannot be replayed as fresh.
// State is the nonce-free root (DigestOf) over the same copies: once Fresh
// equality has established that every replica answered this pass, State is
// a stable fingerprint of the agreed replica state, identical across passes
// over unchanged data.
type Digest struct {
	Fresh [32]byte
	State [32]byte
}

// DigestKV is implemented by overlays whose replicas can summarize their
// local copies of a key set as Merkle roots (CopyLeaf/DigestOf/
// NoncedDigestOf). Digest replies travel over the same faulty network as
// everything else: a corrupted or lying digest causes a drill-down to full
// value comparison, never a false "clean".
type DigestKV interface {
	ReplicaKV
	// DigestFrom asks one named replica for its Digest over its local
	// copies of keys, walked in the given order, bound to nonce.
	DigestFrom(origin string, keys []string, nonce uint64, replica string) (Digest, OpStats, error)
}

// BatchRepairKV is implemented by overlays whose maintenance plane can move
// many keys to or from one named replica in a single message pair. The
// scrubber and healer use it to fetch a whole scrub group as one batched
// column per replica and to coalesce repair pushes per destination — the
// maintenance-plane counterpart of BatchKV's data-plane batching.
type BatchRepairKV interface {
	RepairKV
	// FetchBatchFrom reads keys from the named replica only, in one RPC.
	// The result slice aligns with keys: a key the replica does not hold
	// carries a not-found error in its slot, and one bad key never fails
	// its siblings. The top-level error reports envelope-level failure
	// (replica unreachable, reply corrupt) — per-key slots are then nil.
	FetchBatchFrom(origin string, keys []string, replica string) ([]BatchResult, OpStats, error)
	// StoreBatchTo writes keys[i]=values[i] onto the named replica only,
	// in one RPC. The error slice aligns with keys; the top-level error
	// reports envelope-level failure.
	StoreBatchTo(origin string, keys []string, values [][]byte, replica string) ([]error, OpStats, error)
}

// BatchDigestKV is implemented by overlays whose replicas can summarize many
// scrub groups in one message: one DigestBatchFrom verifies every group a
// replica participates in against that replica with a single request/reply
// pair instead of one DigestFrom per group. Replies travel over the same
// faulty network as everything else — a corrupted or replayed batch digest
// causes drill-downs, never a false "clean".
type BatchDigestKV interface {
	DigestKV
	// DigestBatchFrom asks one named replica for its Digest over each key
	// group, all bound to the same pass nonce. The result aligns with
	// groups.
	DigestBatchFrom(origin string, groups [][]string, nonce uint64, replica string) ([]Digest, OpStats, error)
}

// PlacementFilterable is implemented by overlays whose replica placement can
// exclude nodes vetoed by a health layer. The resilience layer wires its
// circuit breaker in here so quarantined (persistently corrupting) nodes
// stop receiving new copies; reads are unaffected (the breaker already
// skips them there).
type PlacementFilterable interface {
	// SetPlacementFilter installs the veto (nil restores unfiltered
	// placement). allow must be safe for concurrent use and cheap: it is
	// consulted on every placement decision.
	SetPlacementFilter(allow func(node string) bool)
}

// ReplicaRankable is implemented by overlays whose replica *selection*
// order can be steered by a health layer: ReplicasFor returns candidates in
// the ranker's order instead of canonical ring order. The resilience layer
// wires its load/health tracker in here so reads prefer lightly-loaded
// healthy replicas. Ranking reorders candidates only — it never adds or
// removes any, so correctness (which nodes hold the key) is untouched.
type ReplicaRankable interface {
	// SetReplicaRanker installs the ordering hook (nil restores canonical
	// order). rank must be safe for concurrent use, deterministic for a
	// given tracker state, and must return a permutation of its input; it
	// must not mutate the input slice.
	SetReplicaRanker(rank func(replicas []string) []string)
}
