package federation

import (
	"errors"
	"fmt"
	"testing"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

func build(t *testing.T, n int, cfg Config) (*Federation, *simnet.Network, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(4))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("user-%d", i))
	}
	f, err := New(net, names, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f, net, names
}

func TestStoreLookupAcrossServers(t *testing.T) {
	f, _, names := build(t, 20, Config{Servers: 4})
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := f.Store(string(names[i%len(names)]), key, []byte(key+"-v")); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	for i := 0; i < 30; i++ {
		key := fmt.Sprintf("k%d", i)
		got, _, err := f.Lookup(string(names[(i*3)%len(names)]), key)
		if err != nil || string(got) != key+"-v" {
			t.Fatalf("Lookup(%s): %v %q", key, err, got)
		}
	}
}

func TestConstantHops(t *testing.T) {
	// client -> home -> owner: at most 2 hops regardless of scale.
	worst := func(n int) int {
		f, _, names := build(t, n, Config{Servers: 8})
		f.Store(string(names[0]), "k", []byte("v"))
		w := 0
		for _, o := range names[:10] {
			_, st, err := f.Lookup(string(o), "k")
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if st.Hops > w {
				w = st.Hops
			}
		}
		return w
	}
	if w := worst(20); w > 2 {
		t.Fatalf("hops = %d", w)
	}
	if w := worst(500); w > 2 {
		t.Fatalf("hops = %d at scale", w)
	}
}

func TestNoGlobalView(t *testing.T) {
	// The architecture's point: no single server holds all keys.
	f, _, names := build(t, 10, Config{Servers: 4})
	for i := 0; i < 40; i++ {
		f.Store(string(names[i%10]), fmt.Sprintf("k%d", i), []byte("v"))
	}
	for _, s := range f.servers {
		s.mu.Lock()
		n := len(s.data)
		s.mu.Unlock()
		if n == 40 {
			t.Fatalf("server %s holds a complete global view", s.name)
		}
	}
}

func TestServerFailure(t *testing.T) {
	f, net, names := build(t, 10, Config{Servers: 4})
	f.Store(string(names[0]), "k", []byte("v"))
	owner := f.ownerOf("k")
	net.SetOnline(owner.name, false)
	if _, _, err := f.Lookup(string(names[1]), "k"); err == nil {
		t.Fatal("lookup succeeded with owning server offline")
	}
}

func TestHomeServerFailureCutsClient(t *testing.T) {
	f, net, names := build(t, 10, Config{Servers: 4})
	home, err := f.home(names[0])
	if err != nil {
		t.Fatalf("home: %v", err)
	}
	net.SetOnline(home, false)
	if _, err := f.Store(string(names[0]), "k", []byte("v")); err == nil {
		t.Fatal("store via offline home server succeeded")
	}
}

func TestLookupMissing(t *testing.T) {
	f, _, names := build(t, 5, DefaultConfig())
	if _, _, err := f.Lookup(string(names[0]), "missing"); !errors.Is(err, overlay.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestUnknownOrigin(t *testing.T) {
	f, _, _ := build(t, 5, DefaultConfig())
	if _, err := f.Store("stranger", "k", nil); err == nil {
		t.Fatal("Store from stranger succeeded")
	}
}

func TestServerNames(t *testing.T) {
	f, _, _ := build(t, 5, Config{Servers: 3})
	if got := len(f.ServerNames()); got != 3 {
		t.Fatalf("ServerNames len = %d", got)
	}
}

func TestEmptyFederation(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	if _, err := New(net, nil, DefaultConfig()); !errors.Is(err, overlay.ErrNoNodes) {
		t.Fatalf("got %v, want ErrNoNodes", err)
	}
}
