// Package federation implements the server-federation architecture of the
// paper's Section II-B: users' data is "distribute[d] among several servers
// which are running on separate storage entity. In this way none of them
// will have a complete global view of the private data stored in the
// system."
//
// Users are assigned to home servers (as in Diaspora pods or Mastodon
// instances); a lookup goes client -> home server -> responsible server, a
// constant three-message path.
package federation

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// Config parameterizes the federation.
type Config struct {
	// Servers is the number of federated servers (at least 1).
	Servers int
}

// DefaultConfig federates across 8 servers.
func DefaultConfig() Config { return Config{Servers: 8} }

type server struct {
	name simnet.NodeID

	mu   sync.Mutex
	data map[string][]byte
}

// Federation is the server-federation overlay.
type Federation struct {
	net     *simnet.Network
	servers []*server

	mu    sync.RWMutex
	homes map[simnet.NodeID]simnet.NodeID // client -> home server
}

var _ overlay.KV = (*Federation)(nil)

// New builds the federation: cfg.Servers synthetic server nodes are created
// and registered, and each client in names is assigned a home server.
func New(net *simnet.Network, names []simnet.NodeID, cfg Config) (*Federation, error) {
	if len(names) == 0 {
		return nil, overlay.ErrNoNodes
	}
	if cfg.Servers < 1 {
		cfg.Servers = 1
	}
	f := &Federation{net: net, homes: make(map[simnet.NodeID]simnet.NodeID)}
	for i := 0; i < cfg.Servers; i++ {
		s := &server{
			name: simnet.NodeID(fmt.Sprintf("server-%d", i)),
			data: make(map[string][]byte),
		}
		f.servers = append(f.servers, s)
		if err := net.Register(s.name, f.serverHandler(s)); err != nil {
			return nil, fmt.Errorf("federation: registering %s: %w", s.name, err)
		}
	}
	for i, name := range names {
		f.homes[name] = f.servers[i%cfg.Servers].name
		if err := net.Register(name, clientHandler()); err != nil {
			return nil, fmt.Errorf("federation: registering %s: %w", name, err)
		}
	}
	return f, nil
}

// Name implements overlay.KV.
func (f *Federation) Name() string { return "server-federation" }

// ownerOf maps a key to its responsible server.
func (f *Federation) ownerOf(key string) *server {
	h := sha256.Sum256([]byte(key))
	return f.servers[binary.BigEndian.Uint64(h[:8])%uint64(len(f.servers))]
}

// RPC message kinds.
const (
	kindPut = "federation.put"
	kindGet = "federation.get"
)

type putReq struct {
	Key   string
	Value []byte
}
type getReq struct{ Key string }
type getResp struct {
	Found bool
	Value []byte
}

func (f *Federation) serverHandler(s *server) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		switch msg.Kind {
		case kindPut:
			req, ok := msg.Payload.(putReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("federation: bad payload")
			}
			owner := f.ownerOf(req.Key)
			if owner != s {
				// Server-to-server forwarding.
				return f.net.RPC(tr, s.name, owner.name, msg)
			}
			s.mu.Lock()
			s.data[req.Key] = append([]byte(nil), req.Value...)
			s.mu.Unlock()
			return simnet.Message{Kind: kindPut, Size: 8}, nil

		case kindGet:
			req, ok := msg.Payload.(getReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("federation: bad payload")
			}
			owner := f.ownerOf(req.Key)
			if owner != s {
				return f.net.RPC(tr, s.name, owner.name, msg)
			}
			s.mu.Lock()
			v, found := s.data[req.Key]
			s.mu.Unlock()
			resp := getResp{Found: found}
			if found {
				resp.Value = append([]byte(nil), v...)
			}
			return simnet.Message{Kind: kindGet, Payload: resp, Size: 8 + len(resp.Value)}, nil
		}
		return simnet.Message{}, fmt.Errorf("federation: unknown message kind %q", msg.Kind)
	}
}

func clientHandler() simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		return simnet.Message{}, fmt.Errorf("federation: clients do not serve requests")
	}
}

// home returns the origin's home server.
func (f *Federation) home(origin simnet.NodeID) (simnet.NodeID, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	h, ok := f.homes[origin]
	if !ok {
		return "", fmt.Errorf("federation: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	return h, nil
}

// Store implements overlay.KV: client -> home server -> owning server.
func (f *Federation) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	tr := &simnet.Trace{}
	home, err := f.home(simnet.NodeID(origin))
	if err != nil {
		return overlay.OpStats{}, err
	}
	_, err = f.net.RPC(tr, simnet.NodeID(origin), home, simnet.Message{
		Kind:    kindPut,
		Payload: putReq{Key: key, Value: value},
		Size:    len(key) + len(value),
	})
	return stats(tr), err
}

// Lookup implements overlay.KV.
func (f *Federation) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	home, err := f.home(simnet.NodeID(origin))
	if err != nil {
		return nil, overlay.OpStats{}, err
	}
	reply, err := f.net.RPC(tr, simnet.NodeID(origin), home, simnet.Message{
		Kind:    kindGet,
		Payload: getReq{Key: key},
		Size:    len(key),
	})
	if err != nil {
		return nil, stats(tr), err
	}
	resp, ok := reply.Payload.(getResp)
	if !ok {
		return nil, stats(tr), fmt.Errorf("federation: bad get reply")
	}
	if !resp.Found {
		return nil, stats(tr), overlay.ErrNotFound
	}
	return resp.Value, stats(tr), nil
}

// ServerNames returns the synthetic server node IDs (for churn injection).
func (f *Federation) ServerNames() []simnet.NodeID {
	out := make([]simnet.NodeID, len(f.servers))
	for i, s := range f.servers {
		out[i] = s.name
	}
	return out
}

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
