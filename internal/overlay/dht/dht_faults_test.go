package dht

import (
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

// buildLossyDHT creates a DHT over a network with the given loss rate.
func buildLossyDHT(t *testing.T, n int, loss float64, replicas int) (*DHT, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: 21, LossRate: loss})
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: replicas})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, names
}

func TestLookupUnderMessageLoss(t *testing.T) {
	// With 10% message loss some lookups fail, but the overlay must not
	// wedge, and replication + rerouting keep the success rate usable.
	d, names := buildLossyDHT(t, 64, 0.10, 3)
	stored := 0
	for i := 0; i < 40; i++ {
		if _, err := d.Store(string(names[i%len(names)]), fmt.Sprintf("k%d", i), []byte("v")); err == nil {
			stored++
		}
	}
	if stored < 30 {
		t.Fatalf("only %d/40 stores succeeded under 10%% loss", stored)
	}
	success := 0
	attempts := 0
	for i := 0; i < 40; i++ {
		for try := 0; try < 3; try++ { // clients retry on loss
			attempts++
			if _, _, err := d.Lookup(string(names[(i*7+1)%len(names)]), fmt.Sprintf("k%d", i)); err == nil {
				success++
				break
			}
		}
	}
	if success < 30 {
		t.Fatalf("only %d/40 lookups (with retry) succeeded under 10%% loss", success)
	}
}

func TestLookupUnderMassChurn(t *testing.T) {
	// Take 40% of nodes offline after storing with replication 4: most
	// keys should still resolve via surviving replicas and rerouting.
	net := simnet.New(simnet.Config{Seed: 5})
	names := make([]simnet.NodeID, 50)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 4})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for i := 0; i < 30; i++ {
		if _, err := d.Store(string(names[i%50]), fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	rng := net.Rand("churn-test")
	offline := map[simnet.NodeID]bool{}
	for len(offline) < 20 {
		victim := names[rng.Intn(len(names))]
		if !offline[victim] {
			offline[victim] = true
			net.SetOnline(victim, false)
		}
	}
	var origin simnet.NodeID
	for _, name := range names {
		if !offline[name] {
			origin = name
			break
		}
	}
	found := 0
	for i := 0; i < 30; i++ {
		if _, _, err := d.Lookup(string(origin), fmt.Sprintf("k%d", i)); err == nil {
			found++
		}
	}
	if found < 24 { // 80% despite 40% of the network being gone
		t.Fatalf("only %d/30 keys survived 40%% churn with 4 replicas", found)
	}
}

func TestPartitionIsolatesLookups(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 3})
	names := make([]simnet.NodeID, 20)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := d.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// Partition the origin away from everyone else.
	net.SetPartition(names[5], 1)
	if _, _, err := d.Lookup(string(names[5]), "k"); err == nil {
		// Only acceptable if node-5 itself holds the key locally.
		kid := hashID("k")
		if d.byID[d.successorID(kid)].name != names[5] {
			t.Fatal("partitioned node resolved a remote key")
		}
	}
	// Heal the partition.
	net.SetPartition(names[5], 0)
	if _, _, err := d.Lookup(string(names[5]), "k"); err != nil {
		t.Fatalf("lookup after healing: %v", err)
	}
}
