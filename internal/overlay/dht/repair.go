package dht

import (
	"fmt"
	"sort"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
	"godosn/internal/telemetry"
)

// This file implements the DHT's fault-tolerance surface: crash semantics
// (volatile storage lost on simnet.Crash), per-replica addressing for
// hedged reads (overlay.ReplicaKV), and anti-entropy self-healing
// (overlay.Healer) that re-replicates under-replicated keys after churn.

var (
	_ overlay.ReplicaKV       = (*DHT)(nil)
	_ overlay.Healer          = (*DHT)(nil)
	_ overlay.SpanKV          = (*DHT)(nil)
	_ overlay.SpanHealer      = (*DHT)(nil)
	_ overlay.ReplicaRankable = (*DHT)(nil)
)

// SetReplicaRanker implements overlay.ReplicaRankable: rank reorders the
// candidate list ReplicasFor returns (nil restores canonical ring order).
// The resilience layer wires its replica-health tracker in here so hedged
// reads prefer lightly-loaded replicas. Only selection order changes —
// membership of the candidate set is still ring position and liveness.
func (d *DHT) SetReplicaRanker(rank func(names []string) []string) {
	d.mu.Lock()
	d.rankRepl = rank
	d.mu.Unlock()
}

// registerCrashHook wires a node's volatile storage to simnet crash
// injection: a crash-restart loses every key the node held.
func registerCrashHook(net *simnet.Network, n *node) {
	_ = net.OnCrash(n.name, func() {
		n.mu.Lock()
		n.data = make(map[string][]byte)
		n.mu.Unlock()
	})
}

// ReplicasFor implements overlay.ReplicaKV: it routes to the key's root and
// returns the canonical replica set followed by additional currently-online
// successors, so hedged reads have live candidates even when canonical
// replicas are down. At most 2× the replication factor names are returned.
func (d *DHT) ReplicasFor(origin, key string) ([]string, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	root, err := d.resolveRoot(tr, nil, simnet.NodeID(origin), key, hashID(key))
	if err != nil {
		return nil, stats(tr), err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.replicaPlanLocked(root), stats(tr), nil
}

// replicaPlanLocked computes the candidate list for a resolved root: the
// canonical replica set, the online extension walk, and the health ranking.
// Shared by ReplicasFor (routed root) and PlanReplicas (local hash root —
// successorsOf lands on the same successor either way). Call with d.mu held.
func (d *DHT) replicaPlanLocked(root uint64) []string {
	names := make([]string, 0, 2*d.replica)
	seen := make(map[uint64]bool, 2*d.replica)
	for _, rid := range d.successorsOf(root, d.replica) {
		seen[rid] = true
		names = append(names, string(d.byID[rid].name))
	}
	// Extend past the canonical set until d.replica online candidates are
	// found (or the ring is exhausted), mirroring where Heal re-replicates.
	// Placement-vetoed (quarantined) nodes stay in the returned list — they
	// may hold older copies — but do not count toward the online target, so
	// the extension reaches the nodes placement actually chose around them.
	online := 0
	for _, name := range names {
		if d.net.Online(simnet.NodeID(name)) && d.placementAllowed(simnet.NodeID(name)) {
			online++
		}
	}
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= root })
	for walked := 0; walked < len(d.ring) && online < d.replica && len(names) < 2*d.replica; walked++ {
		if i == len(d.ring) {
			i = 0
		}
		rid := d.ring[i]
		i++
		if seen[rid] {
			continue
		}
		seen[rid] = true
		n := d.byID[rid]
		if d.net.Online(n.name) {
			names = append(names, string(n.name))
			if d.placementAllowed(n.name) {
				online++
			}
		}
	}
	if d.rankRepl != nil {
		names = d.rankRepl(names)
	}
	return names
}

// LookupFrom implements overlay.ReplicaKV: a single direct fetch from one
// named replica, without walking the rest of the replica set.
func (d *DHT) LookupFrom(origin, key, replica string) ([]byte, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return nil, stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	reply, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindFetch,
		Payload: fetchReq{Key: key},
		Size:    len(key),
	})
	if err != nil {
		return nil, stats(tr), err
	}
	resp, ok := reply.Payload.(fetchResp)
	if !ok {
		return nil, stats(tr), fmt.Errorf("dht: bad fetch reply")
	}
	if !resp.Found {
		return nil, stats(tr), overlay.ErrNotFound
	}
	return resp.Value, stats(tr), nil
}

// liveTargets returns the first k online successors of the key's root,
// walking past offline canonical replicas — the set Heal replicates to and
// ReplicasFor extends into.
func (d *DHT) liveTargets(root uint64, k int) []*node {
	out := make([]*node, 0, k)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= root })
	for walked := 0; walked < len(d.ring) && len(out) < k; walked++ {
		if i == len(d.ring) {
			i = 0
		}
		n := d.byID[d.ring[i]]
		i++
		if d.net.Online(n.name) {
			out = append(out, n)
		}
	}
	return out
}

// Heal implements overlay.Healer: one anti-entropy pass. Every online
// node's local store is scanned (a node-local operation, free of network
// cost); each key whose live replica set is incomplete is pushed, by an
// online holder, to the online successors missing it. Re-replication RPCs
// are charged to the report's stats.
func (d *DHT) Heal() (overlay.HealReport, error) {
	return d.HealSpan(nil)
}

// HealSpan implements overlay.SpanHealer: Heal with each re-replication
// push attributed to a "repair" child span of sp (nil sp: identical
// untraced pass).
func (d *DHT) HealSpan(sp *telemetry.Span) (overlay.HealReport, error) {
	d.mu.RLock()
	// Snapshot key -> online holders from node-local scans.
	holders := make(map[string][]*node)
	for _, rid := range d.ring {
		n := d.byID[rid]
		if !d.net.Online(n.name) {
			continue
		}
		n.mu.Lock()
		for key := range n.data {
			holders[key] = append(holders[key], n)
		}
		n.mu.Unlock()
	}
	d.mu.RUnlock()

	keys := make([]string, 0, len(holders))
	for key := range holders {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic pass order

	tr := &simnet.Trace{}
	report := overlay.HealReport{KeysScanned: len(keys)}

	// Plan every push first (node-local, free of network cost): for each
	// under-replicated key, the lowest-id online holder pushes to each
	// online successor missing a copy. The plan is then either executed
	// per key (PerKeyHeal: one store RPC per push, the measured baseline)
	// or coalesced per (holder, target) pair into store_batch envelopes —
	// one message pair moves every key that pair shares.
	type healPush struct {
		key   string
		value []byte
		src   simnet.NodeID
		dst   simnet.NodeID
	}
	type healPair struct{ src, dst simnet.NodeID }
	var flat []healPush // key-major plan order (the per-key baseline order)
	var pairOrder []healPair
	planned := make(map[healPair][]healPush)
	failed := make(map[string]bool)
	for _, key := range keys {
		hs := holders[key]
		hasCopy := make(map[simnet.NodeID]bool, len(hs))
		for _, h := range hs {
			hasCopy[h.name] = true
		}
		d.mu.RLock()
		targets := d.liveTargets(hashID(key), d.replica)
		d.mu.RUnlock()
		src := hs[0]
		var value []byte
		for _, target := range targets {
			if hasCopy[target.name] {
				continue
			}
			if value == nil {
				src.mu.Lock()
				value = append([]byte(nil), src.data[key]...)
				src.mu.Unlock()
			}
			p := healPush{key: key, value: value, src: src.name, dst: target.name}
			flat = append(flat, p)
			pk := healPair{src: src.name, dst: target.name}
			if _, ok := planned[pk]; !ok {
				pairOrder = append(pairOrder, pk)
			}
			planned[pk] = append(planned[pk], p)
		}
	}
	if d.perKeyHeal {
		// One store RPC per copy, in key-major order; a drop leaves the
		// key for the next pass rather than failing the whole heal.
		for _, p := range flat {
			ptr := &simnet.Trace{}
			psp := sp.Child("repair")
			psp.Tag("key", p.key)
			psp.Tag("to", string(p.dst))
			_, err := d.net.RPC(ptr, p.src, p.dst, simnet.Message{
				Kind:    kindStore,
				Payload: storeReq{Key: p.key, Value: p.value},
				Size:    len(p.key) + len(p.value),
			})
			tr.Add(ptr)
			psp.AddLatency(ptr.Latency)
			psp.End(spanOutcome(err))
			if err == nil {
				report.Repaired++
			} else {
				failed[p.key] = true
			}
		}
		pairOrder = nil
	}
	for _, pk := range pairOrder {
		pushes := planned[pk]
		req := storeBatchReq{
			Keys:   make([]string, len(pushes)),
			Values: make([][]byte, len(pushes)),
		}
		size := batchEnvelopeOverhead
		for i, p := range pushes {
			req.Keys[i] = p.key
			req.Values[i] = p.value
			size += len(p.key) + len(p.value) + batchItemOverhead
		}
		ptr := &simnet.Trace{}
		psp := sp.Child("repair")
		psp.Tag("to", string(pk.dst))
		psp.Tag("keys", fmt.Sprintf("%d", len(pushes)))
		_, err := d.net.RPC(ptr, pk.src, pk.dst, simnet.Message{
			Kind:    kindStoreBatch,
			Payload: req,
			Size:    size,
		})
		tr.Add(ptr)
		psp.AddLatency(ptr.Latency)
		psp.End(spanOutcome(err))
		if err == nil {
			report.Repaired += len(pushes)
		} else {
			// A dropped envelope leaves its keys for the next pass.
			for _, p := range pushes {
				failed[p.key] = true
			}
		}
	}
	for _, key := range keys {
		if failed[key] {
			report.Unrepairable++
		}
	}
	report.Stats = stats(tr)
	if report.Repaired > 0 {
		// Copies moved: memoized routes may predate the repaired layout.
		d.bumpRoutes()
	}
	return report, nil
}

// LiveCopies reports how many online nodes currently hold key — test and
// experiment introspection, free of network cost.
func (d *DHT) LiveCopies(key string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	count := 0
	for _, rid := range d.ring {
		n := d.byID[rid]
		if !d.net.Online(n.name) {
			continue
		}
		n.mu.Lock()
		_, ok := n.data[key]
		n.mu.Unlock()
		if ok {
			count++
		}
	}
	return count
}
