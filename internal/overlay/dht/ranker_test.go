package dht

import (
	"fmt"
	"reflect"
	"testing"

	"godosn/internal/overlay/simnet"
)

func TestSetReplicaRankerReordersReplicasFor(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	names := make([]simnet.NodeID, 16)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := d.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	canonical, _, err := d.ReplicasFor(string(names[0]), "k")
	if err != nil {
		t.Fatalf("ReplicasFor: %v", err)
	}
	if len(canonical) < 2 {
		t.Fatalf("need >= 2 replicas to observe ordering, got %v", canonical)
	}

	reverse := func(in []string) []string {
		out := make([]string, len(in))
		for i, name := range in {
			out[len(in)-1-i] = name
		}
		return out
	}
	d.SetReplicaRanker(reverse)
	ranked, _, err := d.ReplicasFor(string(names[0]), "k")
	if err != nil {
		t.Fatalf("ReplicasFor ranked: %v", err)
	}
	if !reflect.DeepEqual(ranked, reverse(canonical)) {
		t.Fatalf("ranked = %v, want reverse of canonical %v", ranked, canonical)
	}

	// The hook steers selection order only: the candidate set is unchanged.
	set := func(names []string) map[string]bool {
		m := make(map[string]bool, len(names))
		for _, n := range names {
			m[n] = true
		}
		return m
	}
	if !reflect.DeepEqual(set(ranked), set(canonical)) {
		t.Fatalf("ranking changed candidate membership: %v vs %v", ranked, canonical)
	}

	// nil restores canonical ring order.
	d.SetReplicaRanker(nil)
	restored, _, err := d.ReplicasFor(string(names[0]), "k")
	if err != nil {
		t.Fatalf("ReplicasFor restored: %v", err)
	}
	if !reflect.DeepEqual(restored, canonical) {
		t.Fatalf("restored = %v, want canonical %v", restored, canonical)
	}
}
