package dht

import (
	"bytes"
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

// Regression tests for byte-slice aliasing on the read and membership
// paths: a caller mutating bytes it handed in or got back must never reach
// a node's stored state, and no two nodes' stores may share backing arrays
// (a handoff that aliased them would let one node's corruption silently
// become another's).

func aliasDHT(t *testing.T, peers int) (*DHT, []simnet.NodeID, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: 55})
	names := make([]simnet.NodeID, peers)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, names, net
}

func TestStoreDetachesCallerSlice(t *testing.T) {
	d, names, _ := aliasDHT(t, 12)
	client := string(names[0])
	buf := []byte("caller-owned buffer")
	orig := append([]byte(nil), buf...)
	if _, err := d.Store(client, "k", buf); err != nil {
		t.Fatalf("Store: %v", err)
	}
	buf[0] ^= 0xFF
	v, _, err := d.Lookup(client, "k")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if !bytes.Equal(v, orig) {
		t.Fatal("mutating the Store slice corrupted the stored value")
	}
}

func TestLookupAndLookupFromReturnDetachedBytes(t *testing.T) {
	d, names, _ := aliasDHT(t, 12)
	client := string(names[0])
	orig := []byte("stored value bytes")
	if _, err := d.Store(client, "k", append([]byte(nil), orig...)); err != nil {
		t.Fatalf("Store: %v", err)
	}
	v, _, err := d.Lookup(client, "k")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	v[0] ^= 0xFF
	if v2, _, err := d.Lookup(client, "k"); err != nil || !bytes.Equal(v2, orig) {
		t.Fatalf("mutating a Lookup result corrupted a re-read: %v %q", err, v2)
	}
	replicas, _, err := d.ReplicasFor(client, "k")
	if err != nil {
		t.Fatalf("ReplicasFor: %v", err)
	}
	for _, r := range replicas {
		rv, _, err := d.LookupFrom(client, "k", r)
		if err != nil {
			t.Fatalf("LookupFrom(%s): %v", r, err)
		}
		rv[1] ^= 0xFF
	}
	for _, r := range replicas {
		rv, _, err := d.LookupFrom(client, "k", r)
		if err != nil || !bytes.Equal(rv, orig) {
			t.Fatalf("mutating a LookupFrom result corrupted replica %s: %v %q", r, err, rv)
		}
	}
}

func TestMembershipHandoffNeverAliasesStores(t *testing.T) {
	d, names, _ := aliasDHT(t, 12)
	client := string(names[0])
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		if _, err := d.Store(client, keys[i], []byte("replicated value")); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	// Join and Leave move key ranges between nodes — the handoffs most at
	// risk of sharing backing arrays.
	if err := d.Join("joiner"); err != nil {
		t.Fatalf("Join: %v", err)
	}
	if err := d.Leave(names[5]); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	// Corrupt every copy each node holds, one node at a time, and verify
	// no other node's copy moves with it: stores must be fully independent.
	all := append([]string{"joiner"}, func() []string {
		out := make([]string, 0, len(names))
		for _, n := range names {
			if n != names[5] {
				out = append(out, string(n))
			}
		}
		return out
	}()...)
	for _, key := range keys {
		var holders []string
		for _, n := range all {
			if d.Holds(n, key) {
				holders = append(holders, n)
			}
		}
		if len(holders) < 2 {
			continue
		}
		victim := holders[0]
		d.CorruptStored(victim, key, func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		})
		for _, other := range holders[1:] {
			v, _, err := d.LookupFrom(client, key, other)
			if err != nil {
				t.Fatalf("LookupFrom(%s, %s): %v", other, key, err)
			}
			if !bytes.Equal(v, []byte("replicated value")) {
				t.Fatalf("corrupting %s's copy of %s bled into %s's copy — stores share backing arrays", victim, key, other)
			}
		}
		// Heal the victim back so later keys see clean state.
		d.CorruptStored(victim, key, func(b []byte) []byte {
			b[0] ^= 0xFF
			return b
		})
	}
}
