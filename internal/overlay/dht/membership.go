package dht

import (
	"fmt"
	"sort"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// This file implements dynamic membership: nodes joining and leaving the
// ring after construction, with key handoff and routing-state rebuild. The
// simulator rebuilds finger tables from the global view (the conventional
// shortcut for Chord's stabilization protocol); what is preserved is the
// observable behaviour — keys stay resolvable across membership changes.

// Join adds a node to the ring: it registers with the network, takes over
// the key range it now succeeds, and routing state is refreshed.
func (d *DHT) Join(name simnet.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.names[name]; ok {
		return fmt.Errorf("dht: %s already joined", name)
	}
	id := hashID(string(name))
	for {
		if _, dup := d.byID[id]; !dup {
			break
		}
		id++
	}
	n := &node{id: id, name: name, data: make(map[string][]byte)}
	if err := d.net.Register(name, d.handlerFor(n)); err != nil {
		return fmt.Errorf("dht: registering %s: %w", name, err)
	}
	registerCrashHook(d.net, n)
	d.byID[id] = n
	d.names[name] = n
	d.ring = append(d.ring, id)
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i] < d.ring[j] })

	// Key handoff: the new node takes keys from its successor that now
	// hash into its range (predecessor, id].
	succID := d.successorID(id + 1)
	if succ := d.byID[succID]; succ != nil && succ != n {
		pred := d.predecessorID(id)
		succ.mu.Lock()
		for key, value := range succ.data {
			if inInterval(hashID(key), pred, id) {
				n.mu.Lock()
				// Copy on handoff: the two nodes' stores must never alias
				// the same backing array.
				n.data[key] = append([]byte(nil), value...)
				n.mu.Unlock()
				delete(succ.data, key)
			}
		}
		succ.mu.Unlock()
	}
	d.rebuildFingers()
	d.bumpRoutes() // memoized routes predate the new node's range
	return nil
}

// Leave removes a node gracefully: its keys are handed to its successor and
// routing state is refreshed. Ungraceful departures are modeled with
// simnet.SetOnline instead (no handoff — that is what replication is for).
func (d *DHT) Leave(name simnet.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.names[name]
	if !ok {
		return fmt.Errorf("dht: %s not in ring", name)
	}
	if len(d.ring) == 1 {
		return overlay.ErrNoNodes
	}
	// Remove from the ring first so the successor computation skips it.
	idx := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= n.id })
	d.ring = append(d.ring[:idx], d.ring[idx+1:]...)
	delete(d.byID, n.id)
	delete(d.names, name)

	succID := d.successorID(n.id)
	if succ := d.byID[succID]; succ != nil {
		n.mu.Lock()
		succ.mu.Lock()
		for key, value := range n.data {
			succ.data[key] = append([]byte(nil), value...)
		}
		succ.mu.Unlock()
		n.data = make(map[string][]byte)
		n.mu.Unlock()
	}
	d.net.SetOnline(name, false)
	d.rebuildFingers()
	d.bumpRoutes() // memoized routes may point at the departed node
	return nil
}

// predecessorID returns the first ring node id counter-clockwise from
// target (exclusive).
func (d *DHT) predecessorID(target uint64) uint64 {
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= target })
	if i == 0 {
		return d.ring[len(d.ring)-1]
	}
	return d.ring[i-1]
}

// Size returns the current ring size.
func (d *DHT) Size() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ring)
}
