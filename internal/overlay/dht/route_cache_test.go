package dht

import (
	"bytes"
	"fmt"
	"testing"

	"godosn/internal/cache"
	"godosn/internal/overlay/simnet"
	"godosn/internal/telemetry"
)

// Route-cache tests: memoized key → root resolution must cut routing cost
// on repeat lookups without ever serving a successor set that excludes the
// key's current holder — across graceful membership changes and seeded
// Markov churn with a warm cache.

func cachedDHT(t *testing.T, peers int, capacity int) (*DHT, []simnet.NodeID, *simnet.Network) {
	t.Helper()
	net := simnet.New(simnet.Config{Seed: 55})
	names := make([]simnet.NodeID, peers)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{
		ReplicationFactor: 3,
		RouteCache:        cache.Config{Capacity: capacity, Shards: 4, Seed: 55},
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, names, net
}

func TestRouteCacheCutsRepeatLookupCost(t *testing.T) {
	d, names, _ := cachedDHT(t, 16, 128)
	client := string(names[0])
	keys := make([]string, 20)
	for i := range keys {
		keys[i] = fmt.Sprintf("hot-%d", i)
		if _, err := d.Store(client, keys[i], []byte("v-"+keys[i])); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	pass := func() (vals [][]byte, messages int) {
		for _, k := range keys {
			v, st, err := d.Lookup(client, k)
			if err != nil {
				t.Fatalf("Lookup(%s): %v", k, err)
			}
			vals = append(vals, v)
			messages += st.Messages
		}
		return vals, messages
	}
	// The stores above warmed the route cache; drop it so the first pass
	// is genuinely cold.
	d.InvalidateRoutes()
	coldVals, coldMsgs := pass()
	warmVals, warmMsgs := pass()
	for i := range coldVals {
		if !bytes.Equal(coldVals[i], warmVals[i]) {
			t.Fatalf("cached lookup of %s returned different bytes: %q vs %q", keys[i], coldVals[i], warmVals[i])
		}
	}
	if warmMsgs >= coldMsgs {
		t.Fatalf("warm pass should cost fewer messages: cold %d, warm %d", coldMsgs, warmMsgs)
	}
	st := d.RouteCacheStats()
	if st.Hits < int64(len(keys)) {
		t.Fatalf("route cache hits = %d; want >= %d (%+v)", st.Hits, len(keys), st)
	}
}

func TestRouteCacheResultsMatchUncached(t *testing.T) {
	build := func(capacity int) (*DHT, string) {
		net := simnet.New(simnet.Config{Seed: 7})
		names := make([]simnet.NodeID, 16)
		for i := range names {
			names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
		}
		d, err := New(net, names, Config{
			ReplicationFactor: 3,
			RouteCache:        cache.Config{Capacity: capacity, Shards: 4, Seed: 7},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return d, string(names[0])
	}
	cached, cc := build(256)
	bare, bc := build(0)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("k%d", i)
		v := []byte(fmt.Sprintf("v%d", i))
		if _, err := cached.Store(cc, k, v); err != nil {
			t.Fatalf("cached Store: %v", err)
		}
		if _, err := bare.Store(bc, k, v); err != nil {
			t.Fatalf("bare Store: %v", err)
		}
	}
	// Zipf-ish repeat reads: every value must be byte-identical either way.
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("k%d", (i*i)%30)
		cv, _, cerr := cached.Lookup(cc, k)
		bv, _, berr := bare.Lookup(bc, k)
		if (cerr == nil) != (berr == nil) {
			t.Fatalf("lookup %s: cached err %v, bare err %v", k, cerr, berr)
		}
		if !bytes.Equal(cv, bv) {
			t.Fatalf("lookup %s: cached %q != bare %q", k, cv, bv)
		}
	}
	if cached.RouteCacheStats().Hits == 0 {
		t.Fatalf("cached arm never hit")
	}
}

func TestRouteCacheSpanRecordsCacheChild(t *testing.T) {
	d, names, _ := cachedDHT(t, 12, 64)
	client := string(names[0])
	if _, err := d.Store(client, "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, _, err := d.Lookup(client, "k"); err != nil {
		t.Fatalf("prime Lookup: %v", err)
	}
	sp := telemetry.NewSpan("get")
	if _, _, err := d.LookupSpan(sp, client, "k"); err != nil {
		t.Fatalf("LookupSpan: %v", err)
	}
	var outcome string
	sp.Walk(func(_ int, s *telemetry.Span) {
		if s.Name == "cache" {
			outcome = s.Outcome
		}
	})
	if outcome != "hit" {
		t.Fatalf("warm traced lookup should record a cache child with outcome hit; got %q", outcome)
	}
}

func TestRouteCacheTelemetryCounters(t *testing.T) {
	d, names, _ := cachedDHT(t, 12, 64)
	reg := telemetry.NewRegistry()
	d.SetTelemetry(reg)
	client := string(names[0])
	if _, err := d.Store(client, "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := d.Lookup(client, "k"); err != nil {
			t.Fatalf("Lookup: %v", err)
		}
	}
	got := map[string]int64{}
	for _, c := range reg.Snapshot().Counters {
		got[c.Name] = c.Value
	}
	if got["dht_route_cache_hits_total"] < 2 || got["dht_route_cache_misses_total"] < 1 {
		t.Fatalf("route cache counters not mirrored: %v", got)
	}
}

// TestRouteCacheNeverServesStaleHolderUnderChurn is the ISSUE 5 churn
// regression: seeded Markov churn plus graceful membership handoffs run
// against two identically seeded rings — one with a warm route cache, one
// without — and the cached arm must never do worse: wherever the uncached
// arm resolves a key, the cached arm must resolve it to identical bytes
// (a failure or mismatch there means a memoized route excluded the key's
// current holder). The cached arm resolving where the uncached arm's route
// walk died on an offline hop is allowed — a fresh hit routes around dead
// fingers, it cannot be stale.
func TestRouteCacheNeverServesStaleHolderUnderChurn(t *testing.T) {
	build := func(capacity int) (*DHT, []simnet.NodeID, *simnet.Network) {
		net := simnet.New(simnet.Config{Seed: 55})
		names := make([]simnet.NodeID, 16)
		for i := range names {
			names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
		}
		d, err := New(net, names, Config{
			ReplicationFactor: 3,
			RouteCache:        cache.Config{Capacity: capacity, Shards: 4, Seed: 55},
		})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		return d, names, net
	}
	cached, names, cnet := build(256)
	bare, _, bnet := build(0)
	client := string(names[0])

	keys := make([]string, 24)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%d", i)
		for _, d := range []*DHT{cached, bare} {
			if _, err := d.Store(client, keys[i], []byte("v-"+keys[i])); err != nil {
				t.Fatalf("Store: %v", err)
			}
		}
	}
	warm := func() {
		for _, k := range keys {
			cached.Lookup(client, k)
			bare.Lookup(client, k)
		}
	}
	checkAll := func(stage string) {
		for _, k := range keys {
			cv, _, cerr := cached.Lookup(client, k)
			bv, _, berr := bare.Lookup(client, k)
			if berr == nil && cerr != nil {
				t.Fatalf("%s: cached Lookup(%s) failed (%v) where uncached succeeded — stale route excluded the holder", stage, k, cerr)
			}
			if berr == nil && !bytes.Equal(cv, bv) {
				t.Fatalf("%s: cached Lookup(%s) = %q, uncached %q — stale route served wrong bytes", stage, k, cv, bv)
			}
			if cerr == nil && !bytes.Equal(cv, []byte("v-"+k)) {
				t.Fatalf("%s: cached Lookup(%s) = %q; want %q", stage, k, cv, "v-"+k)
			}
		}
	}
	warm()
	checkAll("baseline")

	// Graceful membership handoff with a warm cache: joins move key ranges
	// onto new nodes, leaves push them to successors. Here every key must
	// stay resolvable in both arms — membership changes are not failures.
	for i := 0; i < 3; i++ {
		j := simnet.NodeID(fmt.Sprintf("joiner-%d", i))
		if err := cached.Join(j); err != nil {
			t.Fatalf("Join: %v", err)
		}
		if err := bare.Join(j); err != nil {
			t.Fatalf("Join: %v", err)
		}
		checkAll(fmt.Sprintf("after join %d", i))
		warm()
	}
	if err := cached.Leave(names[5]); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := bare.Leave(names[5]); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	checkAll("after leave")
	warm()

	// Seeded Markov churn (ungraceful): identical schedules drive both
	// nets, heal passes run in lockstep, and the cached arm stays warm
	// across every tick.
	churned := make([]simnet.NodeID, 0, len(names)-2)
	for _, n := range names[2:] {
		if n != names[5] { // departed above
			churned = append(churned, n)
		}
	}
	churn := simnet.ChurnConfig{Seed: 99, Uptime: 0.7, MeanOnline: 5}
	csched, err := simnet.NewFaultSchedule(cnet, churned, churn)
	if err != nil {
		t.Fatalf("NewFaultSchedule: %v", err)
	}
	bsched, err := simnet.NewFaultSchedule(bnet, churned, churn)
	if err != nil {
		t.Fatalf("NewFaultSchedule: %v", err)
	}
	for tick := 0; tick < 20; tick++ {
		csched.Tick()
		bsched.Tick()
		if _, err := cached.Heal(); err != nil {
			t.Fatalf("cached Heal: %v", err)
		}
		if _, err := bare.Heal(); err != nil {
			t.Fatalf("bare Heal: %v", err)
		}
		checkAll(fmt.Sprintf("tick %d", tick))
	}
	csched.Restore()
	bsched.Restore()
	checkAll("after restore")
	if cached.RouteCacheStats().Hits == 0 {
		t.Fatalf("cached arm never hit — test exercised nothing")
	}
}

func TestInvalidateRoutesDropsMemoizedRoutes(t *testing.T) {
	d, names, _ := cachedDHT(t, 12, 64)
	client := string(names[0])
	if _, err := d.Store(client, "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if _, _, err := d.Lookup(client, "k"); err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	before := d.RouteCacheStats().Invalidations
	d.InvalidateRoutes()
	if d.RouteCacheStats().Invalidations != before+1 {
		t.Fatalf("InvalidateRoutes did not bump the cache generation")
	}
	// Next lookup must refill (miss), not hit.
	missesBefore := d.RouteCacheStats().Misses
	if _, _, err := d.Lookup(client, "k"); err != nil {
		t.Fatalf("Lookup after invalidate: %v", err)
	}
	if d.RouteCacheStats().Misses != missesBefore+1 {
		t.Fatalf("lookup after InvalidateRoutes should miss the route cache")
	}
}
