package dht

import (
	"fmt"
	"sort"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// This file implements the DHT's integrity-repair surface: direct
// per-replica writes (overlay.RepairKV) and Merkle digests of local copies
// (overlay.DigestKV) for the anti-entropy scrubber, placement filtering
// (overlay.PlacementFilterable) so quarantined nodes stop receiving new
// copies, and seeded chaos hooks for injecting stored-state bit rot.

var (
	_ overlay.RepairKV            = (*DHT)(nil)
	_ overlay.DigestKV            = (*DHT)(nil)
	_ overlay.PlacementFilterable = (*DHT)(nil)
)

// kindDigest asks a node for the Merkle root over its copies of a key set.
const kindDigest = "dht.digest"

// digestReq carries the key set and the scrubber's per-pass freshness
// nonce; the responder must bind the nonce into its root, so a replayed
// reply (recorded under an older nonce) cannot pass as fresh.
type digestReq struct {
	Keys  []string
	Nonce uint64
}

// digestResp carries the roots as byte slices (not arrays) deliberately: a
// Byzantine responder can then corrupt them like any other payload, which
// makes the scrubber drill down to full value comparison instead of
// trusting a lying summary. Fresh is the nonce-bound root, State the
// nonce-free one (overlay.Digest).
type digestResp struct {
	Fresh []byte
	State []byte
}

// StoreTo implements overlay.RepairKV: write key=value onto one named
// replica only, bypassing routing and placement.
func (d *DHT) StoreTo(origin, key string, value []byte, replica string) (overlay.OpStats, error) {
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	_, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindStore,
		Payload: storeReq{Key: key, Value: value},
		Size:    len(key) + len(value),
	})
	return stats(tr), err
}

// DigestFrom implements overlay.DigestKV: one RPC retrieving the Merkle
// roots (nonce-bound and plain) over the named replica's local copies of
// keys, in the given order.
func (d *DHT) DigestFrom(origin string, keys []string, nonce uint64, replica string) (overlay.Digest, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return overlay.Digest{}, stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	size := 8
	for _, k := range keys {
		size += len(k)
	}
	reply, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindDigest,
		Payload: digestReq{Keys: append([]string(nil), keys...), Nonce: nonce},
		Size:    size,
	})
	if err != nil {
		return overlay.Digest{}, stats(tr), err
	}
	resp, ok := reply.Payload.(digestResp)
	if !ok || len(resp.Fresh) != 32 || len(resp.State) != 32 {
		return overlay.Digest{}, stats(tr), fmt.Errorf("dht: bad digest reply")
	}
	var dg overlay.Digest
	copy(dg.Fresh[:], resp.Fresh)
	copy(dg.State[:], resp.State)
	return dg, stats(tr), nil
}

// localDigest computes a node's digests over its copies of keys —
// node-local handler logic, free of network cost.
func localDigest(n *node, keys []string, nonce uint64) digestResp {
	leaves := make([][32]byte, 0, len(keys))
	n.mu.Lock()
	for _, key := range keys {
		v, ok := n.data[key]
		leaves = append(leaves, overlay.CopyLeaf(key, v, ok))
	}
	n.mu.Unlock()
	fresh := overlay.NoncedDigestOf(nonce, leaves)
	state := overlay.DigestOf(leaves)
	return digestResp{Fresh: fresh[:], State: state[:]}
}

// SetPlacementFilter implements overlay.PlacementFilterable: allow vetoes
// nodes from future Store placement (nil restores canonical successor
// placement). Reads and direct repairs are unaffected.
func (d *DHT) SetPlacementFilter(allow func(node string) bool) {
	d.mu.Lock()
	d.allowPlace = allow
	d.mu.Unlock()
	d.bumpRoutes() // placement changed under memoized routes
}

// placementAllowed consults the filter; call with d.mu held.
func (d *DHT) placementAllowed(name simnet.NodeID) bool {
	return d.allowPlace == nil || d.allowPlace(string(name))
}

// placementOf returns the replica placement for a key root: the first k
// successors passing the placement filter, walking past vetoed nodes. With
// no filter this is exactly successorsOf. A filter that vetoes every node
// falls back to the canonical set — an unusable filter must not brick
// writes. Call with d.mu held (as successorsOf).
func (d *DHT) placementOf(root uint64, k int) []uint64 {
	if d.allowPlace == nil {
		return d.successorsOf(root, k)
	}
	if k > len(d.ring) {
		k = len(d.ring)
	}
	out := make([]uint64, 0, k)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= root })
	for walked := 0; walked < len(d.ring) && len(out) < k; walked++ {
		if i == len(d.ring) {
			i = 0
		}
		rid := d.ring[i]
		i++
		if d.placementAllowed(d.byID[rid].name) {
			out = append(out, rid)
		}
	}
	if len(out) == 0 {
		return d.successorsOf(root, k)
	}
	return out
}

// Holds reports whether the named node currently holds a local copy of key
// — test and experiment introspection, free of network cost.
func (d *DHT) Holds(name, key string) bool {
	d.mu.RLock()
	n := d.names[simnet.NodeID(name)]
	d.mu.RUnlock()
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.data[key]
	return ok
}

// StoredCopy returns a copy of the named node's stored bytes for key —
// test and audit introspection (e.g. a scenario's final integrity audit),
// free of network cost. The second result reports whether the node holds
// the key at all.
func (d *DHT) StoredCopy(name, key string) ([]byte, bool) {
	d.mu.RLock()
	n := d.names[simnet.NodeID(name)]
	d.mu.RUnlock()
	if n == nil {
		return nil, false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), v...), true
}

// CorruptStored mutates the named node's local copy of key in place —
// seeded bit-rot injection for chaos experiments. It reports whether the
// node held the key. The mutation happens on the stored bytes themselves
// (that is the point: the scrubber must find and repair it).
func (d *DHT) CorruptStored(name, key string, mutate func([]byte) []byte) bool {
	d.mu.RLock()
	n := d.names[simnet.NodeID(name)]
	d.mu.RUnlock()
	if n == nil {
		return false
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	v, ok := n.data[key]
	if !ok {
		return false
	}
	n.data[key] = mutate(append([]byte(nil), v...))
	return true
}
