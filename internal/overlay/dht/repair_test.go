package dht

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
	"godosn/internal/resilience"
)

// replicaNames returns the canonical replica set of a key.
func replicaNames(d *DHT, key string) []simnet.NodeID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	ids := d.successorsOf(hashID(key), d.replica)
	out := make([]simnet.NodeID, len(ids))
	for i, id := range ids {
		out[i] = d.byID[id].name
	}
	return out
}

func TestStoreIdempotentUnderAckLoss(t *testing.T) {
	// A store whose ack is lost HAS been applied. Retrying it must be
	// safe: the same key/value lands again on the same replicas, and the
	// final state is exactly one copy per replica with the right bytes.
	sawAckLost := false
	for seed := int64(0); seed < 60; seed++ {
		net := simnet.New(simnet.Config{Seed: seed, LossRate: 0.35})
		names := make([]simnet.NodeID, 16)
		for i := range names {
			names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
		}
		d, err := New(net, names, Config{ReplicationFactor: 3})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		value := []byte("payload")
		var lastErr error
		stored := false
		for attempt := 0; attempt < 8 && !stored; attempt++ {
			_, lastErr = d.Store(string(names[0]), "k", value)
			switch f := resilience.Classify(lastErr); f {
			case resilience.FaultNone:
				stored = true
			case resilience.FaultAckLost:
				sawAckLost = true // applied-but-unacked: retry must be safe
			case resilience.FaultTransient:
			default:
				t.Fatalf("seed %d: unexpected fault class %v for %v", seed, f, lastErr)
			}
		}
		if !stored {
			continue // pathologically lossy seed; the sweep has plenty more
		}
		// However many times the store (re-)landed, state must be exact.
		net.SetLossRate(0)
		got, _, err := d.Lookup(string(names[1]), "k")
		if err != nil {
			t.Fatalf("seed %d: lookup after retried store: %v", seed, err)
		}
		if !bytes.Equal(got, value) {
			t.Fatalf("seed %d: value corrupted by retries: %q", seed, got)
		}
		for _, name := range replicaNames(d, "k") {
			d.mu.RLock()
			n := d.names[name]
			d.mu.RUnlock()
			n.mu.Lock()
			v, ok := n.data["k"]
			n.mu.Unlock()
			if ok && !bytes.Equal(v, value) {
				t.Fatalf("seed %d: replica %s holds corrupted copy %q", seed, name, v)
			}
		}
	}
	if !sawAckLost {
		t.Fatal("seed sweep never produced an ack-lost store; the test proves nothing")
	}
}

func TestHealRestoresReplicationAfterPartitionHeals(t *testing.T) {
	// Keys stored during a partition reach only the reachable part of
	// their replica set. After the partition heals, an anti-entropy pass
	// must restore the full replication factor.
	net := simnet.New(simnet.Config{Seed: 17})
	names := make([]simnet.NodeID, 30)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	// Partition a third of the ring away from the store origin.
	for i := 20; i < 30; i++ {
		if err := net.SetPartition(names[i], 1); err != nil {
			t.Fatalf("SetPartition: %v", err)
		}
	}
	stored := []string{}
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := d.Store(string(names[0]), key, []byte("v")); err == nil {
			stored = append(stored, key)
		}
	}
	if len(stored) == 0 {
		t.Fatal("no store succeeded from the majority partition")
	}
	underReplicated := 0
	for _, key := range stored {
		if d.LiveCopies(key) < 3 {
			underReplicated++
		}
	}
	if underReplicated == 0 {
		t.Fatal("partition produced no under-replicated keys; test setup is wrong")
	}
	// Heal the partition, then run the repair pass.
	for i := 20; i < 30; i++ {
		if err := net.SetPartition(names[i], 0); err != nil {
			t.Fatalf("SetPartition: %v", err)
		}
	}
	report, err := d.Heal()
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if report.Repaired == 0 {
		t.Fatal("heal pass repaired nothing despite under-replicated keys")
	}
	for _, key := range stored {
		if got := d.LiveCopies(key); got < 3 {
			t.Fatalf("key %s has %d live copies after heal, want >= 3", key, got)
		}
	}
}

func TestHealRepairsCrashRestartStateLoss(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 23})
	names := make([]simnet.NodeID, 24)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := d.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	if got := d.LiveCopies("k"); got != 3 {
		t.Fatalf("fresh store has %d live copies, want 3", got)
	}
	victim := replicaNames(d, "k")[0]
	if err := net.Crash(victim); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if err := net.SetOnline(victim, true); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if got := d.LiveCopies("k"); got != 2 {
		t.Fatalf("after crash-restart %d live copies, want 2 (state lost)", got)
	}
	report, err := d.Heal()
	if err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if report.Repaired < 1 {
		t.Fatalf("heal repaired %d copies, want >= 1", report.Repaired)
	}
	if got := d.LiveCopies("k"); got != 3 {
		t.Fatalf("after heal %d live copies, want 3", got)
	}
	// The restored copy must serve reads from the repaired replica.
	v, _, err := d.LookupFrom(string(names[1]), "k", string(victim))
	if err != nil || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("repaired replica does not serve the key: %v %q", err, v)
	}
}

func TestHealPushesToLiveSuccessorsWhileReplicasDown(t *testing.T) {
	// While canonical replicas are offline, heal re-replicates onto the
	// next online successors, and ReplicasFor extends into them — the
	// path that keeps lookups succeeding mid-churn.
	net := simnet.New(simnet.Config{Seed: 29})
	names := make([]simnet.NodeID, 24)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := d.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	replicas := replicaNames(d, "k")
	var origin simnet.NodeID
pick:
	for _, name := range names {
		for _, r := range replicas {
			if name == r {
				continue pick
			}
		}
		origin = name
		break
	}
	// Take two of three canonical replicas down; heal must push copies to
	// live successors beyond the canonical set.
	for _, r := range replicas[:2] {
		if err := net.SetOnline(r, false); err != nil {
			t.Fatalf("SetOnline: %v", err)
		}
	}
	if _, err := d.Heal(); err != nil {
		t.Fatalf("Heal: %v", err)
	}
	if got := d.LiveCopies("k"); got < 3 {
		t.Fatalf("heal left %d live copies with 2 canonical replicas down, want >= 3", got)
	}
	cands, _, err := d.ReplicasFor(string(origin), "k")
	if err != nil {
		t.Fatalf("ReplicasFor: %v", err)
	}
	foundLive := false
	for _, c := range cands {
		if !net.Online(simnet.NodeID(c)) {
			continue
		}
		if v, _, err := d.LookupFrom(string(origin), "k", c); err == nil && bytes.Equal(v, []byte("v")) {
			foundLive = true
			break
		}
	}
	if !foundLive {
		t.Fatal("no online ReplicasFor candidate serves the key after heal")
	}
}

func TestLookupFromErrors(t *testing.T) {
	net := simnet.New(simnet.Config{Seed: 31})
	names := []simnet.NodeID{"a", "b", "c"}
	d, err := New(net, names, Config{ReplicationFactor: 2})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, _, err := d.LookupFrom("a", "k", "nope"); !errors.Is(err, simnet.ErrUnknownNode) {
		t.Fatalf("LookupFrom unknown replica: got %v", err)
	}
	if _, _, err := d.LookupFrom("a", "missing", "b"); !errors.Is(err, overlay.ErrNotFound) {
		t.Fatalf("LookupFrom missing key: got %v", err)
	}
}
