package dht

import (
	"sort"
	"sync"
)

// ownershipCache remembers, per learned successor root, the widest slice of
// the identifier ring observed to resolve to it. Chord ownership is the
// half-open interval (pred(R), R]: one iterative walk that resolves kid → R
// proves (kid, R] ⊆ ownership(R), so any later identifier inside that span
// is owned by R without another walk. Where the per-key route cache only
// answers for keys it has seen, this cache answers for every key hashing
// into a learned interval — after one batch has walked to each live root, a
// cold key's resolution is usually free.
//
// Staleness model: identical to the route cache. Learned intervals can only
// be wrong after the ring or the placement filter changes, so clear() is
// called from the same events that bump the route cache's generation (Join,
// Leave, repairing Heal passes, SetPlacementFilter, InvalidateRoutes).
type ownershipCache struct {
	mu     sync.Mutex
	minKid map[uint64]uint64 // root → lower bound of its learned interval
	roots  []uint64          // learned roots, sorted ascending
}

// learn records that kid resolved to root, widening root's learned interval
// when kid lies further counterclockwise than the current bound. A kid equal
// to its root is skipped: the interval (root, root] is indistinguishable
// from the whole ring.
func (c *ownershipCache) learn(kid, root uint64) {
	if kid == root {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.minKid[root]
	if !ok {
		if c.minKid == nil {
			c.minKid = make(map[uint64]uint64)
		}
		c.minKid[root] = kid
		i := sort.Search(len(c.roots), func(i int) bool { return c.roots[i] >= root })
		c.roots = append(c.roots, 0)
		copy(c.roots[i+1:], c.roots[i:])
		c.roots[i] = root
		return
	}
	// kid widens the interval when the current bound lies inside (kid, root].
	if inInterval(m, kid, root) {
		c.minKid[root] = kid
	}
}

// lookup resolves kid against the learned intervals. Only kid's circular
// successor among the learned roots can own it, so one binary search
// decides.
func (c *ownershipCache) lookup(kid uint64) (uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.roots) == 0 {
		return 0, false
	}
	i := sort.Search(len(c.roots), func(i int) bool { return c.roots[i] >= kid })
	root := c.roots[i%len(c.roots)] // wrap: past the last root, the first one succeeds kid
	if kid == root {
		return root, true
	}
	m := c.minKid[root]
	if kid == m || inInterval(kid, m, root) {
		return root, true
	}
	return 0, false
}

// clear forgets every learned interval.
func (c *ownershipCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.minKid = nil
	c.roots = nil
}

// bumpRoutes invalidates both routing memoizations together: the per-key
// route cache (generation bump) and the learned ownership intervals. Every
// ring or placement mutation must go through here — a stale interval is
// exactly as wrong as a stale cached route.
func (d *DHT) bumpRoutes() {
	d.routes.BumpGeneration()
	d.ownership.clear()
}
