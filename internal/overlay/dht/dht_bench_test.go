package dht

// Microbenchmarks for the DHT hot path: Put (Store) and Get (Lookup) on a
// lossless simulated network, at serial replica contact and at concurrent
// fan-out (FanoutWorkers = ReplicationFactor).

import (
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

const (
	benchNodes    = 64
	benchReplicas = 3
	benchPreload  = 256
)

func newBenchDHT(b *testing.B, fanout int) (*DHT, []simnet.NodeID) {
	b.Helper()
	net := simnet.New(simnet.DefaultConfig(4242))
	names := make([]simnet.NodeID, benchNodes)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{ReplicationFactor: benchReplicas, FanoutWorkers: fanout})
	if err != nil {
		b.Fatal(err)
	}
	return d, names
}

func benchFanouts() map[string]int {
	return map[string]int{"serial": 1, "fanout": benchReplicas}
}

func BenchmarkDHTPut(b *testing.B) {
	for label, fanout := range benchFanouts() {
		b.Run(label, func(b *testing.B) {
			d, names := newBenchDHT(b, fanout)
			client := string(names[0])
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := d.Store(client, fmt.Sprintf("k%d", i), []byte("benchmark value payload")); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkDHTGet(b *testing.B) {
	for label, fanout := range benchFanouts() {
		b.Run(label, func(b *testing.B) {
			d, names := newBenchDHT(b, fanout)
			client := string(names[0])
			for i := 0; i < benchPreload; i++ {
				if _, err := d.Store(client, fmt.Sprintf("k%d", i), []byte("benchmark value payload")); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := d.Lookup(client, fmt.Sprintf("k%d", i%benchPreload)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
