// Package dht implements a Chord-style structured overlay with finger
// tables, successor-list replication, and iterative O(log n) lookups.
//
// The paper (Section II-B) notes that in structured DOSNs "queries will be
// resolved in a limited number of steps" and that "most of the recent DOSNs
// use structured organization and distributed hash tables (DHTs) for the
// lookup service" (PrPl, PeerSoN, Safebook, Cachet). This package is that
// lookup/storage substrate; experiment E6 measures its logarithmic hop
// growth against the other organizations.
package dht

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"godosn/internal/cache"
	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
	"godosn/internal/parallel"
	"godosn/internal/resilience/load"
	"godosn/internal/telemetry"
)

// ringBits is the identifier space size (2^64 ring).
const ringBits = 64

// hashID maps a string to a point on the ring.
func hashID(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// node is one DHT participant.
type node struct {
	id     uint64
	name   simnet.NodeID
	finger []uint64 // finger[i] = id of successor(id + 2^i)

	mu   sync.Mutex
	data map[string][]byte
}

// DHT is a Chord ring over a simnet. It is safe for concurrent use after
// Build.
type DHT struct {
	net        *simnet.Network
	replica    int
	fanout     int
	perKeyHeal bool

	mu         sync.RWMutex
	byID       map[uint64]*node
	ring       []uint64 // sorted node ids
	names      map[simnet.NodeID]*node
	allowPlace func(node string) bool        // placement veto (integrity.go); nil = canonical
	rankRepl   func(names []string) []string // replica-selection order (repair.go); nil = ring order

	routes    *cache.Cache[uint64] // key → successor root (routecache.go); nil = uncached
	ownership ownershipCache       // learned successor intervals (ownership.go)
	gates     *nodeGates           // server-side admission (gate.go); nil = admit everything
}

var _ overlay.KV = (*DHT)(nil)

// Config parameterizes the DHT.
type Config struct {
	// ReplicationFactor is the number of successor replicas per key (>= 1).
	ReplicationFactor int
	// FanoutWorkers bounds concurrent replica contact in Store/Lookup.
	// 0 or 1 (the default) preserves the serial loop: replicas are
	// contacted one after another and a Lookup stops at the first hit.
	// With more workers all replicas are contacted concurrently: message,
	// byte, and hop accounting is unchanged (sums), while the operation's
	// simulated latency charges the slowest concurrent branch (max) instead
	// of the serial sum. On a lossy network the assignment of rng-driven
	// drops to individual messages becomes scheduling-dependent (the
	// aggregate loss rate is unchanged), so seeded fault experiments should
	// keep the serial default.
	FanoutWorkers int
	// RouteCache memoizes key → successor-root resolution (routecache.go).
	// The zero value (Capacity 0) disables it, preserving the exact RPC
	// and seeded-RNG sequence of an uncached DHT. A cache hit skips the
	// routing walk: fewer messages, and on a lossy network fewer RNG draws
	// — so seeded fault experiments comparing against uncached baselines
	// must assert invariants, not per-op equality.
	RouteCache cache.Config
	// NodeGate puts a server-side admission gate (gate.go) in front of
	// every node's data-plane RPCs (store/fetch and batch forms): requests
	// beyond the per-tick budget queue, then shed with load.ErrShed —
	// FaultOverload to the resilience layer, so callers retry elsewhere.
	// Routing and digest RPCs are exempt. Advance the gates with
	// TickGates. The zero value (PerTick 0) disables server-side gating.
	NodeGate load.GateConfig
	// PerKeyHeal forces Heal to push every re-replicated copy in its own
	// store RPC (the pre-batching behavior) instead of coalescing pushes
	// per (holder, target) pair into store_batch envelopes — the measured
	// baseline for E26.
	PerKeyHeal bool
}

// New creates a DHT over the given nodes and builds routing state.
func New(net *simnet.Network, nodes []simnet.NodeID, cfg Config) (*DHT, error) {
	if len(nodes) == 0 {
		return nil, overlay.ErrNoNodes
	}
	if cfg.ReplicationFactor < 1 {
		cfg.ReplicationFactor = 1
	}
	if cfg.FanoutWorkers < 1 {
		cfg.FanoutWorkers = 1
	}
	d := &DHT{
		net:        net,
		replica:    cfg.ReplicationFactor,
		fanout:     cfg.FanoutWorkers,
		perKeyHeal: cfg.PerKeyHeal,
		byID:       make(map[uint64]*node, len(nodes)),
		names:      make(map[simnet.NodeID]*node, len(nodes)),
		routes:     cache.New[uint64](cfg.RouteCache),
		gates:      newNodeGates(cfg.NodeGate, nodes),
	}
	// A memoized route is the key string plus an 8-byte root — the charge
	// against any shared byte budget (cache.Config.Budget).
	d.routes.SetSizer(func(key string, _ uint64) int { return len(key) + 8 })
	for _, name := range nodes {
		id := hashID(string(name))
		for {
			if _, dup := d.byID[id]; !dup {
				break
			}
			id++ // resolve improbable collisions deterministically
		}
		n := &node{id: id, name: name, data: make(map[string][]byte)}
		d.byID[id] = n
		d.names[name] = n
		d.ring = append(d.ring, id)
		if err := net.Register(name, d.handlerFor(n)); err != nil {
			return nil, fmt.Errorf("dht: registering %s: %w", name, err)
		}
		registerCrashHook(net, n)
	}
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i] < d.ring[j] })
	d.rebuildFingers()
	return d, nil
}

// Name implements overlay.KV.
func (d *DHT) Name() string { return "structured-dht" }

// rebuildFingers recomputes every node's finger table from the global ring
// view, as simulators conventionally do in place of the incremental Chord
// join protocol.
func (d *DHT) rebuildFingers() {
	for _, n := range d.byID {
		n.finger = make([]uint64, ringBits)
		for i := 0; i < ringBits; i++ {
			target := n.id + (uint64(1) << uint(i))
			n.finger[i] = d.successorID(target)
		}
	}
}

// successorID returns the first ring node id clockwise from target.
func (d *DHT) successorID(target uint64) uint64 {
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= target })
	if i == len(d.ring) {
		i = 0
	}
	return d.ring[i]
}

// successorsOf returns up to k distinct node ids clockwise from target.
func (d *DHT) successorsOf(target uint64, k int) []uint64 {
	if k > len(d.ring) {
		k = len(d.ring)
	}
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i] >= target })
	out := make([]uint64, 0, k)
	for len(out) < k {
		if i == len(d.ring) {
			i = 0
		}
		out = append(out, d.ring[i])
		i++
	}
	return out
}

// inInterval reports whether x lies in the half-open clockwise interval
// (a, b] on the ring.
func inInterval(x, a, b uint64) bool {
	if a < b {
		return x > a && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true // a == b: full circle
}

// closestPrecedingFinger returns the node's best routing step toward key.
func (n *node) closestPrecedingFinger(key uint64) uint64 {
	for i := ringBits - 1; i >= 0; i-- {
		f := n.finger[i]
		if f != n.id && inInterval(f, n.id, key-1) {
			return f
		}
	}
	return n.id
}

// RPC message kinds.
const (
	kindFindSuccessor = "dht.find_successor"
	kindStore         = "dht.store"
	kindFetch         = "dht.fetch"
)

type findSuccessorReq struct{ Key uint64 }
type findSuccessorResp struct {
	// Done reports the successor was found; otherwise Next is the closest
	// preceding node to continue the iterative lookup at.
	Done bool
	Node uint64
	Next uint64
}
type storeReq struct {
	Key   string
	Value []byte
}
type fetchReq struct{ Key string }
type fetchResp struct {
	Found bool
	Value []byte
}

// handlerFor builds the simnet handler executing node-local RPC logic.
func (d *DHT) handlerFor(n *node) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		switch msg.Kind {
		case kindStore, kindFetch, kindStoreBatch, kindFetchBatch:
			// Data-plane admission (gate.go): routing and digest kinds
			// stay exempt so congestion never masquerades as membership
			// loss.
			if err := d.gates.admit(n.name, tr); err != nil {
				return simnet.Message{}, err
			}
		}
		switch msg.Kind {
		case kindFindSuccessor:
			req, ok := msg.Payload.(findSuccessorReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			d.mu.RLock()
			succ := d.successorID(n.id + 1)
			d.mu.RUnlock()
			if inInterval(req.Key, n.id, succ) {
				return simnet.Message{Kind: msg.Kind, Payload: findSuccessorResp{Done: true, Node: succ}, Size: 24}, nil
			}
			next := n.closestPrecedingFinger(req.Key)
			if next == n.id {
				return simnet.Message{Kind: msg.Kind, Payload: findSuccessorResp{Done: true, Node: succ}, Size: 24}, nil
			}
			return simnet.Message{Kind: msg.Kind, Payload: findSuccessorResp{Next: next}, Size: 24}, nil

		case kindStore:
			req, ok := msg.Payload.(storeReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			n.mu.Lock()
			n.data[req.Key] = append([]byte(nil), req.Value...)
			n.mu.Unlock()
			return simnet.Message{Kind: msg.Kind, Size: 8}, nil

		case kindFetch:
			req, ok := msg.Payload.(fetchReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			n.mu.Lock()
			v, found := n.data[req.Key]
			n.mu.Unlock()
			resp := fetchResp{Found: found}
			if found {
				resp.Value = append([]byte(nil), v...)
			}
			return simnet.Message{Kind: msg.Kind, Payload: resp, Size: 8 + len(resp.Value)}, nil

		case kindDigest:
			req, ok := msg.Payload.(digestReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			return simnet.Message{Kind: msg.Kind, Payload: localDigest(n, req.Keys, req.Nonce), Size: 64}, nil

		case kindDigestBatch:
			req, ok := msg.Payload.(digestBatchReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			return handleDigestBatch(n, req)

		case kindStoreBatch:
			req, ok := msg.Payload.(storeBatchReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			return handleStoreBatch(n, req)

		case kindFetchBatch:
			req, ok := msg.Payload.(fetchBatchReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("dht: bad payload for %s", msg.Kind)
			}
			return handleFetchBatch(n, req)
		}
		return simnet.Message{}, fmt.Errorf("dht: unknown message kind %q", msg.Kind)
	}
}

// findSuccessor runs the iterative Chord lookup from the origin node,
// charging each routing step to the trace.
func (d *DHT) findSuccessor(tr *simnet.Trace, origin simnet.NodeID, key uint64) (uint64, error) {
	d.mu.RLock()
	cur := d.names[origin]
	d.mu.RUnlock()
	if cur == nil {
		return 0, fmt.Errorf("dht: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	// Local shortcut: origin answers from its own routing state first.
	d.mu.RLock()
	succ := d.successorID(cur.id + 1)
	d.mu.RUnlock()
	if inInterval(key, cur.id, succ) {
		return succ, nil
	}
	target := cur.closestPrecedingFinger(key)
	for step := 0; step < 2*ringBits; step++ {
		d.mu.RLock()
		targetNode := d.byID[target]
		d.mu.RUnlock()
		if targetNode == nil {
			return 0, overlay.ErrUnavailable
		}
		reply, err := d.net.RPC(tr, origin, targetNode.name, simnet.Message{
			Kind:    kindFindSuccessor,
			Payload: findSuccessorReq{Key: key},
			Size:    16,
		})
		if err != nil {
			// Route around an unreachable hop: fall back to its ring
			// successor, as Chord's failure handling would after a timeout.
			d.mu.RLock()
			next := d.successorID(target + 1)
			d.mu.RUnlock()
			if next == target {
				return 0, overlay.ErrUnavailable
			}
			// If stepping from the dead node to its successor crosses the
			// key, that successor IS the key's successor — conclude rather
			// than overshoot and ping-pong around the ring.
			if inInterval(key, target, next) {
				return next, nil
			}
			target = next
			continue
		}
		resp, ok := reply.Payload.(findSuccessorResp)
		if !ok {
			return 0, fmt.Errorf("dht: bad find_successor reply")
		}
		if resp.Done {
			return resp.Node, nil
		}
		target = resp.Next
	}
	return 0, fmt.Errorf("dht: lookup did not converge for key %d", key)
}

// Store implements overlay.KV: the value is written to the key's successor
// and its replica set.
func (d *DHT) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	return d.StoreSpan(nil, origin, key, value)
}

// StoreSpan implements overlay.SpanKV: Store with the routing step and each
// replica write attributed to child spans of sp (nil sp: identical untraced
// operation).
func (d *DHT) StoreSpan(sp *telemetry.Span, origin, key string, value []byte) (overlay.OpStats, error) {
	sp.Tag("key", key)
	tr := &simnet.Trace{}
	kid := hashID(key)
	rtr := &simnet.Trace{}
	route := sp.Child("route")
	root, err := d.resolveRoot(rtr, route, simnet.NodeID(origin), key, kid)
	tr.Add(rtr)
	route.AddLatency(rtr.Latency)
	route.End(spanOutcome(err))
	if err != nil {
		return stats(tr), err
	}
	d.mu.RLock()
	replicas := d.placementOf(root, d.replica)
	d.mu.RUnlock()
	// Contact the replica set on the configured fan-out (serial by default,
	// concurrent with FanoutWorkers > 1). Each contact charges its own
	// trace; mergeFanout folds them into tr with the latency model matching
	// the fan-out shape. Per-replica spans are built detached (workers must
	// not append to sp concurrently) and adopted in replica order below.
	outcomes, _ := parallel.Map(d.fanout, replicas, func(_ int, rid uint64) (replicaOutcome, error) {
		d.mu.RLock()
		rn := d.byID[rid]
		d.mu.RUnlock()
		rtr := &simnet.Trace{}
		_, err := d.net.RPC(rtr, simnet.NodeID(origin), rn.name, simnet.Message{
			Kind:    kindStore,
			Payload: storeReq{Key: key, Value: value},
			Size:    len(key) + len(value),
		})
		var rsp *telemetry.Span
		if sp != nil {
			rsp = telemetry.NewSpan("store")
			rsp.Tag("replica", string(rn.name))
			rsp.AddLatency(rtr.Latency)
			rsp.End(spanOutcome(err))
		}
		return replicaOutcome{tr: *rtr, err: err, span: rsp}, nil
	})
	d.mergeFanout(tr, outcomes)
	for _, o := range outcomes {
		sp.Adopt(o.span)
	}
	stored := 0
	var lastErr, ackLost error
	for _, o := range outcomes {
		if o.err == nil {
			stored++
		} else {
			lastErr = o.err
			if ackLost == nil && errors.Is(o.err, simnet.ErrReplyLost) {
				ackLost = o.err
			}
		}
	}
	if stored == 0 {
		// No ack at all. If any store's reply was lost the write may still
		// have been applied — surface that so retry logic treats the
		// operation as possibly landed (stores are idempotent, so
		// retrying is safe).
		if ackLost != nil {
			return stats(tr), fmt.Errorf("dht: store unacked, may have been applied: %w", ackLost)
		}
		if lastErr != nil {
			return stats(tr), fmt.Errorf("%w: %w", overlay.ErrUnavailable, lastErr)
		}
		return stats(tr), overlay.ErrUnavailable
	}
	return stats(tr), nil
}

// Lookup implements overlay.KV: it routes to the key's successor and falls
// back through the replica set when nodes are offline.
func (d *DHT) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	return d.LookupSpan(nil, origin, key)
}

// LookupSpan implements overlay.SpanKV: Lookup with the routing step and
// each replica fetch attributed to child spans of sp (nil sp: identical
// untraced operation).
func (d *DHT) LookupSpan(sp *telemetry.Span, origin, key string) ([]byte, overlay.OpStats, error) {
	sp.Tag("key", key)
	tr := &simnet.Trace{}
	kid := hashID(key)
	rtr := &simnet.Trace{}
	route := sp.Child("route")
	root, err := d.resolveRoot(rtr, route, simnet.NodeID(origin), key, kid)
	tr.Add(rtr)
	route.AddLatency(rtr.Latency)
	route.End(spanOutcome(err))
	if err != nil {
		return nil, stats(tr), err
	}
	d.mu.RLock()
	replicas := d.successorsOf(root, d.replica)
	d.mu.RUnlock()
	if d.fanout <= 1 {
		// Serial path: probe replicas in ring order, stop at the first hit.
		var lastErr error = overlay.ErrUnavailable
		for _, rid := range replicas {
			d.mu.RLock()
			rn := d.byID[rid]
			d.mu.RUnlock()
			ftr := &simnet.Trace{}
			fsp := sp.Child("fetch")
			fsp.Tag("replica", string(rn.name))
			reply, err := d.net.RPC(ftr, simnet.NodeID(origin), rn.name, simnet.Message{
				Kind:    kindFetch,
				Payload: fetchReq{Key: key},
				Size:    len(key),
			})
			tr.Add(ftr)
			fsp.AddLatency(ftr.Latency)
			if err != nil {
				fsp.End(spanOutcome(err))
				lastErr = err
				continue
			}
			resp, ok := reply.Payload.(fetchResp)
			if !ok {
				fsp.End("error")
				return nil, stats(tr), fmt.Errorf("dht: bad fetch reply")
			}
			if resp.Found {
				fsp.End("ok")
				return resp.Value, stats(tr), nil
			}
			fsp.End("miss")
			lastErr = overlay.ErrNotFound
		}
		return nil, stats(tr), lastErr
	}
	// Concurrent path: fetch from the whole replica set at once and take
	// the first hit in ring order, so the answer is independent of
	// goroutine scheduling. Costs more messages than the serial early-exit
	// but the operation completes in one (slowest-branch) round trip.
	// Per-replica spans are built detached and adopted in replica order.
	outcomes, _ := parallel.Map(d.fanout, replicas, func(_ int, rid uint64) (replicaOutcome, error) {
		d.mu.RLock()
		rn := d.byID[rid]
		d.mu.RUnlock()
		rtr := &simnet.Trace{}
		reply, err := d.net.RPC(rtr, simnet.NodeID(origin), rn.name, simnet.Message{
			Kind:    kindFetch,
			Payload: fetchReq{Key: key},
			Size:    len(key),
		})
		var rsp *telemetry.Span
		if sp != nil {
			rsp = telemetry.NewSpan("fetch")
			rsp.Tag("replica", string(rn.name))
			rsp.AddLatency(rtr.Latency)
			rsp.End(spanOutcome(err))
		}
		return replicaOutcome{tr: *rtr, reply: reply, err: err, span: rsp}, nil
	})
	d.mergeFanout(tr, outcomes)
	for _, o := range outcomes {
		sp.Adopt(o.span)
	}
	var lastErr error = overlay.ErrUnavailable
	for _, o := range outcomes {
		if o.err != nil {
			lastErr = o.err
			continue
		}
		resp, ok := o.reply.Payload.(fetchResp)
		if !ok {
			return nil, stats(tr), fmt.Errorf("dht: bad fetch reply")
		}
		if resp.Found {
			return resp.Value, stats(tr), nil
		}
		lastErr = overlay.ErrNotFound
	}
	return nil, stats(tr), lastErr
}

// replicaOutcome is one replica contact's result during a fan-out.
type replicaOutcome struct {
	tr    simnet.Trace
	reply simnet.Message
	err   error
	span  *telemetry.Span // detached per-replica span; nil when untraced
}

// spanOutcome renders an operation error as a span outcome tag.
func spanOutcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, overlay.ErrNotFound):
		return "miss"
	case errors.Is(err, simnet.ErrReplyLost):
		return "ack-lost"
	case errors.Is(err, simnet.ErrDropped):
		return "drop"
	case errors.Is(err, simnet.ErrNodeOffline):
		return "offline"
	case errors.Is(err, simnet.ErrPartitioned):
		return "partitioned"
	case errors.Is(err, simnet.ErrOverloaded):
		return "overload"
	case errors.Is(err, overlay.ErrUnavailable):
		return "unavailable"
	default:
		return "error"
	}
}

// mergeFanout folds per-replica traces into the operation trace. Message,
// byte, and hop counts always sum; latency sums on the serial path but
// charges only the slowest branch when replicas were contacted concurrently.
func (d *DHT) mergeFanout(tr *simnet.Trace, outcomes []replicaOutcome) {
	var maxLat time.Duration
	for _, o := range outcomes {
		tr.Hops += o.tr.Hops
		tr.Messages += o.tr.Messages
		tr.Bytes += o.tr.Bytes
		if d.fanout <= 1 {
			tr.Latency += o.tr.Latency
		} else if o.tr.Latency > maxLat {
			maxLat = o.tr.Latency
		}
	}
	tr.Latency += maxLat
}

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
