package dht

import (
	"errors"
	"fmt"
	"testing"

	"godosn/internal/resilience"
	"godosn/internal/resilience/load"
	"godosn/internal/telemetry"
)

// floodStores fires count stores from origin, returning how many were shed.
func floodStores(t *testing.T, d *DHT, origin string, count int) (sheds int) {
	t.Helper()
	for i := 0; i < count; i++ {
		_, err := d.Store(origin, fmt.Sprintf("flood-%d", i), []byte("x"))
		switch {
		case err == nil:
		case errors.Is(err, load.ErrShed):
			sheds++
		default:
			t.Fatalf("Store: %v", err)
		}
	}
	return sheds
}

func TestNodeGateDisabledAdmitsEverything(t *testing.T) {
	d, _, names := buildDHT(t, 8, Config{ReplicationFactor: 2})
	if got := floodStores(t, d, string(names[0]), 40); got != 0 {
		t.Fatalf("ungated DHT shed %d stores", got)
	}
	if total := d.NodeShedTotal(); total != 0 {
		t.Fatalf("ungated shed total = %d", total)
	}
	if sheds := d.NodeSheds(); len(sheds) != 0 {
		t.Fatalf("ungated NodeSheds non-empty: %v", sheds)
	}
	d.TickGates() // must be a no-op, not a panic
}

func TestNodeGateShedsBeyondBudget(t *testing.T) {
	d, _, names := buildDHT(t, 8, Config{
		ReplicationFactor: 2,
		NodeGate:          load.GateConfig{PerTick: 2, QueueDepth: 1},
	})
	sheds := floodStores(t, d, string(names[0]), 40)
	if sheds == 0 {
		t.Fatalf("tight gate shed nothing across 40 stores")
	}
	if total := d.NodeShedTotal(); total != int64(0) && total < int64(sheds) {
		t.Fatalf("shed total %d < observed client sheds %d", total, sheds)
	}
	var sum int64
	for _, n := range d.NodeSheds() {
		sum += n
	}
	if sum != d.NodeShedTotal() {
		t.Fatalf("per-node sum %d != total %d", sum, d.NodeShedTotal())
	}

	// Refilled gates admit again.
	d.TickGates()
	if _, err := d.Store(string(names[0]), "after-tick", []byte("y")); err != nil {
		t.Fatalf("store after TickGates: %v", err)
	}
}

func TestNodeGateShedClassifiesAsOverload(t *testing.T) {
	d, _, names := buildDHT(t, 4, Config{
		ReplicationFactor: 1,
		NodeGate:          load.GateConfig{PerTick: 1, QueueDepth: 0},
	})
	var shed error
	for i := 0; i < 20 && shed == nil; i++ {
		if _, err := d.Store(string(names[0]), fmt.Sprintf("k-%d", i), []byte("v")); err != nil {
			shed = err
		}
	}
	if shed == nil {
		t.Fatalf("no shed surfaced")
	}
	if !errors.Is(shed, load.ErrShed) {
		t.Fatalf("shed error %v does not wrap load.ErrShed", shed)
	}
	if f := resilience.Classify(shed); f != resilience.FaultOverload {
		t.Fatalf("Classify(%v) = %v, want FaultOverload", shed, f)
	}
}

func TestNodeGateTelemetryCounters(t *testing.T) {
	d, _, names := buildDHT(t, 4, Config{
		ReplicationFactor: 1,
		NodeGate:          load.GateConfig{PerTick: 1, QueueDepth: 0},
	})
	reg := telemetry.NewRegistry()
	d.SetTelemetry(reg)
	floodStores(t, d, string(names[0]), 30)
	total := d.NodeShedTotal()
	if total == 0 {
		t.Fatalf("flood shed nothing")
	}
	if got := reg.Counter("dht_gate_sheds_total").Value(); got != total {
		t.Fatalf("telemetry total %d != shed total %d", got, total)
	}
	var mirrored int64
	for id, n := range d.NodeSheds() {
		c := reg.Counter("dht_gate_sheds_" + id).Value()
		if c != n {
			t.Fatalf("node %s telemetry %d != counted %d", id, c, n)
		}
		mirrored += c
	}
	if mirrored != total {
		t.Fatalf("mirrored per-node sum %d != total %d", mirrored, total)
	}
}
