package dht

import (
	"fmt"
	"sort"
	"sync"

	"godosn/internal/overlay/simnet"
	"godosn/internal/resilience/load"
	"godosn/internal/telemetry"
)

// This file wires server-side admission control: a per-node load.Gate in
// front of the data-plane RPC kinds (store, fetch, and their batch forms),
// so a node sheds by its own policy instead of only by the simnet's
// simulated capacity. The client-side gate (resilience Config.Admission)
// protects the network from one client; these gates protect each node from
// every client. A shed surfaces as load.ErrShed through the RPC error
// chain, which the resilience layer already classifies as FaultOverload —
// retryable against another replica, never quarantined.
//
// Routing (find-successor) and digest traffic is exempt: an overloaded node
// must still answer "who owns this key" and anti-entropy digests, or
// congestion would masquerade as membership loss. This mirrors real systems
// keeping their control plane responsive under data-plane pressure.
//
// Determinism: token consumption commutes (load.Gate), per-node shed counts
// depend only on how many data requests reach each node per tick window —
// worker-count independent under serial fan-out — and TickGates advances
// gates in sorted node order.

// nodeGates is the per-node gate set; a nil *nodeGates admits everything.
type nodeGates struct {
	gates map[simnet.NodeID]*load.Gate
	order []simnet.NodeID // sorted, for deterministic ticking

	mu      sync.Mutex
	sheds   map[simnet.NodeID]int64
	total   *telemetry.Counter
	perNode map[simnet.NodeID]*telemetry.Counter
}

// newNodeGates builds one gate per node; nil when the config is disabled.
func newNodeGates(cfg load.GateConfig, names []simnet.NodeID) *nodeGates {
	if cfg.PerTick <= 0 {
		return nil
	}
	g := &nodeGates{
		gates: make(map[simnet.NodeID]*load.Gate, len(names)),
		order: append([]simnet.NodeID(nil), names...),
		sheds: make(map[simnet.NodeID]int64),
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i] < g.order[j] })
	for _, id := range g.order {
		g.gates[id] = load.NewGate(cfg)
	}
	return g
}

// admit charges one data request against id's gate: free or queued (the
// queue delay lands on the request's trace like propagation delay), or shed
// with an error wrapping load.ErrShed. Nil-safe.
func (g *nodeGates) admit(id simnet.NodeID, tr *simnet.Trace) error {
	if g == nil {
		return nil
	}
	delay, err := g.gates[id].Admit()
	if err != nil {
		g.mu.Lock()
		g.sheds[id]++
		total, per := g.total, g.perNode[id]
		g.mu.Unlock()
		if total != nil {
			total.Inc()
		}
		if per != nil {
			per.Inc()
		}
		return fmt.Errorf("dht: node %s admission: %w", id, err)
	}
	tr.Latency += delay
	return nil
}

// tick refills every gate, in sorted node order. Nil-safe.
func (g *nodeGates) tick() {
	if g == nil {
		return
	}
	for _, id := range g.order {
		g.gates[id].Tick()
	}
}

// shedCounts copies the per-node shed counters (always non-nil, so results
// built from it compare equal across runs whether or not gates are on).
func (g *nodeGates) shedCounts() map[string]int64 {
	out := make(map[string]int64)
	if g == nil {
		return out
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for id, n := range g.sheds {
		out[string(id)] = n
	}
	return out
}

// setTelemetry mirrors shed accounting into reg: one aggregate counter plus
// a per-node counter each, created eagerly so snapshots carry the same
// instrument set whether or not anything shed. Nil-safe.
func (g *nodeGates) setTelemetry(reg *telemetry.Registry) {
	if g == nil {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if reg == nil {
		g.total, g.perNode = nil, nil
		return
	}
	g.total = reg.Counter("dht_gate_sheds_total")
	g.perNode = make(map[simnet.NodeID]*telemetry.Counter, len(g.order))
	for _, id := range g.order {
		g.perNode[id] = reg.Counter("dht_gate_sheds_" + string(id))
	}
}

// TickGates advances every node's admission gate one tick window (sorted
// node order). No-op when Config.NodeGate is disabled.
func (d *DHT) TickGates() {
	d.gates.tick()
}

// Tick implements overlay.Ticker: the DHT's per-tick state is its
// server-side admission gates.
func (d *DHT) Tick() {
	d.TickGates()
}

// NodeSheds returns each node's server-side shed count (empty map when
// gates are disabled or nothing shed).
func (d *DHT) NodeSheds() map[string]int64 {
	return d.gates.shedCounts()
}

// NodeShedTotal sums NodeSheds.
func (d *DHT) NodeShedTotal() int64 {
	var total int64
	for _, n := range d.gates.shedCounts() {
		total += n
	}
	return total
}
