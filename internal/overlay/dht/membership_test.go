package dht

import (
	"fmt"
	"testing"

	"godosn/internal/overlay/simnet"
)

func TestJoinPreservesKeys(t *testing.T) {
	d, _, names := buildDHT(t, 16, Config{ReplicationFactor: 1})
	for i := 0; i < 40; i++ {
		if _, err := d.Store(string(names[i%16]), fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Store: %v", err)
		}
	}
	for j := 0; j < 8; j++ {
		if err := d.Join(simnet.NodeID(fmt.Sprintf("joiner-%d", j))); err != nil {
			t.Fatalf("Join: %v", err)
		}
	}
	if d.Size() != 24 {
		t.Fatalf("Size = %d", d.Size())
	}
	for i := 0; i < 40; i++ {
		got, _, err := d.Lookup(string(names[(i*3)%16]), fmt.Sprintf("k%d", i))
		if err != nil || string(got) != "v" {
			t.Fatalf("key k%d lost after joins: %v", i, err)
		}
	}
	// New nodes participate fully.
	if _, err := d.Store("joiner-0", "new-key", []byte("nv")); err != nil {
		t.Fatalf("Store from joiner: %v", err)
	}
	if got, _, err := d.Lookup("joiner-3", "new-key"); err != nil || string(got) != "nv" {
		t.Fatalf("Lookup from joiner: %v", err)
	}
}

func TestLeavePreservesKeys(t *testing.T) {
	d, _, names := buildDHT(t, 16, Config{ReplicationFactor: 1})
	for i := 0; i < 40; i++ {
		d.Store(string(names[i%16]), fmt.Sprintf("k%d", i), []byte("v"))
	}
	// Graceful departures with handoff.
	for _, leaver := range []simnet.NodeID{names[2], names[7], names[11]} {
		if err := d.Leave(leaver); err != nil {
			t.Fatalf("Leave(%s): %v", leaver, err)
		}
	}
	if d.Size() != 13 {
		t.Fatalf("Size = %d", d.Size())
	}
	origin := names[0]
	for i := 0; i < 40; i++ {
		got, _, err := d.Lookup(string(origin), fmt.Sprintf("k%d", i))
		if err != nil || string(got) != "v" {
			t.Fatalf("key k%d lost after leaves: %v", i, err)
		}
	}
}

func TestJoinLeaveChurnCycle(t *testing.T) {
	d, _, names := buildDHT(t, 8, Config{ReplicationFactor: 1})
	d.Store(string(names[0]), "stable", []byte("v"))
	for round := 0; round < 5; round++ {
		j := simnet.NodeID(fmt.Sprintf("cycler-%d", round))
		if err := d.Join(j); err != nil {
			t.Fatalf("Join: %v", err)
		}
		if got, _, err := d.Lookup(string(names[1]), "stable"); err != nil || string(got) != "v" {
			t.Fatalf("round %d after join: %v", round, err)
		}
		if err := d.Leave(j); err != nil {
			t.Fatalf("Leave: %v", err)
		}
		if got, _, err := d.Lookup(string(names[1]), "stable"); err != nil || string(got) != "v" {
			t.Fatalf("round %d after leave: %v", round, err)
		}
	}
}

func TestJoinDuplicate(t *testing.T) {
	d, _, names := buildDHT(t, 4, Config{})
	if err := d.Join(names[0]); err == nil {
		t.Fatal("duplicate join accepted")
	}
}

func TestLeaveUnknownAndLast(t *testing.T) {
	d, _, names := buildDHT(t, 2, Config{})
	if err := d.Leave("ghost"); err == nil {
		t.Fatal("unknown leave accepted")
	}
	if err := d.Leave(names[0]); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	if err := d.Leave(names[1]); err == nil {
		t.Fatal("last node allowed to leave")
	}
}
