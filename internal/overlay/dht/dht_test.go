package dht

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

func buildDHT(t *testing.T, n int, cfg Config) (*DHT, *simnet.Network, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(1))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, net, names
}

func TestStoreLookup(t *testing.T) {
	d, _, names := buildDHT(t, 32, Config{ReplicationFactor: 2})
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		val := []byte(fmt.Sprintf("value-%d", i))
		if _, err := d.Store(string(names[i%len(names)]), key, val); err != nil {
			t.Fatalf("Store(%s): %v", key, err)
		}
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("key-%d", i)
		got, st, err := d.Lookup(string(names[(i*7)%len(names)]), key)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", key, err)
		}
		if string(got) != fmt.Sprintf("value-%d", i) {
			t.Fatalf("Lookup(%s) = %q", key, got)
		}
		if st.Hops < 1 {
			t.Fatalf("lookup reported %d hops", st.Hops)
		}
	}
}

func TestLookupMissingKey(t *testing.T) {
	d, _, names := buildDHT(t, 16, Config{ReplicationFactor: 1})
	_, _, err := d.Lookup(string(names[0]), "never-stored")
	if !errors.Is(err, overlay.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestUnknownOrigin(t *testing.T) {
	d, _, _ := buildDHT(t, 4, Config{})
	if _, err := d.Store("stranger", "k", []byte("v")); err == nil {
		t.Fatal("Store from unknown origin succeeded")
	}
	if _, _, err := d.Lookup("stranger", "k"); err == nil {
		t.Fatal("Lookup from unknown origin succeeded")
	}
}

func TestEmptyOverlay(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	if _, err := New(net, nil, Config{}); !errors.Is(err, overlay.ErrNoNodes) {
		t.Fatalf("got %v, want ErrNoNodes", err)
	}
}

func TestLogarithmicHopGrowth(t *testing.T) {
	// The paper: structured overlays resolve queries "in a limited number
	// of steps" — hops should grow ~log n, far below linear.
	avgHops := func(n int) float64 {
		d, _, names := buildDHT(t, n, Config{ReplicationFactor: 1})
		for i := 0; i < 30; i++ {
			d.Store(string(names[0]), fmt.Sprintf("k%d", i), []byte("v"))
		}
		total := 0
		count := 0
		for i := 0; i < 30; i++ {
			_, st, err := d.Lookup(string(names[(i*13+1)%n]), fmt.Sprintf("k%d", i))
			if err != nil {
				continue
			}
			total += st.Hops
			count++
		}
		if count == 0 {
			t.Fatal("no successful lookups")
		}
		return float64(total) / float64(count)
	}
	small := avgHops(16)
	large := avgHops(256)
	// 16x more nodes should cost ~4 extra hops (log2), not 16x.
	if large > small*4 {
		t.Fatalf("hop growth not logarithmic: n=16 avg %.1f, n=256 avg %.1f", small, large)
	}
	if large > 2*math.Log2(256) {
		t.Fatalf("n=256 average hops %.1f exceeds 2*log2(n)", large)
	}
}

func TestReplicationSurvivesPrimaryFailure(t *testing.T) {
	d, net, names := buildDHT(t, 32, Config{ReplicationFactor: 3})
	key := "important"
	if _, err := d.Store(string(names[0]), key, []byte("data")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	// Kill the key's primary successor.
	kid := hashID(key)
	primary := d.byID[d.successorID(kid)]
	net.SetOnline(primary.name, false)

	origin := names[0]
	if origin == primary.name {
		origin = names[1]
	}
	got, _, err := d.Lookup(string(origin), key)
	if err != nil {
		t.Fatalf("Lookup after primary failure: %v", err)
	}
	if string(got) != "data" {
		t.Fatalf("got %q", got)
	}
}

func TestNoReplicationFailsOnPrimaryLoss(t *testing.T) {
	d, net, names := buildDHT(t, 32, Config{ReplicationFactor: 1})
	key := "fragile"
	if _, err := d.Store(string(names[0]), key, []byte("data")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	kid := hashID(key)
	primary := d.byID[d.successorID(kid)]
	net.SetOnline(primary.name, false)
	origin := names[0]
	if origin == primary.name {
		origin = names[1]
	}
	if _, _, err := d.Lookup(string(origin), key); err == nil {
		t.Fatal("lookup succeeded with sole replica offline")
	}
}

func TestInInterval(t *testing.T) {
	tests := []struct {
		x, a, b uint64
		want    bool
	}{
		{5, 1, 10, true},
		{1, 1, 10, false},
		{10, 1, 10, true},
		{11, 1, 10, false},
		{0, 10, 2, true},  // wraparound
		{11, 10, 2, true}, // wraparound
		{5, 10, 2, false},
		{7, 7, 7, true}, // full circle
	}
	for _, tt := range tests {
		if got := inInterval(tt.x, tt.a, tt.b); got != tt.want {
			t.Errorf("inInterval(%d, %d, %d) = %v, want %v", tt.x, tt.a, tt.b, got, tt.want)
		}
	}
}

func TestLookupFromEveryOrigin(t *testing.T) {
	d, _, names := buildDHT(t, 20, Config{ReplicationFactor: 1})
	if _, err := d.Store(string(names[3]), "shared", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	for _, origin := range names {
		got, _, err := d.Lookup(string(origin), "shared")
		if err != nil || string(got) != "v" {
			t.Fatalf("Lookup from %s: %v", origin, err)
		}
	}
}

func TestOverwrite(t *testing.T) {
	d, _, names := buildDHT(t, 8, Config{ReplicationFactor: 2})
	d.Store(string(names[0]), "k", []byte("v1"))
	d.Store(string(names[1]), "k", []byte("v2"))
	got, _, err := d.Lookup(string(names[2]), "k")
	if err != nil || string(got) != "v2" {
		t.Fatalf("overwrite: %q, %v", got, err)
	}
}

func TestNameLabel(t *testing.T) {
	d, _, _ := buildDHT(t, 2, Config{})
	if d.Name() == "" {
		t.Fatal("empty overlay name")
	}
}
