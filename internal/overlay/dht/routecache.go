package dht

import (
	"godosn/internal/cache"
	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
	"godosn/internal/telemetry"
)

// This file wires the hot-path route cache: key → successor-root resolution
// is memoized so repeat lookups of hot keys skip the iterative O(log n)
// finger walk entirely (zero routing RPCs, zero simulated routing latency).
//
// Coherence model: a cached root can go stale only when the ring or the
// placement filter changes, so the cache generation is bumped on Join,
// Leave, SetPlacementFilter, any Heal pass that repaired at least one copy,
// and on InvalidateRoutes (the resilience layer calls it when a breaker
// quarantines a node). Replica sets are always recomputed from the live
// ring at use time — only the root id is cached — so a hit after a benign
// ring-adjacent change still lands on current successors.

var _ overlay.RouteCached = (*DHT)(nil)

// resolveRoot resolves key's successor root, through the route cache when
// one is configured. A cache hit charges nothing to tr (that is the point);
// a miss runs the iterative lookup and caches a successful result unless
// the cache was invalidated mid-fill. When routing happens under a span, a
// "cache" child records how the resolution was served.
func (d *DHT) resolveRoot(tr *simnet.Trace, route *telemetry.Span, origin simnet.NodeID, key string, kid uint64) (uint64, error) {
	if d.routes == nil {
		return d.findSuccessor(tr, origin, kid)
	}
	root, outcome, err := d.routes.Do(key, func() (uint64, error) {
		return d.findSuccessor(tr, origin, kid)
	})
	csp := route.Child("cache")
	csp.End(outcome.String())
	return root, err
}

// InvalidateRoutes implements overlay.RouteCached: drop every memoized
// route (e.g. after a quarantine changes effective placement). No-op
// without a route cache.
func (d *DHT) InvalidateRoutes() {
	d.bumpRoutes()
}

// TickRoutes advances the route cache's logical TTL clock one step
// (cache.Config.TTLTicks): memoized routes older than the TTL are swept, a
// second staleness bound alongside the generation bumps. No-op without a
// route cache or a TTL.
func (d *DHT) TickRoutes() {
	d.routes.Tick()
}

// RouteCacheStats returns the route cache's counters (zero Stats when the
// cache is disabled).
func (d *DHT) RouteCacheStats() cache.Stats {
	return d.routes.Stats()
}

// SetTelemetry mirrors the route cache's counters into reg under the
// "dht_route_cache" prefix and the server-side gate shed counters under
// "dht_gate_sheds" (gate.go). Safe to call with either disabled.
func (d *DHT) SetTelemetry(reg *telemetry.Registry) {
	d.routes.SetTelemetry(reg, "dht_route_cache")
	d.gates.setTelemetry(reg)
}
