package dht

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"testing"

	"godosn/internal/cache"
	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

func batchKeys(n int) ([]string, [][]byte) {
	keys := make([]string, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("batch-key-%03d", i)
		vals[i] = []byte(fmt.Sprintf("batch-value-%03d", i))
	}
	return keys, vals
}

// The batch path must be a pure transport optimization: same values land,
// same values come back, and the counted stats are byte-identical at any
// FanoutWorkers setting (the batch cost model is worker-independent).
func TestBatchMatchesSequentialAcrossWorkers(t *testing.T) {
	keys, vals := batchKeys(96)
	var prevPut, prevGet overlay.OpStats
	for wi, workers := range []int{1, 8} {
		d, _, names := buildDHT(t, 48, Config{ReplicationFactor: 3, FanoutWorkers: workers})
		client := string(names[0])
		errs, putSt, err := d.PutBatch(client, keys, vals)
		if err != nil {
			t.Fatalf("PutBatch: %v", err)
		}
		for i, e := range errs {
			if e != nil {
				t.Fatalf("PutBatch key %s: %v", keys[i], e)
			}
		}
		// Each key must be readable through the plain single-key path.
		for i, key := range keys {
			v, _, err := d.Lookup(client, key)
			if err != nil {
				t.Fatalf("Lookup(%s): %v", key, err)
			}
			if !bytes.Equal(v, vals[i]) {
				t.Fatalf("Lookup(%s) = %q, want %q", key, v, vals[i])
			}
		}
		results, getSt, err := d.GetBatch(client, keys)
		if err != nil {
			t.Fatalf("GetBatch: %v", err)
		}
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("GetBatch key %s: %v", keys[i], r.Err)
			}
			if !bytes.Equal(r.Value, vals[i]) {
				t.Fatalf("GetBatch key %s = %q, want %q", keys[i], r.Value, vals[i])
			}
		}
		// Latency draws from the simnet jitter stream, whose consumption
		// order legitimately shifts with worker scheduling; the counted
		// costs (hops, messages, bytes) must not.
		putSt.Latency, getSt.Latency = 0, 0
		if wi > 0 {
			if putSt != prevPut {
				t.Fatalf("PutBatch stats differ across workers: %+v vs %+v", putSt, prevPut)
			}
			if getSt != prevGet {
				t.Fatalf("GetBatch stats differ across workers: %+v vs %+v", getSt, prevGet)
			}
		}
		prevPut, prevGet = putSt, getSt
	}
}

// Route-grouped envelopes must beat the key-by-key loop by a wide margin:
// the batch pays per replica group, the loop pays per key.
func TestBatchCheaperThanSequential(t *testing.T) {
	keys, vals := batchKeys(128)
	seqD, _, seqNames := buildDHT(t, 48, Config{ReplicationFactor: 3})
	batD, _, batNames := buildDHT(t, 48, Config{ReplicationFactor: 3})

	var seqPut overlay.OpStats
	for i, key := range keys {
		st, err := seqD.Store(string(seqNames[0]), key, vals[i])
		if err != nil {
			t.Fatalf("Store(%s): %v", key, err)
		}
		seqPut.Add(st)
	}
	_, batPut, err := batD.PutBatch(string(batNames[0]), keys, vals)
	if err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	if seqPut.Messages < 3*batPut.Messages {
		t.Fatalf("PutBatch saved only %.2fx messages (seq %d, batch %d), want >= 3x",
			float64(seqPut.Messages)/float64(batPut.Messages), seqPut.Messages, batPut.Messages)
	}

	var seqGet overlay.OpStats
	for _, key := range keys {
		_, st, err := seqD.Lookup(string(seqNames[1]), key)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", key, err)
		}
		seqGet.Add(st)
	}
	_, batGet, err := batD.GetBatch(string(batNames[1]), keys)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	if seqGet.Messages < 3*batGet.Messages {
		t.Fatalf("GetBatch saved only %.2fx messages (seq %d, batch %d), want >= 3x",
			float64(seqGet.Messages)/float64(batGet.Messages), seqGet.Messages, batGet.Messages)
	}
}

// A missing key is a per-slot miss, never a batch failure.
func TestBatchMissingKeyIsolation(t *testing.T) {
	keys, vals := batchKeys(32)
	d, _, names := buildDHT(t, 32, Config{ReplicationFactor: 3})
	client := string(names[0])
	if _, _, err := d.PutBatch(client, keys, vals); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	probe := append(append([]string(nil), keys[:16]...), "never-stored-a", "never-stored-b")
	probe = append(probe, keys[16:]...)
	results, _, err := d.GetBatch(client, probe)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	for i, r := range results {
		switch probe[i] {
		case "never-stored-a", "never-stored-b":
			if !errors.Is(r.Err, overlay.ErrNotFound) {
				t.Fatalf("missing key %s: err = %v, want ErrNotFound", probe[i], r.Err)
			}
		default:
			if r.Err != nil {
				t.Fatalf("stored key %s failed beside misses: %v", probe[i], r.Err)
			}
		}
	}
}

// Taking one key's whole replica set offline must fail exactly the keys
// owned by that replica set; every key with a reachable replica resolves.
func TestBatchOfflineReplicaSetIsolation(t *testing.T) {
	keys, vals := batchKeys(64)
	d, net, names := buildDHT(t, 48, Config{
		ReplicationFactor: 3,
		RouteCache:        cache.Config{Capacity: 256, Shards: 1, Seed: 7},
	})
	client := string(names[0])
	if _, _, err := d.PutBatch(client, keys, vals); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	replicaSet := func(key string) string {
		reps, _, err := d.ReplicasFor(client, key)
		if err != nil {
			t.Fatalf("ReplicasFor(%s): %v", key, err)
		}
		sorted := append([]string(nil), reps...)
		sort.Strings(sorted)
		return fmt.Sprint(sorted)
	}
	victim := keys[5]
	victimSet := replicaSet(victim)
	expectFail := map[string]bool{}
	for _, key := range keys {
		expectFail[key] = replicaSet(key) == victimSet
	}
	victimReplicas, _, err := d.ReplicasFor(client, victim)
	if err != nil {
		t.Fatalf("ReplicasFor: %v", err)
	}
	for _, name := range victimReplicas {
		if name == client {
			t.Skip("client is a victim replica at this seed; offline client cannot originate")
		}
		if err := net.SetOnline(simnet.NodeID(name), false); err != nil {
			t.Fatalf("SetOnline: %v", err)
		}
	}
	results, _, err := d.GetBatch(client, keys)
	if err != nil {
		t.Fatalf("GetBatch: %v", err)
	}
	failed := 0
	for i, r := range results {
		if expectFail[keys[i]] {
			failed++
			if r.Err == nil {
				t.Fatalf("key %s owned by the offline replica set returned a value", keys[i])
			}
			if errors.Is(r.Err, overlay.ErrNotFound) {
				t.Fatalf("key %s reported a definitive miss for a delivery failure: %v", keys[i], r.Err)
			}
			continue
		}
		if r.Err != nil {
			t.Fatalf("key %s with reachable replicas failed: %v", keys[i], r.Err)
		}
		if !bytes.Equal(r.Value, vals[i]) {
			t.Fatalf("key %s = %q, want %q", keys[i], r.Value, vals[i])
		}
	}
	if failed == 0 {
		t.Fatal("victim key set empty; isolation test proved nothing")
	}
	if failed == len(keys) {
		t.Fatal("whole batch failed; no isolation demonstrated")
	}
}

// Direct unit coverage of the learned-ownership interval cache.
func TestOwnershipCacheUnit(t *testing.T) {
	var c ownershipCache
	if _, ok := c.lookup(10); ok {
		t.Fatal("empty cache answered a lookup")
	}
	// learn(100, 200): the walk resolved kid 100 itself to root 200, so
	// both 100 and the interval (100, 200] are known to be owned by 200.
	c.learn(100, 200)
	for _, kid := range []uint64{100, 101, 150, 200} {
		if root, ok := c.lookup(kid); !ok || root != 200 {
			t.Fatalf("lookup(%d) = %d,%v, want 200,true", kid, root, ok)
		}
	}
	for _, kid := range []uint64{99, 201} {
		if _, ok := c.lookup(kid); ok {
			t.Fatalf("lookup(%d) hit outside the learned interval", kid)
		}
	}
	// A farther-counterclockwise observation widens the interval.
	c.learn(50, 200)
	if root, ok := c.lookup(75); !ok || root != 200 {
		t.Fatalf("widened interval missed: lookup(75) = %d,%v", root, ok)
	}
	// A narrower observation must not shrink it.
	c.learn(150, 200)
	if _, ok := c.lookup(75); !ok {
		t.Fatal("narrower observation shrank the learned interval")
	}
	// kid == root would claim the whole ring; it must be skipped.
	c.learn(300, 300)
	if _, ok := c.lookup(250); ok {
		t.Fatal("degenerate (root, root] interval claimed the ring")
	}
	// Wrap-around: with only root 200 learned from 50, a kid past every
	// learned root must try the first root circularly (and miss here, since
	// 4000 is not in (50, 200]).
	if _, ok := c.lookup(4000); ok {
		t.Fatal("wrap-around lookup hit outside the learned interval")
	}
	c.clear()
	if _, ok := c.lookup(150); ok {
		t.Fatal("cleared cache answered a lookup")
	}
}

// Intervals learned by one batch must pay off in the next: the same probe
// batch costs strictly less on a DHT that already ran an unrelated batch,
// and the whole difference is routing (the replica probes are identical).
func TestOwnershipAmortizesRoutingAcrossBatches(t *testing.T) {
	warm, _, warmNames := buildDHT(t, 48, Config{ReplicationFactor: 3})
	fresh, _, freshNames := buildDHT(t, 48, Config{ReplicationFactor: 3})
	first := make([]string, 128)
	probe := make([]string, 128)
	vals := make([][]byte, 128)
	for i := range first {
		first[i] = fmt.Sprintf("wave1-%03d", i)
		probe[i] = fmt.Sprintf("wave2-%03d", i)
		vals[i] = []byte("v")
	}
	// Teach the warm DHT ownership intervals with an unrelated key wave.
	if _, _, err := warm.PutBatch(string(warmNames[0]), first, vals); err != nil {
		t.Fatalf("PutBatch wave1: %v", err)
	}
	// Same probe batch on both rings: every key misses everywhere, so the
	// per-group replica probes cost exactly the same; only routing differs.
	_, warmSt, err := warm.GetBatch(string(warmNames[0]), probe)
	if err != nil {
		t.Fatalf("GetBatch warm: %v", err)
	}
	_, freshSt, err := fresh.GetBatch(string(freshNames[0]), probe)
	if err != nil {
		t.Fatalf("GetBatch fresh: %v", err)
	}
	saved := freshSt.Messages - warmSt.Messages
	if saved <= 0 {
		t.Fatalf("warm batch spent %d messages vs fresh %d; learned intervals amortized nothing", warmSt.Messages, freshSt.Messages)
	}
	// Miss-probes (identical on both rings) dominate the total, so the
	// routing saving shows up as a modest slice of the whole batch.
	if saved*7 < freshSt.Messages {
		t.Fatalf("learned intervals saved only %d of %d messages (want >= ~15%%)", saved, freshSt.Messages)
	}
}

// Ring mutations must invalidate learned intervals along with the route
// cache, and batches must stay correct afterwards.
func TestOwnershipInvalidatedOnMembershipChange(t *testing.T) {
	keys, vals := batchKeys(64)
	d, _, names := buildDHT(t, 48, Config{ReplicationFactor: 3})
	client := string(names[0])
	if _, _, err := d.PutBatch(client, keys, vals); err != nil {
		t.Fatalf("PutBatch: %v", err)
	}
	d.ownership.mu.Lock()
	learned := len(d.ownership.roots)
	d.ownership.mu.Unlock()
	if learned == 0 {
		t.Fatal("batch routing learned no intervals")
	}
	leaver := names[len(names)-1]
	if string(leaver) == client {
		leaver = names[len(names)-2]
	}
	if err := d.Leave(leaver); err != nil {
		t.Fatalf("Leave: %v", err)
	}
	d.ownership.mu.Lock()
	learned = len(d.ownership.roots)
	d.ownership.mu.Unlock()
	if learned != 0 {
		t.Fatalf("%d learned intervals survived a ring change", learned)
	}
	results, _, err := d.GetBatch(client, keys)
	if err != nil {
		t.Fatalf("GetBatch after Leave: %v", err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("key %s after Leave: %v", keys[i], r.Err)
		}
		if !bytes.Equal(r.Value, vals[i]) {
			t.Fatalf("key %s after Leave = %q, want %q", keys[i], r.Value, vals[i])
		}
	}
}

const benchBatch = 256

func newBatchBenchDHT(b *testing.B) (*DHT, string) {
	b.Helper()
	net := simnet.New(simnet.DefaultConfig(4242))
	names := make([]simnet.NodeID, benchNodes)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := New(net, names, Config{
		ReplicationFactor: benchReplicas,
		RouteCache:        cache.Config{Capacity: 4096, Shards: 1, Seed: 4242},
	})
	if err != nil {
		b.Fatal(err)
	}
	return d, string(names[0])
}

// One iteration moves benchBatch keys, so ns/op and allocs/op compare the
// batched envelope path against the equivalent single-key loop directly.
// Both arms run behind a warm route cache: the delta is pure transport.
func BenchmarkPutBatch(b *testing.B) {
	keys, vals := batchKeys(benchBatch)
	b.Run("sequential", func(b *testing.B) {
		d, client := newBatchBenchDHT(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j, key := range keys {
				if _, err := d.Store(client, key, vals[j]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		d, client := newBatchBenchDHT(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := d.PutBatch(client, keys, vals); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGetBatch(b *testing.B) {
	keys, vals := batchKeys(benchBatch)
	b.Run("sequential", func(b *testing.B) {
		d, client := newBatchBenchDHT(b)
		if _, _, err := d.PutBatch(client, keys, vals); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, key := range keys {
				if _, _, err := d.Lookup(client, key); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batched", func(b *testing.B) {
		d, client := newBatchBenchDHT(b)
		if _, _, err := d.PutBatch(client, keys, vals); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := d.GetBatch(client, keys); err != nil {
				b.Fatal(err)
			}
		}
	})
}
