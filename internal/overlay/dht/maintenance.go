package dht

import (
	"fmt"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// This file implements the DHT's batched maintenance plane
// (overlay.BatchRepairKV / overlay.BatchDigestKV): direct per-replica
// multi-key fetch and store envelopes riding the same batch handlers as the
// data plane (batch.go), plus a multi-group digest RPC that verifies every
// scrub group a replica participates in with one message pair. It also
// exposes PlanReplicas, the network-free replica planning hook continuous
// schedulers (scrub.Sweeper) use to bound a pass's message cost before
// spending a single message.

var (
	_ overlay.BatchRepairKV = (*DHT)(nil)
	_ overlay.BatchDigestKV = (*DHT)(nil)
)

// kindDigestBatch asks a node for Merkle roots over several key groups at
// once. Like kindDigest it is exempt from data-plane admission gating:
// congestion must never masquerade as divergence.
const kindDigestBatch = "dht.digest_batch"

// digestBatchReq carries one key group per scrub group the replica
// participates in, all bound to the same pass nonce.
type digestBatchReq struct {
	Groups [][]string
	Nonce  uint64
}

// digestBatchResp carries one root pair per group as [][]byte deliberately
// — the same reasoning as digestResp: byte-slice fields are corruptible by
// Byzantine reply mutation, and simnet mutates every element of a batch
// value list, so a lying batch summary corrupts every group's digest and
// causes drill-downs across the board instead of being trusted (a flat
// concatenation would let a single bit flip hide in one group while the
// rest short-circuit as clean).
type digestBatchResp struct {
	Fresh [][]byte
	State [][]byte
}

// handleDigestBatch computes the replica-side multi-group digest —
// node-local, free of network cost beyond the one reply.
func handleDigestBatch(n *node, req digestBatchReq) (simnet.Message, error) {
	resp := digestBatchResp{
		Fresh: make([][]byte, 0, len(req.Groups)),
		State: make([][]byte, 0, len(req.Groups)),
	}
	for _, keys := range req.Groups {
		dg := localDigest(n, keys, req.Nonce)
		resp.Fresh = append(resp.Fresh, dg.Fresh)
		resp.State = append(resp.State, dg.State)
	}
	return simnet.Message{Kind: kindDigestBatch, Payload: resp, Size: batchEnvelopeOverhead + 64*len(req.Groups)}, nil
}

// FetchBatchFrom implements overlay.BatchRepairKV: one fetch_batch envelope
// to the named replica only, answered positionally. A key the replica does
// not hold carries overlay.ErrNotFound in its slot; an envelope-level
// failure (unreachable, corrupt reply) is the top-level error.
func (d *DHT) FetchBatchFrom(origin string, keys []string, replica string) ([]overlay.BatchResult, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return nil, stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	size := batchEnvelopeOverhead
	for _, k := range keys {
		size += len(k) + batchItemOverhead
	}
	reply, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindFetchBatch,
		Payload: fetchBatchReq{Keys: keys},
		Size:    size,
	})
	if err != nil {
		return nil, stats(tr), err
	}
	resp, ok := reply.Payload.(fetchBatchResp)
	if !ok || len(resp.Found) != len(keys) || len(resp.Values) != len(keys) {
		return nil, stats(tr), fmt.Errorf("dht: bad fetch_batch reply")
	}
	results := make([]overlay.BatchResult, len(keys))
	for i := range keys {
		if resp.Found[i] {
			results[i].Value = resp.Values[i]
		} else {
			results[i].Err = overlay.ErrNotFound
		}
	}
	return results, stats(tr), nil
}

// StoreBatchTo implements overlay.BatchRepairKV: one store_batch envelope
// writing keys[i]=values[i] onto the named replica only, bypassing routing
// and placement — the coalesced form of StoreTo.
func (d *DHT) StoreBatchTo(origin string, keys []string, values [][]byte, replica string) ([]error, overlay.OpStats, error) {
	if len(keys) != len(values) {
		return nil, overlay.OpStats{}, fmt.Errorf("dht: StoreBatchTo: %d keys but %d values", len(keys), len(values))
	}
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return nil, stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	size := batchEnvelopeOverhead
	for i := range keys {
		size += len(keys[i]) + len(values[i]) + batchItemOverhead
	}
	_, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindStoreBatch,
		Payload: storeBatchReq{Keys: keys, Values: values},
		Size:    size,
	})
	if err != nil {
		return nil, stats(tr), err
	}
	return make([]error, len(keys)), stats(tr), nil
}

// DigestBatchFrom implements overlay.BatchDigestKV: one digest_batch
// envelope retrieving the Merkle roots of every key group from the named
// replica, all bound to nonce.
func (d *DHT) DigestBatchFrom(origin string, groups [][]string, nonce uint64, replica string) ([]overlay.Digest, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	d.mu.RLock()
	rn := d.names[simnet.NodeID(replica)]
	d.mu.RUnlock()
	if rn == nil {
		return nil, stats(tr), fmt.Errorf("dht: %w: replica %s", simnet.ErrUnknownNode, replica)
	}
	size := batchEnvelopeOverhead + 8
	for _, keys := range groups {
		size += batchItemOverhead
		for _, k := range keys {
			size += len(k)
		}
	}
	reply, err := d.net.RPC(tr, simnet.NodeID(origin), rn.name, simnet.Message{
		Kind:    kindDigestBatch,
		Payload: digestBatchReq{Groups: groups, Nonce: nonce},
		Size:    size,
	})
	if err != nil {
		return nil, stats(tr), err
	}
	resp, ok := reply.Payload.(digestBatchResp)
	if !ok || len(resp.Fresh) != len(groups) || len(resp.State) != len(groups) {
		return nil, stats(tr), fmt.Errorf("dht: bad digest_batch reply")
	}
	out := make([]overlay.Digest, len(groups))
	for i := range groups {
		if len(resp.Fresh[i]) != 32 || len(resp.State[i]) != 32 {
			return nil, stats(tr), fmt.Errorf("dht: bad digest_batch reply")
		}
		copy(out[i].Fresh[:], resp.Fresh[i])
		copy(out[i].State[:], resp.State[i])
	}
	return out, stats(tr), nil
}

// PlanReplicas returns the replica candidate set for key from the DHT's own
// global ring view — the same list ReplicasFor resolves, computed without a
// routing walk and free of network cost (like Holds and LiveCopies).
// Continuous maintenance schedulers (scrub.Sweeper) use it to form scrub
// groups and bound their per-tick message budget before spending a single
// message. The set can drift from a routed ReplicasFor only while routing
// state is stale, in which case the scrub pass degrades to extra
// drill-downs, never to a false clean.
func (d *DHT) PlanReplicas(key string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.replicaPlanLocked(hashID(key))
}
