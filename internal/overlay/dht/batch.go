package dht

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
	"godosn/internal/parallel"
)

// This file implements overlay.BatchKV: multi-key Put/Get with route-grouped
// fan-out. Three amortizations make a batch cheaper than a key-by-key loop:
//
//  1. Routing passes are shared. Pending keys are sorted by ring position;
//     after one iterative lookup resolves kid → root R, every following kid
//     in (kid, R] is owned by the same successor (Chord ownership is the
//     half-open interval (pred(R), R]), so it is resolved locally without
//     another walk. The route cache is consulted first, so hot keys skip
//     even that, and intervals learned by earlier batches are kept in the
//     ownership cache (ownership.go) — once every live root has been walked
//     to, cold keys resolve without routing at all.
//  2. Request envelopes are shared. All keys resolving to the same root
//     travel to each replica in ONE message instead of one per key, so the
//     message cost of a batch scales with the number of replica groups
//     touched, not the number of keys.
//  3. Value copies are arena-allocated. A batch handler copies all incoming
//     (or outgoing) values into a single backing array instead of one
//     allocation per key, and envelope key lists are drawn from a sync.Pool
//     that recycles them across replica probes (pool lifetime rules in
//     DESIGN.md §10: pooled buffers never outlive the RPC that borrowed
//     them — simnet RPCs are synchronous, so reuse after return is safe).
//
// Cost model (the batch determinism contract): a batch is one logical
// operation whose per-root groups proceed as independent concurrent
// pipelines. Messages, bytes, and hops always sum; simulated latency
// charges the slowest group (and, within a group, the serial chain of
// replica probes). The model is independent of Config.FanoutWorkers — the
// worker count changes wall-clock only — so batch stats and results are
// byte-identical at any parallelism level (unlike single-key fan-out, whose
// serial path sums latency).
//
// Per-key fault isolation: routing failures, unreachable replica groups,
// and misses are reported in the affected slots only; a batch never fails
// as a whole because one key's replica set is down.

var _ overlay.BatchKV = (*DHT)(nil)

// Batch RPC message kinds.
const (
	kindStoreBatch = "dht.store_batch"
	kindFetchBatch = "dht.fetch_batch"
)

// storeBatchReq carries every key the destination replica holds for this
// batch, in one envelope.
type storeBatchReq struct {
	Keys   []string
	Values [][]byte
}

type fetchBatchReq struct{ Keys []string }

// fetchBatchResp answers positionally: Found[i]/Values[i] correspond to
// req.Keys[i].
type fetchBatchResp struct {
	Found  []bool
	Values [][]byte
}

// batchEnvelopeOverhead models the fixed framing of a batch envelope, and
// batchItemOverhead the per-item length prefix, for wire-size accounting.
const (
	batchEnvelopeOverhead = 8
	batchItemOverhead     = 4
)

// keyListPool recycles envelope key lists across replica probes and groups.
// Borrowed slices are returned as soon as the last RPC using them has
// completed; they never escape into handler or reply state (handlers copy
// what they keep).
var keyListPool = sync.Pool{New: func() any { s := make([]string, 0, 64); return &s }}

func borrowKeyList() *[]string { return keyListPool.Get().(*[]string) }

func returnKeyList(s *[]string) {
	*s = (*s)[:0]
	keyListPool.Put(s)
}

// handleStoreBatch executes the replica-side batch write: every value is
// copied into one arena allocation (one backing array for the whole
// envelope instead of one per key) and stored under the current map.
func handleStoreBatch(n *node, req storeBatchReq) (simnet.Message, error) {
	if len(req.Keys) != len(req.Values) {
		return simnet.Message{}, fmt.Errorf("dht: store_batch: %d keys, %d values", len(req.Keys), len(req.Values))
	}
	total := 0
	for _, v := range req.Values {
		total += len(v)
	}
	arena := make([]byte, 0, total)
	n.mu.Lock()
	for i, key := range req.Keys {
		off := len(arena)
		arena = append(arena, req.Values[i]...)
		// Three-index slice: a later append through one key's view can
		// never clobber a neighbour's bytes.
		n.data[key] = arena[off:len(arena):len(arena)]
	}
	n.mu.Unlock()
	return simnet.Message{Kind: kindStoreBatch, Size: batchEnvelopeOverhead}, nil
}

// handleFetchBatch executes the replica-side batch read: found values are
// copied into one arena allocation and answered positionally.
func handleFetchBatch(n *node, req fetchBatchReq) (simnet.Message, error) {
	resp := fetchBatchResp{
		Found:  make([]bool, len(req.Keys)),
		Values: make([][]byte, len(req.Keys)),
	}
	size := batchEnvelopeOverhead
	n.mu.Lock()
	total := 0
	for _, key := range req.Keys {
		total += len(n.data[key])
	}
	arena := make([]byte, 0, total)
	for i, key := range req.Keys {
		v, found := n.data[key]
		resp.Found[i] = found
		if found {
			off := len(arena)
			arena = append(arena, v...)
			resp.Values[i] = arena[off:len(arena):len(arena)]
			size += len(v) + 1
		} else {
			size++
		}
	}
	n.mu.Unlock()
	return simnet.Message{Kind: kindFetchBatch, Payload: resp, Size: size}, nil
}

// batchRoots resolves every key's successor root with one amortized pass:
// route-cache hits are free; misses are sorted by ring position and each
// iterative lookup's result covers every following key inside the resolved
// successor's ownership interval. Resolutions are modeled as concurrent
// pipelines (messages sum, latency charges the slowest walk). Per-key
// routing failures land in errs; the corresponding roots entry is invalid.
func (d *DHT) batchRoots(origin simnet.NodeID, keys []string) (roots []uint64, errs []error, tr simnet.Trace) {
	roots = make([]uint64, len(keys))
	errs = make([]error, len(keys))
	type pend struct {
		idx int
		kid uint64
	}
	pending := make([]pend, 0, len(keys))
	for i, key := range keys {
		if root, ok := d.routes.Get(key); ok {
			roots[i] = root
			continue
		}
		pending = append(pending, pend{idx: i, kid: hashID(key)})
	}
	sort.Slice(pending, func(a, b int) bool { return pending[a].kid < pending[b].kid })
	var (
		lastKid, lastRoot uint64
		haveLast          bool
		maxLat            time.Duration
	)
	for _, p := range pending {
		// Ownership shortcut: kid == lastKid is the same point; otherwise a
		// kid strictly inside (lastKid, lastRoot] shares lastRoot. The
		// lastKid == lastRoot corner (key hashing exactly onto the root)
		// would make the interval the whole ring, so only equality applies.
		if haveLast && (p.kid == lastKid || (lastKid != lastRoot && inInterval(p.kid, lastKid, lastRoot))) {
			roots[p.idx] = lastRoot
			d.routes.Put(keys[p.idx], lastRoot)
			continue
		}
		// Cross-batch shortcut: an interval learned by any earlier walk
		// (this batch or a previous one) resolves the key without routing.
		if root, ok := d.ownership.lookup(p.kid); ok {
			roots[p.idx] = root
			d.routes.Put(keys[p.idx], root)
			lastKid, lastRoot, haveLast = p.kid, root, true
			continue
		}
		rtr := &simnet.Trace{}
		root, err := d.findSuccessor(rtr, origin, p.kid)
		tr.Hops += rtr.Hops
		tr.Messages += rtr.Messages
		tr.Bytes += rtr.Bytes
		if rtr.Latency > maxLat {
			maxLat = rtr.Latency
		}
		if err != nil {
			errs[p.idx] = err
			continue
		}
		roots[p.idx] = root
		d.routes.Put(keys[p.idx], root)
		d.ownership.learn(p.kid, root)
		lastKid, lastRoot, haveLast = p.kid, root, true
	}
	tr.Latency = maxLat
	return roots, errs, tr
}

// batchGroup is one per-root work unit: the batch positions whose keys
// resolved to the same successor root, in input order.
type batchGroup struct {
	root uint64
	idxs []int
}

// groupByRoot buckets successfully routed keys by root, ordered by ring
// position — a deterministic work list for the group fan-out.
func groupByRoot(roots []uint64, errs []error) []batchGroup {
	byRoot := make(map[uint64]*batchGroup)
	order := make([]uint64, 0, 8)
	for i := range roots {
		if errs[i] != nil {
			continue
		}
		g := byRoot[roots[i]]
		if g == nil {
			g = &batchGroup{root: roots[i]}
			byRoot[roots[i]] = g
			order = append(order, roots[i])
		}
		g.idxs = append(g.idxs, i)
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	out := make([]batchGroup, len(order))
	for i, root := range order {
		out[i] = *byRoot[root]
	}
	return out
}

// groupOutcome is one group's merged result: its network trace plus either
// a shared error (Put: the envelope is all-or-nothing per replica) or
// per-position results (Get).
type groupOutcome struct {
	tr   simnet.Trace
	err  error          // PutBatch: applies to every key in the group
	errs map[int]error  // GetBatch: per-position failures
	vals map[int][]byte // GetBatch: per-position values
}

// mergeGroupOutcomes folds per-group traces into the batch trace under the
// pipelined cost model: counts sum, latency charges the slowest group.
func mergeGroupOutcomes(tr *simnet.Trace, outcomes []groupOutcome) {
	var maxLat time.Duration
	for _, o := range outcomes {
		tr.Hops += o.tr.Hops
		tr.Messages += o.tr.Messages
		tr.Bytes += o.tr.Bytes
		if o.tr.Latency > maxLat {
			maxLat = o.tr.Latency
		}
	}
	tr.Latency += maxLat
}

// PutBatch implements overlay.BatchKV. Every key is written to its full
// replica set; keys sharing a root share one routing pass and one store
// envelope per replica. A key's slot reports nil when at least one replica
// acknowledged (matching Store's success rule), an ack-lost wrap when the
// write may have landed unacked, and the delivery fault otherwise.
func (d *DHT) PutBatch(origin string, keys []string, values [][]byte) ([]error, overlay.OpStats, error) {
	if len(keys) != len(values) {
		return nil, overlay.OpStats{}, fmt.Errorf("dht: PutBatch: %d keys but %d values", len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil, overlay.OpStats{}, nil
	}
	d.mu.RLock()
	known := d.names[simnet.NodeID(origin)] != nil
	d.mu.RUnlock()
	if !known {
		return nil, overlay.OpStats{}, fmt.Errorf("dht: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	roots, errs, rtr := d.batchRoots(simnet.NodeID(origin), keys)
	tr := &simnet.Trace{}
	tr.Add(&rtr)
	groups := groupByRoot(roots, errs)
	outcomes, _ := parallel.Map(d.fanout, groups, func(_ int, g batchGroup) (groupOutcome, error) {
		return d.putGroup(simnet.NodeID(origin), g, keys, values), nil
	})
	mergeGroupOutcomes(tr, outcomes)
	for gi, o := range outcomes {
		if o.err != nil {
			for _, idx := range groups[gi].idxs {
				errs[idx] = o.err
			}
		}
	}
	return errs, stats(tr), nil
}

// putGroup writes one root group's keys to the group's replica set: one
// shared envelope per replica, replicas contacted as concurrent branches
// (latency charges the slowest). Success and ack-lost semantics mirror
// Store: one acknowledged replica suffices; with none, a lost ack is
// surfaced as possibly-applied.
func (d *DHT) putGroup(origin simnet.NodeID, g batchGroup, keys []string, values [][]byte) groupOutcome {
	req := storeBatchReq{
		Keys:   make([]string, len(g.idxs)),
		Values: make([][]byte, len(g.idxs)),
	}
	size := batchEnvelopeOverhead
	for i, idx := range g.idxs {
		req.Keys[i] = keys[idx]
		req.Values[i] = values[idx]
		size += len(keys[idx]) + len(values[idx]) + batchItemOverhead
	}
	d.mu.RLock()
	replicas := d.placementOf(g.root, d.replica)
	d.mu.RUnlock()
	out := groupOutcome{}
	var (
		stored  int
		lastErr error
		ackLost error
		maxLat  time.Duration
	)
	for _, rid := range replicas {
		d.mu.RLock()
		rn := d.byID[rid]
		d.mu.RUnlock()
		rtr := &simnet.Trace{}
		_, err := d.net.RPC(rtr, origin, rn.name, simnet.Message{
			Kind:    kindStoreBatch,
			Payload: req,
			Size:    size,
		})
		out.tr.Hops += rtr.Hops
		out.tr.Messages += rtr.Messages
		out.tr.Bytes += rtr.Bytes
		if rtr.Latency > maxLat {
			maxLat = rtr.Latency
		}
		if err == nil {
			stored++
		} else {
			lastErr = err
			if ackLost == nil && errors.Is(err, simnet.ErrReplyLost) {
				ackLost = err
			}
		}
	}
	out.tr.Latency = maxLat
	if stored == 0 {
		switch {
		case ackLost != nil:
			out.err = fmt.Errorf("dht: batch store unacked, may have been applied: %w", ackLost)
		case lastErr != nil:
			out.err = fmt.Errorf("%w: %w", overlay.ErrUnavailable, lastErr)
		default:
			out.err = overlay.ErrUnavailable
		}
	}
	return out
}

// GetBatch implements overlay.BatchKV. Keys sharing a root share one fetch
// envelope; within a group, replicas are probed in ring order and only the
// keys still unresolved ride in the next probe (the pipelined fallback), so
// a replica failure or miss costs exactly one follow-up envelope for the
// affected keys — never a per-key walk and never the whole batch.
func (d *DHT) GetBatch(origin string, keys []string) ([]overlay.BatchResult, overlay.OpStats, error) {
	if len(keys) == 0 {
		return nil, overlay.OpStats{}, nil
	}
	d.mu.RLock()
	known := d.names[simnet.NodeID(origin)] != nil
	d.mu.RUnlock()
	if !known {
		return nil, overlay.OpStats{}, fmt.Errorf("dht: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	results := make([]overlay.BatchResult, len(keys))
	roots, errs, rtr := d.batchRoots(simnet.NodeID(origin), keys)
	tr := &simnet.Trace{}
	tr.Add(&rtr)
	groups := groupByRoot(roots, errs)
	outcomes, _ := parallel.Map(d.fanout, groups, func(_ int, g batchGroup) (groupOutcome, error) {
		return d.getGroup(simnet.NodeID(origin), g, keys), nil
	})
	mergeGroupOutcomes(tr, outcomes)
	for i := range keys {
		if errs[i] != nil {
			results[i].Err = errs[i]
		}
	}
	for _, o := range outcomes {
		for idx, v := range o.vals {
			results[idx].Value = v
		}
		for idx, err := range o.errs {
			results[idx].Err = err
		}
	}
	return results, stats(tr), nil
}

// getGroup reads one root group's keys: replicas in ring order, one shared
// envelope per probe carrying only the still-unresolved keys. Within the
// group the probe chain is serial (each fallback needs the previous reply),
// so latency sums across probes; delivery failures and misses stay pinned
// to the keys that experienced them.
func (d *DHT) getGroup(origin simnet.NodeID, g batchGroup, keys []string) groupOutcome {
	d.mu.RLock()
	replicas := d.successorsOf(g.root, d.replica)
	d.mu.RUnlock()
	out := groupOutcome{
		errs: make(map[int]error, len(g.idxs)),
		vals: make(map[int][]byte, len(g.idxs)),
	}
	pending := append([]int(nil), g.idxs...)
	lastErr := make(map[int]error, len(g.idxs))
	for _, idx := range pending {
		lastErr[idx] = overlay.ErrUnavailable
	}
	reqKeys := borrowKeyList()
	defer returnKeyList(reqKeys)
	for _, rid := range replicas {
		if len(pending) == 0 {
			break
		}
		d.mu.RLock()
		rn := d.byID[rid]
		d.mu.RUnlock()
		*reqKeys = (*reqKeys)[:0]
		size := batchEnvelopeOverhead
		for _, idx := range pending {
			*reqKeys = append(*reqKeys, keys[idx])
			size += len(keys[idx]) + batchItemOverhead
		}
		rtr := &simnet.Trace{}
		reply, err := d.net.RPC(rtr, origin, rn.name, simnet.Message{
			Kind:    kindFetchBatch,
			Payload: fetchBatchReq{Keys: *reqKeys},
			Size:    size,
		})
		out.tr.Hops += rtr.Hops
		out.tr.Messages += rtr.Messages
		out.tr.Bytes += rtr.Bytes
		out.tr.Latency += rtr.Latency
		if err != nil {
			// The whole envelope failed to this replica: every pending key
			// records the fault and rides to the next replica.
			for _, idx := range pending {
				lastErr[idx] = err
			}
			continue
		}
		resp, ok := reply.Payload.(fetchBatchResp)
		if !ok || len(resp.Found) != len(pending) || len(resp.Values) != len(pending) {
			for _, idx := range pending {
				lastErr[idx] = fmt.Errorf("dht: bad fetch_batch reply")
			}
			continue
		}
		next := pending[:0]
		for j, idx := range pending {
			if resp.Found[j] {
				out.vals[idx] = resp.Values[j]
			} else {
				lastErr[idx] = overlay.ErrNotFound
				next = append(next, idx)
			}
		}
		pending = next
	}
	for _, idx := range pending {
		out.errs[idx] = lastErr[idx]
	}
	return out
}
