package simnet

import (
	"errors"
	"testing"
	"time"
)

// newCapacityNet builds a two-node lossless jitter-free network with a
// capacity cap on the server, so every delay is exactly base latency plus
// the deterministic queueing delay.
func newCapacityNet(t *testing.T, cfg CapacityConfig) *Network {
	t.Helper()
	net := New(Config{Seed: 1, BaseLatency: 10 * time.Millisecond})
	for _, id := range []NodeID{"client", "server"} {
		if err := net.Register(id, echoHandler()); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	if err := net.SetCapacity("server", cfg); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	return net
}

func TestCapacityServesQueuesThenSheds(t *testing.T) {
	net := newCapacityNet(t, CapacityConfig{PerTick: 2, QueueDepth: 2, ServiceTime: 5 * time.Millisecond})
	var latencies []time.Duration
	var errs []error
	for i := 0; i < 6; i++ {
		tr := &Trace{}
		_, err := net.RPC(tr, "client", "server", Message{Kind: "ping", Size: 8})
		latencies = append(latencies, tr.Latency)
		errs = append(errs, err)
	}
	// Requests 1-2: full speed (10ms request + 10ms reply). 3-4: queued
	// (+5ms, +10ms on the request leg). 5-6: shed.
	want := []time.Duration{20, 20, 25, 30}
	for i, w := range want {
		if errs[i] != nil {
			t.Fatalf("request %d failed: %v", i+1, errs[i])
		}
		if latencies[i] != w*time.Millisecond {
			t.Fatalf("request %d latency %v, want %v", i+1, latencies[i], w*time.Millisecond)
		}
	}
	for i := 4; i < 6; i++ {
		if !errors.Is(errs[i], ErrOverloaded) {
			t.Fatalf("request %d: error %v, want ErrOverloaded", i+1, errs[i])
		}
	}
	ov := net.Overload()
	if ov.Queued != 2 || ov.Sheds != 2 || ov.PeakQueueDepth != 2 {
		t.Fatalf("overload stats %+v, want 2 queued / 2 sheds / peak 2", ov)
	}
	if ov.QueueDelay != 15*time.Millisecond {
		t.Fatalf("queue delay %v, want 15ms", ov.QueueDelay)
	}
}

func TestCapacityWindowResetsOnTick(t *testing.T) {
	net := newCapacityNet(t, CapacityConfig{PerTick: 1, QueueDepth: 0, ServiceTime: 5 * time.Millisecond})
	if _, err := net.RPC(nil, "client", "server", Message{Kind: "ping"}); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := net.RPC(nil, "client", "server", Message{Kind: "ping"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-capacity request: %v, want ErrOverloaded", err)
	}
	net.TickCapacity()
	if _, err := net.RPC(nil, "client", "server", Message{Kind: "ping"}); err != nil {
		t.Fatalf("request after tick: %v", err)
	}
}

func TestCapacityDoesNotApplyToReplies(t *testing.T) {
	// The *client* is capacity-limited; its outgoing requests are not
	// served by it, and replies to it must not enter its admission queue.
	net := New(Config{Seed: 1, BaseLatency: 10 * time.Millisecond})
	for _, id := range []NodeID{"client", "server"} {
		if err := net.Register(id, echoHandler()); err != nil {
			t.Fatalf("register %s: %v", id, err)
		}
	}
	if err := net.SetCapacity("client", CapacityConfig{PerTick: 1, QueueDepth: 0}); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := net.RPC(nil, "client", "server", Message{Kind: "ping"}); err != nil {
			t.Fatalf("request %d: %v", i+1, err)
		}
	}
	if ov := net.Overload(); ov.Sheds != 0 || ov.Queued != 0 {
		t.Fatalf("replies consumed the client's capacity: %+v", ov)
	}
}

func TestSetCapacityValidatesAndClears(t *testing.T) {
	net := New(Config{Seed: 1})
	if err := net.SetCapacity("ghost", CapacityConfig{PerTick: 1}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: %v, want ErrUnknownNode", err)
	}
	if err := net.Register("n", echoHandler()); err != nil {
		t.Fatalf("register: %v", err)
	}
	if err := net.SetCapacity("n", CapacityConfig{PerTick: 1, QueueDepth: 0}); err != nil {
		t.Fatalf("SetCapacity: %v", err)
	}
	if err := net.Register("c", echoHandler()); err != nil {
		t.Fatalf("register: %v", err)
	}
	if _, err := net.RPC(nil, "c", "n", Message{}); err != nil {
		t.Fatalf("within capacity: %v", err)
	}
	if _, err := net.RPC(nil, "c", "n", Message{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over capacity: %v, want ErrOverloaded", err)
	}
	// PerTick <= 0 removes the cap.
	if err := net.SetCapacity("n", CapacityConfig{}); err != nil {
		t.Fatalf("clear capacity: %v", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := net.RPC(nil, "c", "n", Message{}); err != nil {
			t.Fatalf("uncapped request %d: %v", i+1, err)
		}
	}
}

func TestCapacityShedChargesNoTraffic(t *testing.T) {
	net := newCapacityNet(t, CapacityConfig{PerTick: 1, QueueDepth: 0})
	if _, err := net.RPC(nil, "client", "server", Message{Kind: "ping", Size: 8}); err != nil {
		t.Fatalf("first request: %v", err)
	}
	before := net.Totals()
	tr := &Trace{}
	if _, err := net.RPC(tr, "client", "server", Message{Kind: "ping", Size: 8}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	after := net.Totals()
	if tr.Messages != 0 || tr.Latency != 0 {
		t.Fatalf("shed charged the trace: %+v", tr)
	}
	if after.Messages != before.Messages || after.Bytes != before.Bytes {
		t.Fatalf("shed charged network totals: %+v vs %+v", before, after)
	}
}
