package simnet

import (
	"errors"
	"testing"
	"time"
)

func echoHandler() HandlerFunc {
	return func(tr *Trace, from NodeID, msg Message) (Message, error) {
		return Message{Kind: msg.Kind, Payload: msg.Payload, Size: msg.Size}, nil
	}
}

func TestRPCDelivers(t *testing.T) {
	n := New(DefaultConfig(1))
	if err := n.Register("a", echoHandler()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := n.Register("b", echoHandler()); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tr := &Trace{}
	reply, err := n.RPC(tr, "a", "b", Message{Kind: "ping", Payload: 42, Size: 10})
	if err != nil {
		t.Fatalf("RPC: %v", err)
	}
	if reply.Payload.(int) != 42 {
		t.Fatalf("reply payload = %v", reply.Payload)
	}
	if tr.Hops != 1 {
		t.Fatalf("Hops = %d, want 1", tr.Hops)
	}
	if tr.Messages != 2 {
		t.Fatalf("Messages = %d, want 2 (request+reply)", tr.Messages)
	}
	if tr.Bytes != 20 {
		t.Fatalf("Bytes = %d, want 20", tr.Bytes)
	}
	if tr.Latency < 2*10*time.Millisecond {
		t.Fatalf("Latency = %v, want >= 20ms", tr.Latency)
	}
}

func TestDuplicateRegister(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	if err := n.Register("a", echoHandler()); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("got %v, want ErrDuplicateNode", err)
	}
}

func TestUnknownNode(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	if _, err := n.RPC(nil, "a", "ghost", Message{}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("got %v, want ErrUnknownNode", err)
	}
}

func TestOfflineNode(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	n.SetOnline("b", false)
	if _, err := n.RPC(nil, "a", "b", Message{}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("got %v, want ErrNodeOffline", err)
	}
	if n.Online("b") {
		t.Fatal("offline node reported online")
	}
	n.SetOnline("b", true)
	if _, err := n.RPC(nil, "a", "b", Message{}); err != nil {
		t.Fatalf("RPC after revival: %v", err)
	}
}

func TestOfflineSender(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	n.SetOnline("a", false)
	if _, err := n.RPC(nil, "a", "b", Message{}); !errors.Is(err, ErrNodeOffline) {
		t.Fatalf("got %v, want ErrNodeOffline", err)
	}
}

func TestPartition(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	n.SetPartition("b", 1)
	if _, err := n.RPC(nil, "a", "b", Message{}); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("got %v, want ErrPartitioned", err)
	}
	n.SetPartition("a", 1)
	if _, err := n.RPC(nil, "a", "b", Message{}); err != nil {
		t.Fatalf("same-partition RPC failed: %v", err)
	}
}

func TestLossRate(t *testing.T) {
	cfg := Config{Seed: 7, LossRate: 0.5}
	n := New(cfg)
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	drops := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		if _, err := n.RPC(nil, "a", "b", Message{}); err != nil {
			if !errors.Is(err, ErrDropped) {
				t.Fatalf("unexpected error: %v", err)
			}
			drops++
		}
	}
	// Each RPC has two chances to drop: expected failure rate 1-(1-p)^2 = .75
	if drops < trials/2 || drops == trials {
		t.Fatalf("drop count %d/%d implausible for 50%% loss", drops, trials)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int, Trace) {
		cfg := Config{Seed: 42, LossRate: 0.3, BaseLatency: time.Millisecond, JitterLatency: 10 * time.Millisecond}
		n := New(cfg)
		n.Register("a", echoHandler())
		n.Register("b", echoHandler())
		fails := 0
		for i := 0; i < 100; i++ {
			if _, err := n.RPC(nil, "a", "b", Message{Size: 1}); err != nil {
				fails++
			}
		}
		return fails, n.Totals()
	}
	f1, t1 := run()
	f2, t2 := run()
	if f1 != f2 || t1 != t2 {
		t.Fatalf("simulation not deterministic: %d/%+v vs %d/%+v", f1, t1, f2, t2)
	}
}

func TestNestedRPCAccumulatesTrace(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("c", echoHandler())
	n.Register("b", HandlerFunc(func(tr *Trace, from NodeID, msg Message) (Message, error) {
		// b forwards to c.
		return n.RPC(tr, "b", "c", msg)
	}))
	n.Register("a", echoHandler())
	tr := &Trace{}
	if _, err := n.RPC(tr, "a", "b", Message{Kind: "fwd", Size: 5}); err != nil {
		t.Fatalf("RPC: %v", err)
	}
	if tr.Hops != 2 {
		t.Fatalf("Hops = %d, want 2", tr.Hops)
	}
	if tr.Messages != 4 {
		t.Fatalf("Messages = %d, want 4", tr.Messages)
	}
}

func TestCast(t *testing.T) {
	n := New(DefaultConfig(1))
	got := 0
	n.Register("a", echoHandler())
	n.Register("b", HandlerFunc(func(tr *Trace, from NodeID, msg Message) (Message, error) {
		got++
		return Message{}, nil
	}))
	tr := &Trace{}
	if err := n.Cast(tr, "a", "b", Message{Kind: "notify", Size: 3}); err != nil {
		t.Fatalf("Cast: %v", err)
	}
	if got != 1 {
		t.Fatal("cast not delivered")
	}
	if tr.Messages != 1 {
		t.Fatalf("Messages = %d, want 1 (no reply)", tr.Messages)
	}
}

func TestTotalsAndReset(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	n.RPC(nil, "a", "b", Message{Size: 7})
	tot := n.Totals()
	if tot.Messages != 2 || tot.Bytes != 14 {
		t.Fatalf("Totals = %+v", tot)
	}
	if n.RPCCount() != 1 {
		t.Fatalf("RPCCount = %d", n.RPCCount())
	}
	n.ResetTotals()
	if n.Totals().Messages != 0 || n.RPCCount() != 0 {
		t.Fatal("reset did not clear totals")
	}
}

func TestTraceAdd(t *testing.T) {
	a := Trace{Hops: 1, Messages: 2, Bytes: 3, Latency: time.Second}
	b := Trace{Hops: 10, Messages: 20, Bytes: 30, Latency: time.Minute}
	a.Add(&b)
	if a.Hops != 11 || a.Messages != 22 || a.Bytes != 33 || a.Latency != time.Minute+time.Second {
		t.Fatalf("Add: %+v", a)
	}
}

func TestRandStableForLabel(t *testing.T) {
	n := New(DefaultConfig(5))
	a := n.Rand("x").Int63()
	b := n.Rand("x").Int63()
	c := n.Rand("y").Int63()
	if a != b {
		t.Fatal("same label gave different streams")
	}
	if a == c {
		t.Fatal("different labels gave same stream")
	}
}

func TestNodesListing(t *testing.T) {
	n := New(DefaultConfig(1))
	n.Register("a", echoHandler())
	n.Register("b", echoHandler())
	if got := len(n.Nodes()); got != 2 {
		t.Fatalf("Nodes len = %d", got)
	}
}
