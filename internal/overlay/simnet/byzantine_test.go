package simnet

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

// blobResp is a reply payload with a corruptible byte field, mirroring the
// shape of a DHT fetch reply.
type blobResp struct {
	Found bool
	Value []byte
}

// blobHandler serves a fixed value; state captures the handler's own slice
// so tests can prove corruption never mutates it.
func blobHandler(state []byte) HandlerFunc {
	return func(tr *Trace, from NodeID, msg Message) (Message, error) {
		return Message{Kind: msg.Kind, Payload: blobResp{Found: true, Value: state}, Size: len(state)}, nil
	}
}

func askBlob(t *testing.T, n *Network, from, to NodeID) blobResp {
	t.Helper()
	reply, err := n.RPC(nil, from, to, Message{Kind: "fetch", Size: 1})
	if err != nil {
		t.Fatalf("RPC: %v", err)
	}
	resp, ok := reply.Payload.(blobResp)
	if !ok {
		t.Fatalf("reply payload %T", reply.Payload)
	}
	return resp
}

func TestByzantineBitFlipCorruptsReplyNotHandlerState(t *testing.T) {
	n := New(DefaultConfig(1))
	state := []byte("the honest stored value")
	orig := append([]byte(nil), state...)
	n.Register("a", echoHandler())
	n.Register("b", blobHandler(state))
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzBitFlip, Rate: 1}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	resp := askBlob(t, n, "a", "b")
	if bytes.Equal(resp.Value, orig) {
		t.Fatal("rate-1 bit flip left the reply intact")
	}
	if len(resp.Value) != len(orig) {
		t.Fatalf("bit flip changed length %d -> %d", len(orig), len(resp.Value))
	}
	diff := 0
	for i := range orig {
		if resp.Value[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
	// The corruption must happen on a copy: the handler's own state — the
	// node's "disk" — stays pristine.
	if !bytes.Equal(state, orig) {
		t.Fatal("corrupting the reply mutated the handler's stored state")
	}
	if n.CorruptedReplies() != 1 {
		t.Fatalf("CorruptedReplies = %d, want 1", n.CorruptedReplies())
	}
}

func TestByzantineTruncateShortensReply(t *testing.T) {
	n := New(DefaultConfig(2))
	state := []byte("0123456789abcdef")
	n.Register("a", echoHandler())
	n.Register("b", blobHandler(state))
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzTruncate, Rate: 1}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	resp := askBlob(t, n, "a", "b")
	if len(resp.Value) >= len(state) {
		t.Fatalf("truncate kept %d bytes of %d", len(resp.Value), len(state))
	}
	if !bytes.HasPrefix(state, resp.Value) {
		t.Fatalf("truncation %q is not a prefix of %q", resp.Value, state)
	}
}

func TestByzantineReplayServesStaleReply(t *testing.T) {
	n := New(DefaultConfig(3))
	// The handler serves its live state; a replayer answers with the reply
	// it recorded on the previous call of the same kind — one step stale.
	state := []byte("version-1")
	n.Register("a", echoHandler())
	n.Register("b", blobHandler(state))
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzReplay, Rate: 1}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	first := askBlob(t, n, "a", "b")
	if string(first.Value) != "version-1" {
		t.Fatalf("first reply %q, want honest version-1 (nothing recorded yet)", first.Value)
	}
	// The state advances; the replay must serve the bytes recorded at call
	// one — proving the cache deep-copied them rather than aliasing the
	// handler's slice, which now reads differently.
	copy(state, []byte("version-2"))
	second := askBlob(t, n, "a", "b")
	if string(second.Value) != "version-1" {
		t.Fatalf("second reply %q, want replayed version-1", second.Value)
	}
	if n.CorruptedReplies() != 1 {
		t.Fatalf("CorruptedReplies = %d, want 1 (only the differing replay counts)", n.CorruptedReplies())
	}
	// One step stale, not pinned forever: the next replay serves what was
	// recorded on the second call — which now matches the live value, so it
	// is indistinguishable from honesty and not counted as corruption.
	third := askBlob(t, n, "a", "b")
	if string(third.Value) != "version-2" {
		t.Fatalf("third reply %q, want version-2 (recorded on the previous call)", third.Value)
	}
	if n.CorruptedReplies() != 1 {
		t.Fatalf("CorruptedReplies = %d, want still 1 (identical replays are not corruption)", n.CorruptedReplies())
	}
}

func TestByzantineEquivocatePinsLiesToCallers(t *testing.T) {
	n := New(DefaultConfig(4))
	state := []byte("consistent answer")
	n.Register("b", blobHandler(state))
	const callers = 24
	ids := make([]NodeID, callers)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("c%d", i))
		n.Register(ids[i], echoHandler())
	}
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzEquivocate, Rate: 0.5}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	lied, honest := 0, 0
	for _, id := range ids {
		first := askBlob(t, n, id, "b")
		if bytes.Equal(first.Value, state) {
			honest++
		} else {
			lied++
		}
		// Equivocation is per-caller deterministic: repeats see the same
		// behaviour, bit flip included.
		again := askBlob(t, n, id, "b")
		if !bytes.Equal(first.Value, again.Value) {
			t.Fatalf("caller %s saw two different answers: %q then %q", id, first.Value, again.Value)
		}
	}
	if lied == 0 || honest == 0 {
		t.Fatalf("equivocation at rate 0.5 split %d lied / %d honest; want both non-zero", lied, honest)
	}
}

func TestByzantineDeterministicAcrossRuns(t *testing.T) {
	run := func() ([]string, int) {
		n := New(DefaultConfig(42))
		n.Register("a", echoHandler())
		n.Register("b", blobHandler([]byte("deterministic payload bytes")))
		if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzBitFlip, Rate: 0.5, Seed: 7}); err != nil {
			t.Fatalf("SetByzantine: %v", err)
		}
		var replies []string
		for i := 0; i < 32; i++ {
			replies = append(replies, string(askBlob(t, n, "a", "b").Value))
		}
		return replies, n.CorruptedReplies()
	}
	r1, c1 := run()
	r2, c2 := run()
	if c1 != c2 {
		t.Fatalf("corruption counts diverged: %d vs %d", c1, c2)
	}
	if c1 == 0 || c1 == 32 {
		t.Fatalf("rate 0.5 corrupted %d/32; seeded stream looks degenerate", c1)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("reply %d diverged across identically seeded runs", i)
		}
	}
}

func TestByzantineLeavesRequestsAndPayloadFreeRepliesAlone(t *testing.T) {
	n := New(DefaultConfig(5))
	var got []byte
	n.Register("byz", echoHandler())
	n.Register("honest", HandlerFunc(func(tr *Trace, from NodeID, msg Message) (Message, error) {
		// Record what arrived: requests must never be corrupted, even when
		// the *sender* is Byzantine (responder model).
		got = append([]byte(nil), msg.Payload.(blobResp).Value...)
		return Message{Kind: msg.Kind, Payload: "plain ack"}, nil
	}))
	if err := n.SetByzantine("byz", ByzantineConfig{Mode: ByzBitFlip, Rate: 1}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	sent := []byte("request payload")
	reply, err := n.RPC(nil, "byz", "honest", Message{Kind: "put", Payload: blobResp{Value: sent}, Size: len(sent)})
	if err != nil {
		t.Fatalf("RPC: %v", err)
	}
	if !bytes.Equal(got, sent) {
		t.Fatalf("request corrupted in flight: sent %q, handler saw %q", sent, got)
	}
	if reply.Payload.(string) != "plain ack" {
		t.Fatalf("reply %v", reply.Payload)
	}
	// A Byzantine responder whose reply has no byte payload corrupts nothing.
	n.Register("caller", echoHandler())
	if _, err := n.RPC(nil, "caller", "byz", Message{Kind: "ping", Payload: 7}); err != nil {
		t.Fatalf("RPC: %v", err)
	}
	if n.CorruptedReplies() != 0 {
		t.Fatalf("CorruptedReplies = %d, want 0 (no corruptible payloads)", n.CorruptedReplies())
	}
}

func TestSetByzantineValidation(t *testing.T) {
	n := New(DefaultConfig(6))
	if err := n.SetByzantine("ghost", ByzantineConfig{Mode: ByzBitFlip, Rate: 1}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("unknown node: got %v, want ErrUnknownNode", err)
	}
	n.Register("a", echoHandler())
	n.Register("b", blobHandler([]byte("value")))
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzBitFlip, Rate: 1}); err != nil {
		t.Fatalf("SetByzantine: %v", err)
	}
	if n.ByzantineMode("b") != ByzBitFlip {
		t.Fatalf("mode = %v", n.ByzantineMode("b"))
	}
	// ByzNone clears; replies are honest again.
	if err := n.SetByzantine("b", ByzantineConfig{Mode: ByzNone}); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if n.ByzantineMode("b") != ByzNone {
		t.Fatalf("mode after clear = %v", n.ByzantineMode("b"))
	}
	if resp := askBlob(t, n, "a", "b"); string(resp.Value) != "value" {
		t.Fatalf("cleared node still corrupts: %q", resp.Value)
	}
}
