package simnet

import (
	"fmt"
	"math/rand"
)

// This file implements seeded fault schedules: deterministic churn
// (up/down windows per node, optionally crash-restart with state loss) and
// flaky windows (temporarily elevated loss rate), driven in discrete ticks
// between operations. Experiments advance the schedule themselves so the
// exact fault pattern is reproducible from the seed alone.

// ChurnConfig parameterizes a FaultSchedule.
type ChurnConfig struct {
	// Seed drives the schedule independently of the network's own RNG, so
	// two systems under test can face an identical fault pattern.
	Seed int64
	// Uptime is the steady-state fraction of ticks each node is online,
	// in (0, 1]. 1 disables churn.
	Uptime float64
	// MeanOnline is the mean length, in ticks, of one online window
	// (geometric; >= 1). Offline window lengths follow from Uptime.
	MeanOnline int
	// CrashRestart makes every down transition a Crash (volatile state is
	// lost via the node's OnCrash hook) instead of a plain offline mark.
	CrashRestart bool
	// FlakyFraction is the probability that any given tick falls in a
	// flaky window, during which the loss rate is raised to FlakyLoss.
	FlakyFraction float64
	// FlakyLoss is the loss rate in effect during flaky windows.
	FlakyLoss float64
}

// DefaultChurnConfig returns a 70%-uptime schedule with mean online
// windows of 20 ticks and no flaky windows.
func DefaultChurnConfig(seed int64) ChurnConfig {
	return ChurnConfig{Seed: seed, Uptime: 0.7, MeanOnline: 20}
}

// FaultSchedule applies a deterministic churn/flakiness pattern to a
// network, one tick at a time. It is not safe for concurrent use; drive it
// from the experiment loop.
type FaultSchedule struct {
	net      *Network
	cfg      ChurnConfig
	rng      *rand.Rand
	nodes    []NodeID
	online   map[NodeID]bool
	baseLoss float64
	pDown    float64
	pUp      float64
	ticks    int
}

// NewFaultSchedule builds a schedule over the given nodes (all must be
// registered). Nodes excluded from the slice — typically the experiment's
// client — are never churned.
func NewFaultSchedule(net *Network, nodes []NodeID, cfg ChurnConfig) (*FaultSchedule, error) {
	if cfg.Uptime <= 0 || cfg.Uptime > 1 {
		return nil, fmt.Errorf("simnet: churn uptime %v out of (0,1]", cfg.Uptime)
	}
	if cfg.MeanOnline < 1 {
		cfg.MeanOnline = 1
	}
	s := &FaultSchedule{
		net:      net,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		nodes:    append([]NodeID(nil), nodes...),
		online:   make(map[NodeID]bool, len(nodes)),
		baseLoss: net.CurrentLossRate(),
	}
	// Two-state Markov chain per node: P(down|online) = 1/MeanOnline and
	// P(up|offline) chosen so the stationary online fraction equals Uptime.
	s.pDown = 1 / float64(cfg.MeanOnline)
	if cfg.Uptime < 1 {
		s.pUp = s.pDown * cfg.Uptime / (1 - cfg.Uptime)
		if s.pUp > 1 {
			s.pUp = 1
		}
	}
	for _, id := range s.nodes {
		if !net.Online(id) {
			return nil, fmt.Errorf("simnet: churn over node %s: not registered and online", id)
		}
		s.online[id] = true
	}
	return s, nil
}

// Tick advances the schedule by one step, applying up/down transitions and
// the flaky-window loss rate. It returns the number of state transitions
// applied this tick.
func (s *FaultSchedule) Tick() int {
	s.ticks++
	transitions := 0
	if s.cfg.Uptime < 1 {
		for _, id := range s.nodes {
			if s.online[id] {
				if s.rng.Float64() < s.pDown {
					if s.cfg.CrashRestart {
						_ = s.net.Crash(id)
					} else {
						_ = s.net.SetOnline(id, false)
					}
					s.online[id] = false
					transitions++
				}
			} else if s.rng.Float64() < s.pUp {
				_ = s.net.SetOnline(id, true)
				s.online[id] = true
				transitions++
			}
		}
	}
	if s.cfg.FlakyFraction > 0 {
		if s.rng.Float64() < s.cfg.FlakyFraction {
			s.net.SetLossRate(s.cfg.FlakyLoss)
		} else {
			s.net.SetLossRate(s.baseLoss)
		}
	}
	return transitions
}

// Restore brings every scheduled node back online and resets the loss rate
// to its pre-schedule value (end-of-experiment cleanup).
func (s *FaultSchedule) Restore() {
	for _, id := range s.nodes {
		_ = s.net.SetOnline(id, true)
		s.online[id] = true
	}
	s.net.SetLossRate(s.baseLoss)
}

// OnlineCount reports how many scheduled nodes the schedule currently
// holds online.
func (s *FaultSchedule) OnlineCount() int {
	c := 0
	for _, up := range s.online {
		if up {
			c++
		}
	}
	return c
}

// Ticks reports how many ticks have been applied.
func (s *FaultSchedule) Ticks() int { return s.ticks }
