package simnet

import (
	"fmt"
	"math/rand"
	"reflect"
)

// This file implements seeded Byzantine reply corruption: per-node fault
// modes under which a node's RPC *replies* are silently mutated before
// delivery. Unlike the omission faults elsewhere in this package (drops,
// offline nodes, partitions), corruption produces no error — the caller
// receives wrong bytes and must detect them itself (checksummed records,
// signed chains, the integrity scrubber of internal/resilience/scrub).
// Requests are never corrupted: the model is a Byzantine *responder*, not a
// Byzantine wire.
//
// Corruption applies to the exported []byte fields of a reply payload
// (e.g. a DHT fetchResp.Value); replies without byte payloads — routing
// messages, plain acks — pass through untouched. Mutations always operate
// on fresh copies, so a handler's stored state is never aliased into the
// corrupted reply.

// ByzMode selects a node's Byzantine corruption behaviour.
type ByzMode int

// Byzantine fault modes.
const (
	// ByzNone disables corruption (the default).
	ByzNone ByzMode = iota
	// ByzBitFlip flips one random bit in each byte payload of a reply.
	ByzBitFlip
	// ByzTruncate cuts each byte payload to a random shorter prefix.
	ByzTruncate
	// ByzReplay serves a previously recorded reply of the same RPC kind
	// instead of the current one (stale-value replay). Until a reply has
	// been recorded the node answers honestly.
	ByzReplay
	// ByzEquivocate gives different answers to different callers: a
	// deterministic fraction (Rate) of caller identities always receive
	// bit-flipped replies, the rest always receive honest ones.
	ByzEquivocate
)

// String renders the mode.
func (m ByzMode) String() string {
	switch m {
	case ByzNone:
		return "none"
	case ByzBitFlip:
		return "bit-flip"
	case ByzTruncate:
		return "truncate"
	case ByzReplay:
		return "replay"
	case ByzEquivocate:
		return "equivocate"
	default:
		return fmt.Sprintf("byz(%d)", int(m))
	}
}

// ByzantineConfig parameterizes one node's corruption behaviour.
type ByzantineConfig struct {
	// Mode is the corruption behaviour.
	Mode ByzMode
	// Rate is the per-reply corruption probability in [0,1] for BitFlip,
	// Truncate, and Replay; for Equivocate it is the fraction of caller
	// identities that receive corrupted replies. 0 behaves like ByzNone.
	Rate float64
	// Seed perturbs the node's corruption RNG; the stream is derived from
	// the network seed, the node id, and this value, so two runs with the
	// same seeds corrupt identically.
	Seed int64
}

// byzState is one node's corruption state.
type byzState struct {
	cfg       ByzantineConfig
	rng       *rand.Rand
	lastReply map[string]Message // per RPC kind, deep-copied (ByzReplay)
}

// SetByzantine configures (or, with ByzNone, clears) a node's Byzantine
// corruption mode. Unregistered nodes are rejected, mirroring SetOnline.
func (n *Network) SetByzantine(id NodeID, cfg ByzantineConfig) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if cfg.Mode == ByzNone || cfg.Rate <= 0 {
		delete(n.byz, id)
		return nil
	}
	if n.byz == nil {
		n.byz = make(map[NodeID]*byzState)
	}
	n.byz[id] = &byzState{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(n.cfg.Seed ^ labelHash(string(id)) ^ cfg.Seed)),
		lastReply: make(map[string]Message),
	}
	return nil
}

// ByzantineMode reports a node's configured corruption mode (ByzNone when
// unconfigured or unknown).
func (n *Network) ByzantineMode(id NodeID) ByzMode {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s, ok := n.byz[id]; ok {
		return s.cfg.Mode
	}
	return ByzNone
}

// noteCorrupted counts one corrupted reply in the network counter and, when
// telemetry is wired, the registry. Call with n.mu held.
func (n *Network) noteCorrupted() {
	n.corrupted++
	if n.tel != nil {
		n.tel.corrupted.Inc()
	}
}

// CorruptedReplies reports how many replies the network has corrupted since
// the last ResetTotals — the injected-fault count experiments compare
// against how many corruptions *surfaced* to the application.
func (n *Network) CorruptedReplies() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.corrupted
}

// maybeCorrupt applies the responder's Byzantine mode to a reply, returning
// the (possibly replaced) message. Called with n.mu NOT held.
func (n *Network) maybeCorrupt(from, to NodeID, reply Message) Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.byz[to]
	if s == nil {
		return reply
	}
	switch s.cfg.Mode {
	case ByzBitFlip, ByzTruncate:
		if s.rng.Float64() >= s.cfg.Rate {
			return reply
		}
		out, mutated := mutatePayload(reply, func(b []byte) []byte {
			if s.cfg.Mode == ByzTruncate {
				return truncateBytes(s.rng, b)
			}
			return flipBit(s.rng, b)
		})
		if mutated {
			n.noteCorrupted()
		}
		return out

	case ByzReplay:
		// Record the honest reply (deep copy) for future replays, then
		// decide whether to serve a previously recorded one instead.
		stale, have := s.lastReply[reply.Kind]
		s.lastReply[reply.Kind], _ = mutatePayload(reply, copyBytes)
		if !have || s.rng.Float64() >= s.cfg.Rate {
			return reply
		}
		// Serve a copy of the stale reply so later replays stay pristine
		// even if the caller mutates what it received.
		out, _ := mutatePayload(stale, copyBytes)
		if !payloadEqual(out, reply) {
			n.noteCorrupted()
			return out
		}
		return reply

	case ByzEquivocate:
		// The lie is a deterministic function of the caller identity: the
		// same caller always sees the same (corrupted or honest) behaviour.
		pair := labelHash(string(to)+"\x00"+string(from)) ^ n.cfg.Seed ^ s.cfg.Seed
		if float64(uint64(pair)%1000)/1000 >= s.cfg.Rate {
			return reply
		}
		flipRng := rand.New(rand.NewSource(pair))
		out, mutated := mutatePayload(reply, func(b []byte) []byte { return flipBit(flipRng, b) })
		if mutated {
			n.noteCorrupted()
		}
		return out
	}
	return reply
}

// flipBit returns a copy of b with one random bit flipped (nil-safe).
func flipBit(rng *rand.Rand, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	c := append([]byte(nil), b...)
	bit := rng.Intn(len(c) * 8)
	c[bit/8] ^= 1 << uint(bit%8)
	return c
}

// truncateBytes returns a random strict prefix of b (nil-safe).
func truncateBytes(rng *rand.Rand, b []byte) []byte {
	if len(b) == 0 {
		return b
	}
	return append([]byte(nil), b[:rng.Intn(len(b))]...)
}

// copyBytes is the identity mutation: it deep-copies a byte field, used to
// detach recorded or replayed messages from caller-visible slices.
func copyBytes(b []byte) []byte { return append([]byte(nil), b...) }

// mutatePayload applies mut to every exported non-empty []byte field of the
// message payload — including each element of exported [][]byte fields, so
// batch replies carrying many values are as corruptible as single-value
// replies — operating on a fresh copy of the payload struct. It reports
// whether any field was visited. Payloads that are themselves []byte are
// handled directly; payloads without byte fields (routing replies, acks)
// pass through unchanged.
func mutatePayload(msg Message, mut func([]byte) []byte) (Message, bool) {
	if msg.Payload == nil {
		return msg, false
	}
	if b, ok := msg.Payload.([]byte); ok {
		if len(b) == 0 {
			return msg, false
		}
		msg.Payload = mut(b)
		return msg, true
	}
	v := reflect.ValueOf(msg.Payload)
	if v.Kind() != reflect.Struct {
		return msg, false
	}
	cp := reflect.New(v.Type()).Elem()
	cp.Set(v)
	mutated := false
	for i := 0; i < cp.NumField(); i++ {
		f := cp.Field(i)
		if !f.CanSet() || f.Kind() != reflect.Slice {
			continue
		}
		// [][]byte: mutate each non-empty element (batch value lists).
		if f.Type().Elem().Kind() == reflect.Slice && f.Type().Elem().Elem().Kind() == reflect.Uint8 {
			vs, ok := f.Interface().([][]byte)
			if !ok || len(vs) == 0 {
				continue
			}
			out := make([][]byte, len(vs))
			touched := false
			for j, b := range vs {
				if len(b) == 0 {
					out[j] = b
					continue
				}
				out[j] = mut(b)
				touched = true
			}
			if touched {
				f.Set(reflect.ValueOf(out))
				mutated = true
			}
			continue
		}
		if f.Type().Elem().Kind() != reflect.Uint8 {
			continue
		}
		b, ok := f.Interface().([]byte)
		if !ok || len(b) == 0 {
			continue
		}
		f.Set(reflect.ValueOf(mut(b)))
		mutated = true
	}
	if !mutated {
		return msg, false
	}
	msg.Payload = cp.Interface()
	return msg, true
}

// payloadEqual reports whether two messages carry deeply equal payloads —
// used so a replay of an identical reply is not counted as a corruption.
func payloadEqual(a, b Message) bool {
	return a.Kind == b.Kind && reflect.DeepEqual(a.Payload, b.Payload)
}

// labelHash is the deterministic string hash shared with Network.Rand.
func labelHash(label string) int64 {
	var h int64 = 1125899906842597
	for _, c := range label {
		h = h*31 + int64(c)
	}
	return h
}
