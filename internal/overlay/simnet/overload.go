package simnet

import (
	"errors"
	"fmt"
	"time"
)

// This file implements per-node service capacity: a deterministic model of
// overload as a first-class fault. Every other fault in this package is
// binary — a node is reachable or it isn't — but a flash crowd on a
// celebrity profile produces a third state: the node is up, honest, and
// simply cannot absorb the traffic directed at it. A capacity-configured
// node serves up to PerTick requests per tick window at full speed, absorbs
// the next QueueDepth requests with a deterministic queueing delay
// (position × ServiceTime, charged to the trace like propagation delay),
// and sheds everything beyond that with ErrOverloaded — an explicit,
// immediate refusal, distinct from loss (the request never arrived) and
// corruption (the reply lies).
//
// Determinism: the model draws no randomness. Within a tick window the
// queue position of a request is its arrival index at the node, so a serial
// experiment loop reproduces byte-identical delays and shed decisions from
// the seed alone; experiments advance windows themselves with TickCapacity.

// ErrOverloaded reports that a request was refused because the destination
// node's admission queue was full: the node is online and honest but cannot
// absorb the offered load. The request was not served and had no side
// effects — retrying is safe, and a retry directed at a different replica
// (or after backing off) may succeed.
var ErrOverloaded = errors.New("simnet: node overloaded, request shed")

// CapacityConfig caps one node's per-tick service rate.
type CapacityConfig struct {
	// PerTick is the number of requests the node serves at full speed per
	// tick window (<= 0 removes the cap).
	PerTick int
	// QueueDepth is the number of requests absorbed beyond PerTick per
	// window; each is served after a queueing delay of its queue position
	// (1-based) times ServiceTime. 0 means every request beyond PerTick is
	// shed immediately.
	QueueDepth int
	// ServiceTime is the per-position queueing delay. <= 0 defaults to the
	// network's BaseLatency.
	ServiceTime time.Duration
}

// capacityState is one node's admission bookkeeping for the current tick
// window.
type capacityState struct {
	cfg    CapacityConfig
	served int // requests admitted (fast + queued) this window
}

// OverloadStats aggregates the network's overload accounting since the last
// ResetTotals.
type OverloadStats struct {
	// Queued is the number of requests served after a queueing delay.
	Queued int
	// Sheds is the number of requests refused with ErrOverloaded.
	Sheds int
	// PeakQueueDepth is the deepest queue position any request was served
	// from.
	PeakQueueDepth int
	// QueueDelay is the total queueing delay charged.
	QueueDelay time.Duration
}

// SetCapacity configures (or, with PerTick <= 0, removes) a node's service
// capacity. Unregistered nodes are rejected, mirroring SetOnline.
func (n *Network) SetCapacity(id NodeID, cfg CapacityConfig) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	if cfg.PerTick <= 0 {
		delete(n.capacity, id)
		return nil
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = n.cfg.BaseLatency
	}
	if n.capacity == nil {
		n.capacity = make(map[NodeID]*capacityState)
	}
	n.capacity[id] = &capacityState{cfg: cfg}
	return nil
}

// TickCapacity opens a new tick window: every capacity-configured node's
// served count resets, so the next PerTick requests are again served at
// full speed, and the network's tick clock advances one step. Experiments
// drive it from the same loop that ticks fault schedules; registered
// OnTick hooks (windowed telemetry, scenario annotation) ride the same
// clock and fire after the window opens, outside the network lock.
func (n *Network) TickCapacity() {
	n.mu.Lock()
	for _, st := range n.capacity {
		st.served = 0
	}
	n.tick++
	tick := n.tick
	hooks := n.onTick
	n.mu.Unlock()
	for _, fn := range hooks {
		fn(tick)
	}
}

// OnTick registers a hook invoked after every TickCapacity advance with the
// new tick number (1-based). Hooks run outside the network lock, in
// registration order — the plumbing that lets the windowed telemetry
// collector ride the simnet tick clock instead of a wall clock.
func (n *Network) OnTick(fn func(tick int)) {
	if fn == nil {
		return
	}
	n.mu.Lock()
	n.onTick = append(n.onTick, fn)
	n.mu.Unlock()
}

// Tick returns the tick clock's current position (the number of
// TickCapacity calls so far).
func (n *Network) Tick() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tick
}

// Overload returns the overload accounting since the last ResetTotals.
func (n *Network) Overload() OverloadStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.overload
}

// admitCapacity applies the destination's capacity model to one request.
// It returns the queueing delay to charge, or ErrOverloaded when the
// request is shed. Call with n.mu held.
func (n *Network) admitCapacity(to NodeID) (time.Duration, error) {
	st := n.capacity[to]
	if st == nil {
		return 0, nil
	}
	st.served++
	if st.served <= st.cfg.PerTick {
		return 0, nil
	}
	qpos := st.served - st.cfg.PerTick
	if qpos > st.cfg.QueueDepth {
		st.served-- // shed requests occupy no service slot
		n.overload.Sheds++
		if n.tel != nil {
			n.tel.sheds.Inc()
		}
		return 0, fmt.Errorf("%w: %s", ErrOverloaded, to)
	}
	delay := time.Duration(qpos) * st.cfg.ServiceTime
	n.overload.Queued++
	n.overload.QueueDelay += delay
	if qpos > n.overload.PeakQueueDepth {
		n.overload.PeakQueueDepth = qpos
	}
	if n.tel != nil {
		n.tel.queued.Inc()
		n.tel.queueDelay.ObserveDuration(delay)
		if float64(qpos) > n.tel.queueDepth.Value() {
			n.tel.queueDepth.Set(float64(qpos))
		}
	}
	return delay, nil
}
