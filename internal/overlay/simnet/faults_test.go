package simnet

import (
	"errors"
	"fmt"
	"testing"
)

// echoCounter registers a handler that counts invocations and echoes.
func echoCounter(t *testing.T, n *Network, id NodeID) *int {
	t.Helper()
	count := new(int)
	err := n.Register(id, HandlerFunc(func(tr *Trace, from NodeID, msg Message) (Message, error) {
		*count++
		return Message{Kind: msg.Kind, Size: 8}, nil
	}))
	if err != nil {
		t.Fatalf("Register(%s): %v", id, err)
	}
	return count
}

func TestSetOnlineUnknownNodeRejected(t *testing.T) {
	n := New(DefaultConfig(1))
	if err := n.SetOnline("ghost", false); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetOnline on unregistered node: got %v, want ErrUnknownNode", err)
	}
	// The rejected call must not leave the node pre-churned: registering it
	// afterwards yields an online node.
	echoCounter(t, n, "ghost")
	if !n.Online("ghost") {
		t.Fatal("node registered after a rejected SetOnline(false) starts offline")
	}
}

func TestSetPartitionUnknownNodeRejected(t *testing.T) {
	n := New(DefaultConfig(1))
	if err := n.SetPartition("ghost", 7); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("SetPartition on unregistered node: got %v, want ErrUnknownNode", err)
	}
	// Registering afterwards must land the node in the default group.
	echoCounter(t, n, "a")
	echoCounter(t, n, "ghost")
	if _, err := n.RPC(nil, "a", "ghost", Message{Kind: "ping", Size: 4}); err != nil {
		t.Fatalf("rejected SetPartition leaked state: %v", err)
	}
}

func TestReplyLossIsDistinctFromRequestLoss(t *testing.T) {
	// Under loss, a drop on the reply direction must surface as
	// ErrReplyLost — the handler has already executed — while a drop on
	// the request direction must not. Sweep seeds until both cases occur.
	sawReplyLost, sawRequestLost := false, false
	for seed := int64(0); seed < 200 && !(sawReplyLost && sawRequestLost); seed++ {
		n := New(Config{Seed: seed, LossRate: 0.4})
		count := echoCounter(t, n, "b")
		echoCounter(t, n, "a")
		before := *count
		_, err := n.RPC(nil, "a", "b", Message{Kind: "ping", Size: 4})
		handled := *count > before
		switch {
		case err == nil:
		case errors.Is(err, ErrReplyLost):
			sawReplyLost = true
			if !handled {
				t.Fatal("ErrReplyLost but the handler never ran")
			}
			if !errors.Is(err, ErrDropped) {
				t.Fatalf("ErrReplyLost must wrap its delivery cause, got %v", err)
			}
		case errors.Is(err, ErrDropped):
			sawRequestLost = true
			if handled {
				t.Fatal("request-direction drop reported but the handler ran")
			}
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if !sawReplyLost || !sawRequestLost {
		t.Fatalf("seed sweep did not produce both cases (reply=%v request=%v)", sawReplyLost, sawRequestLost)
	}
}

func TestCrashFiresStateLossHook(t *testing.T) {
	n := New(DefaultConfig(3))
	echoCounter(t, n, "a")
	state := map[string]string{"k": "v"}
	if err := n.OnCrash("a", func() { state = map[string]string{} }); err != nil {
		t.Fatalf("OnCrash: %v", err)
	}
	if err := n.Crash("a"); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	if n.Online("a") {
		t.Fatal("crashed node still online")
	}
	if len(state) != 0 {
		t.Fatal("crash hook did not clear volatile state")
	}
	if err := n.SetOnline("a", true); err != nil {
		t.Fatalf("restart: %v", err)
	}
	if !n.Online("a") {
		t.Fatal("restarted node offline")
	}
	if err := n.Crash("ghost"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Crash on unregistered node: got %v, want ErrUnknownNode", err)
	}
}

func TestFaultScheduleDeterministicAndOnTarget(t *testing.T) {
	build := func() (*Network, *FaultSchedule, []NodeID) {
		n := New(DefaultConfig(5))
		names := make([]NodeID, 30)
		for i := range names {
			names[i] = NodeID(fmt.Sprintf("n%d", i))
			echoCounter(t, n, names[i])
		}
		s, err := NewFaultSchedule(n, names, ChurnConfig{Seed: 42, Uptime: 0.7, MeanOnline: 10})
		if err != nil {
			t.Fatalf("NewFaultSchedule: %v", err)
		}
		return n, s, names
	}
	_, s1, _ := build()
	n2, s2, names := build()
	onlineTicks, totalTicks := 0, 0
	for tick := 0; tick < 400; tick++ {
		t1 := s1.Tick()
		t2 := s2.Tick()
		if t1 != t2 || s1.OnlineCount() != s2.OnlineCount() {
			t.Fatalf("tick %d: schedules with equal seeds diverged (%d/%d vs %d/%d)",
				tick, t1, s1.OnlineCount(), t2, s2.OnlineCount())
		}
		onlineTicks += s1.OnlineCount()
		totalTicks += len(names)
	}
	frac := float64(onlineTicks) / float64(totalTicks)
	if frac < 0.6 || frac > 0.8 {
		t.Fatalf("observed uptime %.2f, want ≈0.7", frac)
	}
	s2.Restore()
	for _, id := range names {
		if !n2.Online(id) {
			t.Fatalf("Restore left %s offline", id)
		}
	}
}

func TestFaultScheduleFlakyWindows(t *testing.T) {
	n := New(Config{Seed: 9, LossRate: 0.01})
	echoCounter(t, n, "a")
	s, err := NewFaultSchedule(n, nil, ChurnConfig{Seed: 7, Uptime: 1, MeanOnline: 5, FlakyFraction: 0.5, FlakyLoss: 0.9})
	if err != nil {
		t.Fatalf("NewFaultSchedule: %v", err)
	}
	sawFlaky, sawBase := false, false
	for i := 0; i < 100; i++ {
		s.Tick()
		switch n.CurrentLossRate() {
		case 0.9:
			sawFlaky = true
		case 0.01:
			sawBase = true
		default:
			t.Fatalf("unexpected loss rate %v", n.CurrentLossRate())
		}
	}
	if !sawFlaky || !sawBase {
		t.Fatalf("flaky windows never toggled (flaky=%v base=%v)", sawFlaky, sawBase)
	}
	s.Restore()
	if n.CurrentLossRate() != 0.01 {
		t.Fatalf("Restore did not reset loss rate: %v", n.CurrentLossRate())
	}
}

func TestFaultScheduleCrashRestartLosesState(t *testing.T) {
	n := New(DefaultConfig(11))
	echoCounter(t, n, "a")
	crashes := 0
	if err := n.OnCrash("a", func() { crashes++ }); err != nil {
		t.Fatalf("OnCrash: %v", err)
	}
	s, err := NewFaultSchedule(n, []NodeID{"a"}, ChurnConfig{Seed: 3, Uptime: 0.5, MeanOnline: 3, CrashRestart: true})
	if err != nil {
		t.Fatalf("NewFaultSchedule: %v", err)
	}
	downs := 0
	wasUp := true
	for i := 0; i < 200; i++ {
		s.Tick()
		up := n.Online("a")
		if wasUp && !up {
			downs++
		}
		wasUp = up
	}
	if downs == 0 {
		t.Fatal("schedule never took the node down")
	}
	if crashes != downs {
		t.Fatalf("crash hook fired %d times for %d down transitions", crashes, downs)
	}
}
