// Package simnet provides a deterministic in-memory simulated network on
// which the DOSN overlays (internal/overlay/...) run.
//
// The paper's Section II classifies DOSN architectures by how their control
// and storage overlays are organized; comparing them (experiment E6/E7 in
// DESIGN.md) requires a common substrate that accounts for messages, hops
// and latency, and that can model node churn. A real testbed is substituted
// by this simulator (DESIGN.md §2): nodes are in-process handlers, RPCs are
// synchronous calls with a seeded latency model, and failures (offline
// nodes, message loss, partitions) are injected deterministically.
package simnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"godosn/internal/telemetry"
)

// NodeID identifies a node in the simulated network.
type NodeID string

// Errors returned by this package.
var (
	ErrUnknownNode   = errors.New("simnet: unknown node")
	ErrNodeOffline   = errors.New("simnet: node offline")
	ErrDropped       = errors.New("simnet: message dropped")
	ErrPartitioned   = errors.New("simnet: nodes partitioned")
	ErrDuplicateNode = errors.New("simnet: node already registered")
	// ErrReplyLost reports that a request was delivered and handled but the
	// reply never reached the caller. The handler's side effects have
	// happened; retry logic must treat the operation as possibly applied
	// (safe only for idempotent operations). The underlying delivery
	// failure (drop, offline, partition) is wrapped and inspectable.
	ErrReplyLost = errors.New("simnet: reply lost")
)

// Message is an application-level message; payloads stay in memory.
type Message struct {
	// Kind routes the message to handler logic.
	Kind string
	// Payload is the message body; handlers type-assert it.
	Payload any
	// Size is the simulated wire size in bytes, used for traffic accounting.
	Size int
}

// Handler processes incoming RPCs on a node.
type Handler interface {
	// HandleRPC processes a request and returns a reply. The trace must be
	// passed along for any nested RPCs the handler issues.
	HandleRPC(tr *Trace, from NodeID, msg Message) (Message, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(tr *Trace, from NodeID, msg Message) (Message, error)

// HandleRPC implements Handler.
func (f HandlerFunc) HandleRPC(tr *Trace, from NodeID, msg Message) (Message, error) {
	return f(tr, from, msg)
}

var _ Handler = (HandlerFunc)(nil)

// Trace accumulates the cost of one logical operation (e.g. a DHT lookup)
// across all RPCs it triggers.
type Trace struct {
	// Hops counts RPC edges traversed.
	Hops int
	// Messages counts individual messages (request + reply each count 1).
	Messages int
	// Bytes sums simulated payload sizes.
	Bytes int
	// Latency sums simulated one-way delays along the RPC chain.
	Latency time.Duration
}

// Add merges another trace's costs (for fan-out operations).
func (t *Trace) Add(other *Trace) {
	t.Hops += other.Hops
	t.Messages += other.Messages
	t.Bytes += other.Bytes
	t.Latency += other.Latency
}

// Config parameterizes the simulated network.
type Config struct {
	// Seed makes loss and latency jitter deterministic.
	Seed int64
	// BaseLatency is the fixed one-way delay between any two nodes.
	BaseLatency time.Duration
	// JitterLatency is the maximum additional random one-way delay.
	JitterLatency time.Duration
	// LossRate is the probability in [0,1) that a message is dropped.
	LossRate float64
}

// DefaultConfig returns a deterministic lossless network configuration.
func DefaultConfig(seed int64) Config {
	return Config{Seed: seed, BaseLatency: 10 * time.Millisecond, JitterLatency: 5 * time.Millisecond}
}

// Network is the simulated network. It is safe for concurrent use.
type Network struct {
	mu        sync.Mutex
	cfg       Config
	rng       *rand.Rand
	nodes     map[NodeID]Handler
	offline   map[NodeID]bool
	partOf    map[NodeID]int // partition group; 0 = default
	onCrash   map[NodeID]func()
	byz       map[NodeID]*byzState // Byzantine reply corruption (byzantine.go)
	corrupted int                  // replies corrupted since last reset
	capacity  map[NodeID]*capacityState
	overload  OverloadStats
	totals    Trace
	rpcCount  int
	tel       *netTelemetry // nil until SetTelemetry

	tick   int              // tick-clock position (advanced by TickCapacity)
	onTick []func(tick int) // tick hooks, invoked outside the lock
}

// netTelemetry holds the network's registry-backed counters, resolved once
// at SetTelemetry so the RPC path pays pointer loads, not map lookups.
type netTelemetry struct {
	rpcs       *telemetry.Counter
	messages   *telemetry.Counter
	bytes      *telemetry.Counter
	dropped    *telemetry.Counter
	offline    *telemetry.Counter
	partition  *telemetry.Counter
	replyLost  *telemetry.Counter
	corrupted  *telemetry.Counter
	sheds      *telemetry.Counter
	queued     *telemetry.Counter
	queueDepth *telemetry.Gauge
	delay      *telemetry.Histogram
	queueDelay *telemetry.Histogram
}

// SetTelemetry wires the network's traffic and fault accounting into a
// metrics registry: simnet_rpcs_total, simnet_messages_total,
// simnet_bytes_total, per-fault-class drop counters,
// simnet_corrupted_replies_total, the overload instruments
// (simnet_overload_sheds_total, simnet_overload_queued_total, the
// simnet_overload_queue_depth_peak gauge, and the
// simnet_overload_queue_delay_ms histogram), and a one-way delay histogram
// (simnet_delay_ms, simulated milliseconds — never wall clock). nil
// detaches. The pre-existing Totals/RPCCount/CorruptedReplies accessors
// keep working; the registry is the shared view other layers report into.
func (n *Network) SetTelemetry(reg *telemetry.Registry) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if reg == nil {
		n.tel = nil
		return
	}
	n.tel = &netTelemetry{
		rpcs:       reg.Counter("simnet_rpcs_total"),
		messages:   reg.Counter("simnet_messages_total"),
		bytes:      reg.Counter("simnet_bytes_total"),
		dropped:    reg.Counter("simnet_dropped_total"),
		offline:    reg.Counter("simnet_offline_refusals_total"),
		partition:  reg.Counter("simnet_partition_refusals_total"),
		replyLost:  reg.Counter("simnet_replies_lost_total"),
		corrupted:  reg.Counter("simnet_corrupted_replies_total"),
		sheds:      reg.Counter("simnet_overload_sheds_total"),
		queued:     reg.Counter("simnet_overload_queued_total"),
		queueDepth: reg.Gauge("simnet_overload_queue_depth_peak"),
		delay:      reg.Histogram("simnet_delay_ms", "ms", telemetry.LatencyBuckets()),
		queueDelay: reg.Histogram("simnet_overload_queue_delay_ms", "ms", telemetry.LatencyBuckets()),
	}
}

// New creates an empty network.
func New(cfg Config) *Network {
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   make(map[NodeID]Handler),
		offline: make(map[NodeID]bool),
		partOf:  make(map[NodeID]int),
		onCrash: make(map[NodeID]func()),
	}
}

// Register adds a node with its RPC handler.
func (n *Network) Register(id NodeID, h Handler) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return fmt.Errorf("%w: %s", ErrDuplicateNode, id)
	}
	n.nodes[id] = h
	return nil
}

// SetOnline marks a registered node online or offline (churn injection).
// Unregistered nodes are rejected: silently recording liveness for a node
// that does not exist would leave it pre-churned when it later registers.
func (n *Network) SetOnline(id NodeID, online bool) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.offline[id] = !online
	return nil
}

// OnCrash registers a hook invoked when the node crashes (Crash): the hook
// models volatile-state loss, e.g. a DHT node dropping its stored keys.
func (n *Network) OnCrash(id NodeID, hook func()) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.onCrash[id] = hook
	return nil
}

// Crash takes a node offline like SetOnline(id, false) and additionally
// fires its OnCrash hook, modeling a crash-restart failure in which
// in-memory state is lost. Bring the node back with SetOnline(id, true);
// it restarts empty.
func (n *Network) Crash(id NodeID) error {
	n.mu.Lock()
	if _, ok := n.nodes[id]; !ok {
		n.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.offline[id] = true
	hook := n.onCrash[id]
	n.mu.Unlock()
	if hook != nil {
		hook()
	}
	return nil
}

// Online reports whether a node is registered and online.
func (n *Network) Online(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.nodes[id]
	return ok && !n.offline[id]
}

// SetPartition assigns a registered node to a partition group; nodes in
// different groups cannot exchange messages. Group 0 is the default
// connected group. Unregistered nodes are rejected (see SetOnline).
func (n *Network) SetPartition(id NodeID, group int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownNode, id)
	}
	n.partOf[id] = group
	return nil
}

// SetLossRate changes the message loss probability at runtime (flaky-window
// injection by fault schedules).
func (n *Network) SetLossRate(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cfg.LossRate = rate
}

// CurrentLossRate reports the loss probability currently in effect.
func (n *Network) CurrentLossRate() float64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cfg.LossRate
}

// Nodes returns all registered node IDs (online and offline).
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	return out
}

// Totals returns the accumulated network-wide traffic counters.
func (n *Network) Totals() Trace {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.totals
}

// ResetTotals zeroes the network-wide counters (between experiment runs).
func (n *Network) ResetTotals() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.totals = Trace{}
	n.rpcCount = 0
	n.corrupted = 0
	n.overload = OverloadStats{}
}

// RPCCount returns the number of RPC invocations since the last reset.
func (n *Network) RPCCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.rpcCount
}

// admit checks deliverability and charges one message to the trace and
// totals. It returns the handler to invoke. serving marks the request
// direction: only then does the destination's capacity model apply —
// replies ride back without re-entering the receiver's admission queue.
func (n *Network) admit(tr *Trace, from, to NodeID, size int, serving bool) (Handler, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	h, ok := n.nodes[to]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownNode, to)
	}
	if n.offline[to] {
		if n.tel != nil {
			n.tel.offline.Inc()
		}
		return nil, fmt.Errorf("%w: %s", ErrNodeOffline, to)
	}
	if n.offline[from] {
		if n.tel != nil {
			n.tel.offline.Inc()
		}
		return nil, fmt.Errorf("%w: %s (sender)", ErrNodeOffline, from)
	}
	if n.partOf[from] != n.partOf[to] {
		if n.tel != nil {
			n.tel.partition.Inc()
		}
		return nil, fmt.Errorf("%w: %s / %s", ErrPartitioned, from, to)
	}
	var queueDelay time.Duration
	if serving {
		var err error
		queueDelay, err = n.admitCapacity(to)
		if err != nil {
			return nil, err
		}
	}
	if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
		if n.tel != nil {
			n.tel.dropped.Inc()
		}
		return nil, fmt.Errorf("%w: %s -> %s", ErrDropped, from, to)
	}
	delay := n.cfg.BaseLatency + queueDelay
	if n.cfg.JitterLatency > 0 {
		delay += time.Duration(n.rng.Int63n(int64(n.cfg.JitterLatency)))
	}
	tr.Messages++
	tr.Bytes += size
	tr.Latency += delay
	n.totals.Messages++
	n.totals.Bytes += size
	n.totals.Latency += delay
	if n.tel != nil {
		n.tel.messages.Inc()
		n.tel.bytes.Add(int64(size))
		n.tel.delay.ObserveDuration(delay)
	}
	return h, nil
}

// RPC sends a request from one node to another and returns the reply. Both
// directions are charged to the trace; the hop count increases by one.
func (n *Network) RPC(tr *Trace, from, to NodeID, msg Message) (Message, error) {
	if tr == nil {
		tr = &Trace{}
	}
	h, err := n.admit(tr, from, to, msg.Size, true)
	if err != nil {
		return Message{}, err
	}
	n.mu.Lock()
	n.rpcCount++
	tr.Hops++
	n.totals.Hops++
	if n.tel != nil {
		n.tel.rpcs.Inc()
	}
	n.mu.Unlock()

	reply, err := h.HandleRPC(tr, from, msg)
	if err != nil {
		return Message{}, fmt.Errorf("simnet: rpc %s->%s %q: %w", from, to, msg.Kind, err)
	}
	// A Byzantine responder may silently corrupt the reply (byzantine.go);
	// no error is produced — detection is the caller's problem.
	reply = n.maybeCorrupt(from, to, reply)
	// Charge the reply direction. A failure here is NOT equivalent to the
	// request being lost: the handler has already run, so the caller must
	// learn that the operation may have been applied.
	if _, aerr := n.admit(tr, to, from, reply.Size, false); aerr != nil {
		n.mu.Lock()
		if n.tel != nil {
			n.tel.replyLost.Inc()
		}
		n.mu.Unlock()
		return Message{}, fmt.Errorf("%w: %s->%s: %w", ErrReplyLost, to, from, aerr)
	}
	return reply, nil
}

// Cast sends a one-way message (no reply, still handled synchronously).
// Errors from the handler are returned; delivery failures likewise.
func (n *Network) Cast(tr *Trace, from, to NodeID, msg Message) error {
	if tr == nil {
		tr = &Trace{}
	}
	h, err := n.admit(tr, from, to, msg.Size, true)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.rpcCount++
	tr.Hops++
	n.totals.Hops++
	if n.tel != nil {
		n.tel.rpcs.Inc()
	}
	n.mu.Unlock()
	if _, err := h.HandleRPC(tr, from, msg); err != nil {
		return fmt.Errorf("simnet: cast %s->%s %q: %w", from, to, msg.Kind, err)
	}
	return nil
}

// Rand returns a deterministic sub-RNG for a consumer, derived from the
// network seed and the given label, so overlay-internal randomness stays
// reproducible and independent of call order elsewhere.
func (n *Network) Rand(label string) *rand.Rand {
	return rand.New(rand.NewSource(n.cfg.Seed ^ labelHash(label)))
}
