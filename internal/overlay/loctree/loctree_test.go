package loctree

import (
	"errors"
	"fmt"
	"testing"
)

func TestRegisterAndQuery(t *testing.T) {
	tr := New()
	if _, err := tr.Register("alice", "/tr/istanbul/kadikoy"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	tr.Register("bob", "/tr/istanbul/besiktas")
	tr.Register("carol", "/tr/ankara")
	tr.Register("dave", "/de/berlin")

	res, err := tr.Query("/tr/istanbul")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Users) != 2 || res.Users[0] != "alice" || res.Users[1] != "bob" {
		t.Fatalf("Query(/tr/istanbul) = %v", res.Users)
	}
	res, _ = tr.Query("/tr")
	if len(res.Users) != 3 {
		t.Fatalf("Query(/tr) = %v", res.Users)
	}
	res, _ = tr.Query("/")
	if len(res.Users) != 4 {
		t.Fatalf("Query(/) = %v", res.Users)
	}
	res, _ = tr.Query("/fr")
	if len(res.Users) != 0 {
		t.Fatalf("Query(/fr) = %v", res.Users)
	}
}

func TestQueryVisitsOnlyMatchingSubtree(t *testing.T) {
	// The scalability claim: a query's cost depends on the matching
	// subtree, not on the total population.
	tr := New()
	for i := 0; i < 200; i++ {
		tr.Register(fmt.Sprintf("user-%d", i), fmt.Sprintf("/us/city-%d", i%20))
	}
	tr.Register("alice", "/tr/istanbul")
	res, err := tr.Query("/tr")
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(res.Users) != 1 {
		t.Fatalf("Users = %v", res.Users)
	}
	// Path (/ + tr) + istanbul = 3 nodes, regardless of the 200 US users.
	if res.NodesVisited > 3 {
		t.Fatalf("visited %d nodes; query leaked into sibling regions", res.NodesVisited)
	}
}

func TestMoveUpdatesPresence(t *testing.T) {
	tr := New()
	tr.Register("alice", "/tr/istanbul")
	tr.Register("alice", "/de/berlin")
	res, _ := tr.Query("/tr")
	if len(res.Users) != 0 {
		t.Fatalf("stale presence after move: %v", res.Users)
	}
	res, _ = tr.Query("/de")
	if len(res.Users) != 1 {
		t.Fatalf("missing presence after move: %v", res.Users)
	}
	where, err := tr.WhereIs("alice")
	if err != nil || where != "/de/berlin" {
		t.Fatalf("WhereIs = %q, %v", where, err)
	}
}

func TestRegisterIdempotent(t *testing.T) {
	tr := New()
	tr.Register("alice", "/tr")
	visited, err := tr.Register("alice", "/tr")
	if err != nil || visited != 0 {
		t.Fatalf("re-register cost %d, %v", visited, err)
	}
	if n, _ := tr.CountUnder("/tr"); n != 1 {
		t.Fatalf("CountUnder = %d", n)
	}
}

func TestDeregister(t *testing.T) {
	tr := New()
	tr.Register("alice", "/tr/istanbul")
	if err := tr.Deregister("alice"); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	if _, err := tr.WhereIs("alice"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("WhereIs after deregister: %v", err)
	}
	if err := tr.Deregister("alice"); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("double deregister: %v", err)
	}
	if n, _ := tr.CountUnder("/"); n != 0 {
		t.Fatalf("CountUnder(/) = %d", n)
	}
}

func TestCountUnderAggregation(t *testing.T) {
	tr := New()
	tr.Register("a", "/tr/istanbul/kadikoy")
	tr.Register("b", "/tr/istanbul/besiktas")
	tr.Register("c", "/tr/ankara")
	for region, want := range map[string]int{
		"/tr": 3, "/tr/istanbul": 2, "/tr/ankara": 1, "/de": 0,
	} {
		if n, err := tr.CountUnder(region); err != nil || n != want {
			t.Fatalf("CountUnder(%s) = %d, want %d (%v)", region, n, want, err)
		}
	}
}

func TestEmptySubtreesPruned(t *testing.T) {
	tr := New()
	tr.Register("a", "/x/deep/nest/one")
	tr.Deregister("a")
	tr.Register("b", "/x/shallow")
	res, _ := tr.Query("/x")
	// /x + shallow visited; the empty deep/nest/one chain must be pruned
	// by the aggregated counts.
	if res.NodesVisited > 3 {
		t.Fatalf("visited %d nodes; empty subtree not pruned", res.NodesVisited)
	}
}

func TestBadRegions(t *testing.T) {
	tr := New()
	for _, region := range []string{"", "tr/istanbul", "/tr//istanbul"} {
		if _, err := tr.Register("alice", region); !errors.Is(err, ErrBadRegion) {
			t.Errorf("Register(%q): %v", region, err)
		}
		if _, err := tr.Query(region); !errors.Is(err, ErrBadRegion) {
			t.Errorf("Query(%q): %v", region, err)
		}
	}
}

func TestCoordinator(t *testing.T) {
	tr := New()
	tr.Register("alice", "/tr/istanbul")
	tr.Register("bob", "/tr/istanbul")
	if c := tr.Coordinator("/tr/istanbul"); c != "alice" {
		t.Fatalf("Coordinator = %q, want first registrant", c)
	}
	if c := tr.Coordinator("/nowhere"); c != "" {
		t.Fatalf("Coordinator of unknown region = %q", c)
	}
}
