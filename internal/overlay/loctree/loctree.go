// Package loctree implements Vis-à-Vis-style distributed location trees
// (paper Section II-B): "Vis-a-vis designed its own structure distributed
// location trees, which provides efficient and scalable sharing."
//
// In Vis-à-Vis each user runs a virtual individual server (VIS) and VISs
// organize into trees keyed by geographic regions: a user registers its
// presence at a leaf region, interior nodes aggregate their children, and a
// query for "friends currently in region R" descends only the subtree under
// R — cost proportional to the matching region, not the network.
//
// Regions are slash-separated paths ("/tr/istanbul/kadikoy"); each region is
// coordinated by one member VIS (the first registrant), and the tree stores
// only user->region presence, never content.
package loctree

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Errors returned by this package.
var (
	ErrBadRegion     = errors.New("loctree: malformed region path")
	ErrNotRegistered = errors.New("loctree: user not registered")
)

// node is one region of the tree.
type node struct {
	path     string
	children map[string]*node
	// present holds users registered exactly at this region.
	present map[string]bool
	// count aggregates presence over the whole subtree.
	count int
	// coordinator is the VIS responsible for this region.
	coordinator string
}

// Tree is a distributed location tree. It is safe for concurrent use.
//
// The simulation accounts cost as the number of region nodes visited per
// operation (the messages a distributed deployment would send between the
// region coordinators involved).
type Tree struct {
	mu   sync.Mutex
	root *node
	// where tracks each user's current region for moves.
	where map[string]string
}

// New creates an empty location tree.
func New() *Tree {
	return &Tree{
		root:  &node{path: "/", children: make(map[string]*node), present: make(map[string]bool)},
		where: make(map[string]string),
	}
}

// splitRegion validates and splits a region path.
func splitRegion(region string) ([]string, error) {
	if !strings.HasPrefix(region, "/") {
		return nil, fmt.Errorf("%w: %q (must start with /)", ErrBadRegion, region)
	}
	if region == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(region, "/"), "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q (empty segment)", ErrBadRegion, region)
		}
	}
	return parts, nil
}

// Register places a user at a region (moving it if already registered
// elsewhere). It returns the number of region nodes visited.
func (t *Tree) Register(user, region string) (int, error) {
	parts, err := splitRegion(region)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	visited := 0
	if prev, ok := t.where[user]; ok && prev != region {
		visited += t.removeLocked(user, prev)
	} else if ok && prev == region {
		return 0, nil
	}
	cur := t.root
	cur.count++
	visited++
	for _, p := range parts {
		child, ok := cur.children[p]
		if !ok {
			child = &node{
				path:        strings.TrimSuffix(cur.path, "/") + "/" + p,
				children:    make(map[string]*node),
				present:     make(map[string]bool),
				coordinator: user,
			}
			cur.children[p] = child
		}
		cur = child
		cur.count++
		visited++
	}
	cur.present[user] = true
	t.where[user] = region
	return visited, nil
}

// removeLocked clears a user's registration, returning nodes visited.
func (t *Tree) removeLocked(user, region string) int {
	parts, err := splitRegion(region)
	if err != nil {
		return 0
	}
	visited := 0
	cur := t.root
	cur.count--
	visited++
	for _, p := range parts {
		child, ok := cur.children[p]
		if !ok {
			return visited
		}
		cur = child
		cur.count--
		visited++
	}
	delete(cur.present, user)
	delete(t.where, user)
	return visited
}

// Deregister removes a user from the tree.
func (t *Tree) Deregister(user string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	region, ok := t.where[user]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotRegistered, user)
	}
	t.removeLocked(user, region)
	return nil
}

// WhereIs returns a user's current region.
func (t *Tree) WhereIs(user string) (string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	region, ok := t.where[user]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotRegistered, user)
	}
	return region, nil
}

// QueryResult is a region query's outcome plus its cost.
type QueryResult struct {
	// Users present in the queried subtree, sorted.
	Users []string
	// NodesVisited counts region nodes touched — the scalability metric.
	NodesVisited int
}

// Query returns all users under a region (inclusive of sub-regions). Only
// the matching subtree is visited, never siblings — the "efficient and
// scalable sharing" property.
func (t *Tree) Query(region string) (QueryResult, error) {
	parts, err := splitRegion(region)
	if err != nil {
		return QueryResult{}, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	res := QueryResult{}
	cur := t.root
	res.NodesVisited++
	for _, p := range parts {
		child, ok := cur.children[p]
		if !ok {
			return res, nil // empty region: no users
		}
		cur = child
		res.NodesVisited++
	}
	collect(cur, &res)
	sort.Strings(res.Users)
	return res, nil
}

// collect gathers users from a subtree, pruning empty branches via the
// aggregated counts.
func collect(n *node, res *QueryResult) {
	for u := range n.present {
		res.Users = append(res.Users, u)
	}
	for _, c := range n.children {
		if c.count == 0 {
			continue // aggregation lets the walk skip empty subtrees
		}
		res.NodesVisited++
		collect(c, res)
	}
}

// CountUnder returns the aggregated presence count under a region without
// enumerating users (constant nodes visited beyond the path).
func (t *Tree) CountUnder(region string) (int, error) {
	parts, err := splitRegion(region)
	if err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for _, p := range parts {
		child, ok := cur.children[p]
		if !ok {
			return 0, nil
		}
		cur = child
	}
	return cur.count, nil
}

// Coordinator returns the VIS responsible for a region ("" for unknown
// regions or the root).
func (t *Tree) Coordinator(region string) string {
	parts, err := splitRegion(region)
	if err != nil || len(parts) == 0 {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.root
	for _, p := range parts {
		child, ok := cur.children[p]
		if !ok {
			return ""
		}
		cur = child
	}
	return cur.coordinator
}
