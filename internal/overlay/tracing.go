package overlay

import "godosn/internal/telemetry"

// This file defines the tracing contract between overlays and the layers
// above them (resilience, scrub, bench): span-aware variants of the KV
// operations, so one logical Get/Put yields an ordered span tree — routing,
// per-replica contacts, heal pushes — instead of a single opaque OpStats.
// Spans are nil-safe throughout: passing a nil span runs the identical code
// path with tracing compiled down to pointer comparisons.

// SpanKV is implemented by overlays whose operations can attribute their
// work to a telemetry span tree. The span-aware variants behave exactly
// like Store/Lookup (same results, same OpStats, same seeded RNG draws);
// they additionally hang child spans — e.g. "route" and per-replica
// "store"/"fetch" — off sp.
type SpanKV interface {
	KV
	// StoreSpan is Store with tracing attached to sp (nil: untraced).
	StoreSpan(sp *telemetry.Span, origin string, key string, value []byte) (OpStats, error)
	// LookupSpan is Lookup with tracing attached to sp (nil: untraced).
	LookupSpan(sp *telemetry.Span, origin string, key string) ([]byte, OpStats, error)
}

// SpanHealer is implemented by overlays whose anti-entropy repair pass can
// attribute its pushes to a span tree ("repair" children under sp).
type SpanHealer interface {
	Healer
	// HealSpan is Heal with tracing attached to sp (nil: untraced).
	HealSpan(sp *telemetry.Span) (HealReport, error)
}
