// Package superpeer implements a semi-structured overlay in the style of
// SuperNova: a subset of nodes act as super-peers that "are responsible for
// storing the index and managing other users" (paper Section II-B),
// including tracking member uptime to pick replica locations.
//
// Regular nodes attach to one super-peer. The global index is partitioned
// across super-peers by key hash; a lookup asks the local super-peer, which
// forwards to the responsible super-peer when needed — a constant number of
// hops independent of network size, at the cost of index concentration.
package superpeer

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
	"time"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// Config parameterizes the super-peer overlay.
type Config struct {
	// SuperPeerFraction is the fraction of nodes promoted to super-peer
	// (at least one).
	SuperPeerFraction float64
}

// DefaultConfig promotes 10% of nodes.
func DefaultConfig() Config { return Config{SuperPeerFraction: 0.1} }

type superNode struct {
	name simnet.NodeID

	mu sync.Mutex
	// index maps key -> value for this super-peer's partition.
	index map[string][]byte
	// uptime tracks member liveness observations (SuperNova's tracking of
	// "users up-time to find the best places for replication").
	uptime map[simnet.NodeID]time.Duration
}

type leafNode struct {
	name  simnet.NodeID
	super simnet.NodeID
}

// Overlay is the semi-structured super-peer network.
type Overlay struct {
	net *simnet.Network

	mu     sync.RWMutex
	supers []*superNode
	leaves map[simnet.NodeID]*leafNode
	byName map[simnet.NodeID]*superNode
}

var _ overlay.KV = (*Overlay)(nil)

// New creates the overlay: the first ceil(fraction*n) nodes (selected by a
// seeded shuffle) become super-peers; the rest attach round-robin.
func New(net *simnet.Network, names []simnet.NodeID, cfg Config) (*Overlay, error) {
	if len(names) == 0 {
		return nil, overlay.ErrNoNodes
	}
	nSuper := int(cfg.SuperPeerFraction * float64(len(names)))
	if nSuper < 1 {
		nSuper = 1
	}
	if nSuper > len(names) {
		nSuper = len(names)
	}
	shuffled := append([]simnet.NodeID(nil), names...)
	rng := net.Rand("superpeer-election")
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	o := &Overlay{
		net:    net,
		leaves: make(map[simnet.NodeID]*leafNode),
		byName: make(map[simnet.NodeID]*superNode),
	}
	for i, name := range shuffled {
		if i < nSuper {
			s := &superNode{
				name:   name,
				index:  make(map[string][]byte),
				uptime: make(map[simnet.NodeID]time.Duration),
			}
			o.supers = append(o.supers, s)
			o.byName[name] = s
			if err := net.Register(name, o.superHandler(s)); err != nil {
				return nil, fmt.Errorf("superpeer: registering %s: %w", name, err)
			}
		}
	}
	// Sort supers by name for a deterministic partition map.
	sort.Slice(o.supers, func(i, j int) bool { return o.supers[i].name < o.supers[j].name })
	for i, name := range shuffled {
		if i >= nSuper {
			leaf := &leafNode{name: name, super: o.supers[i%len(o.supers)].name}
			o.leaves[name] = leaf
			if err := net.Register(name, o.leafHandler()); err != nil {
				return nil, fmt.Errorf("superpeer: registering %s: %w", name, err)
			}
		}
	}
	return o, nil
}

// Name implements overlay.KV.
func (o *Overlay) Name() string { return "semi-structured-superpeer" }

// ownerOf returns the super-peer responsible for a key's index partition.
func (o *Overlay) ownerOf(key string) *superNode {
	h := sha256.Sum256([]byte(key))
	idx := binary.BigEndian.Uint64(h[:8]) % uint64(len(o.supers))
	return o.supers[idx]
}

// RPC message kinds.
const (
	kindPut     = "superpeer.put"
	kindGet     = "superpeer.get"
	kindForward = "superpeer.forward"
	kindPing    = "superpeer.ping"
)

type putReq struct {
	Key   string
	Value []byte
}
type getReq struct{ Key string }
type getResp struct {
	Found bool
	Value []byte
}

// superHandler handles index operations at a super-peer.
func (o *Overlay) superHandler(s *superNode) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		switch msg.Kind {
		case kindPut:
			req, ok := msg.Payload.(putReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("superpeer: bad payload")
			}
			owner := o.ownerOf(req.Key)
			if owner == s {
				s.mu.Lock()
				s.index[req.Key] = append([]byte(nil), req.Value...)
				s.mu.Unlock()
				return simnet.Message{Kind: kindPut, Size: 8}, nil
			}
			// Forward to the responsible super-peer.
			return o.net.RPC(tr, s.name, owner.name, simnet.Message{Kind: kindPut, Payload: req, Size: msg.Size})

		case kindGet, kindForward:
			req, ok := msg.Payload.(getReq)
			if !ok {
				return simnet.Message{}, fmt.Errorf("superpeer: bad payload")
			}
			owner := o.ownerOf(req.Key)
			if owner == s {
				s.mu.Lock()
				v, found := s.index[req.Key]
				s.mu.Unlock()
				resp := getResp{Found: found}
				if found {
					resp.Value = append([]byte(nil), v...)
				}
				return simnet.Message{Kind: msg.Kind, Payload: resp, Size: 8 + len(resp.Value)}, nil
			}
			if msg.Kind == kindForward {
				// A forward must terminate at the owner; re-forwarding
				// indicates an inconsistent partition map.
				return simnet.Message{}, fmt.Errorf("superpeer: misrouted forward for %q", req.Key)
			}
			return o.net.RPC(tr, s.name, owner.name, simnet.Message{Kind: kindForward, Payload: req, Size: msg.Size})

		case kindPing:
			s.mu.Lock()
			s.uptime[from] += time.Second
			s.mu.Unlock()
			return simnet.Message{Kind: kindPing, Size: 4}, nil
		}
		return simnet.Message{}, fmt.Errorf("superpeer: unknown message kind %q", msg.Kind)
	}
}

// leafHandler: regular nodes hold no index and serve no queries.
func (o *Overlay) leafHandler() simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		return simnet.Message{}, fmt.Errorf("superpeer: leaf node does not serve %q", msg.Kind)
	}
}

// entrySuper returns the super-peer the origin sends its requests to.
func (o *Overlay) entrySuper(origin simnet.NodeID) (simnet.NodeID, bool, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if s, ok := o.byName[origin]; ok {
		return s.name, true, nil
	}
	if l, ok := o.leaves[origin]; ok {
		return l.super, false, nil
	}
	return "", false, fmt.Errorf("superpeer: %w: %s", overlay.ErrUnknownOrigin, origin)
}

// Store implements overlay.KV.
func (o *Overlay) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	tr := &simnet.Trace{}
	entry, isSuper, err := o.entrySuper(simnet.NodeID(origin))
	if err != nil {
		return overlay.OpStats{}, err
	}
	msg := simnet.Message{Kind: kindPut, Payload: putReq{Key: key, Value: value}, Size: len(key) + len(value)}
	if isSuper {
		// Local super-peer handles directly (may forward internally).
		h := o.byName[entry]
		owner := o.ownerOf(key)
		if owner == h {
			h.mu.Lock()
			h.index[key] = append([]byte(nil), value...)
			h.mu.Unlock()
			return stats(tr), nil
		}
		if _, err := o.net.RPC(tr, entry, owner.name, msg); err != nil {
			return stats(tr), err
		}
		return stats(tr), nil
	}
	if _, err := o.net.RPC(tr, simnet.NodeID(origin), entry, msg); err != nil {
		return stats(tr), err
	}
	return stats(tr), nil
}

// Lookup implements overlay.KV.
func (o *Overlay) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	tr := &simnet.Trace{}
	entry, isSuper, err := o.entrySuper(simnet.NodeID(origin))
	if err != nil {
		return nil, overlay.OpStats{}, err
	}
	var reply simnet.Message
	if isSuper {
		h := o.byName[entry]
		owner := o.ownerOf(key)
		if owner == h {
			h.mu.Lock()
			v, found := h.index[key]
			h.mu.Unlock()
			if !found {
				return nil, stats(tr), overlay.ErrNotFound
			}
			return append([]byte(nil), v...), stats(tr), nil
		}
		reply, err = o.net.RPC(tr, entry, owner.name, simnet.Message{Kind: kindForward, Payload: getReq{Key: key}, Size: len(key)})
	} else {
		reply, err = o.net.RPC(tr, simnet.NodeID(origin), entry, simnet.Message{Kind: kindGet, Payload: getReq{Key: key}, Size: len(key)})
	}
	if err != nil {
		return nil, stats(tr), err
	}
	resp, ok := reply.Payload.(getResp)
	if !ok {
		return nil, stats(tr), fmt.Errorf("superpeer: bad get reply")
	}
	if !resp.Found {
		return nil, stats(tr), overlay.ErrNotFound
	}
	return resp.Value, stats(tr), nil
}

// Ping records an uptime observation of origin at its super-peer, feeding
// the replica-placement signal SuperNova tracks.
func (o *Overlay) Ping(origin string) (overlay.OpStats, error) {
	tr := &simnet.Trace{}
	entry, isSuper, err := o.entrySuper(simnet.NodeID(origin))
	if err != nil {
		return overlay.OpStats{}, err
	}
	if isSuper {
		return stats(tr), nil
	}
	if _, err := o.net.RPC(tr, simnet.NodeID(origin), entry, simnet.Message{Kind: kindPing, Size: 4}); err != nil {
		return stats(tr), err
	}
	return stats(tr), nil
}

// UptimeOf reports the uptime observed for a node at its super-peer.
func (o *Overlay) UptimeOf(name string) time.Duration {
	o.mu.RLock()
	leaf, ok := o.leaves[simnet.NodeID(name)]
	o.mu.RUnlock()
	if !ok {
		return 0
	}
	s := o.byName[leaf.super]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uptime[simnet.NodeID(name)]
}

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
