package superpeer

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

func build(t *testing.T, n int, cfg Config) (*Overlay, *simnet.Network, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(9))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("member-%d", i))
	}
	o, err := New(net, names, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return o, net, names
}

func TestStoreLookupFromEveryNode(t *testing.T) {
	o, _, names := build(t, 30, DefaultConfig())
	if _, err := o.Store(string(names[0]), "k", []byte("v")); err != nil {
		t.Fatalf("Store: %v", err)
	}
	for _, origin := range names {
		got, _, err := o.Lookup(string(origin), "k")
		if err != nil || string(got) != "v" {
			t.Fatalf("Lookup from %s: %v", origin, err)
		}
	}
}

func TestConstantHopBound(t *testing.T) {
	// Semi-structured lookup is at most leaf->super->owner->back: hops must
	// not grow with network size.
	maxHops := func(n int) int {
		o, _, names := build(t, n, DefaultConfig())
		o.Store(string(names[0]), "k", []byte("v"))
		worst := 0
		for _, origin := range names[:10] {
			_, st, err := o.Lookup(string(origin), "k")
			if err != nil {
				t.Fatalf("Lookup: %v", err)
			}
			if st.Hops > worst {
				worst = st.Hops
			}
		}
		return worst
	}
	small := maxHops(20)
	large := maxHops(200)
	if large > 2 || small > 2 {
		t.Fatalf("hop bound exceeded: small=%d large=%d", small, large)
	}
}

func TestLookupMissing(t *testing.T) {
	o, _, names := build(t, 10, DefaultConfig())
	if _, _, err := o.Lookup(string(names[0]), "missing"); !errors.Is(err, overlay.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestSuperPeerFailureBreaksPartition(t *testing.T) {
	o, net, names := build(t, 40, Config{SuperPeerFraction: 0.1})
	o.Store(string(names[0]), "k", []byte("v"))
	owner := o.ownerOf("k")
	net.SetOnline(owner.name, false)
	failures := 0
	for _, origin := range names[:10] {
		if string(origin) == string(owner.name) {
			continue
		}
		if _, _, err := o.Lookup(string(origin), "k"); err != nil {
			failures++
		}
	}
	if failures == 0 {
		t.Fatal("no lookups failed despite owner super-peer being offline")
	}
}

func TestUptimeTracking(t *testing.T) {
	o, _, names := build(t, 20, DefaultConfig())
	// Find a leaf node.
	var leaf simnet.NodeID
	for _, n := range names {
		o.mu.RLock()
		_, isLeaf := o.leaves[n]
		o.mu.RUnlock()
		if isLeaf {
			leaf = n
			break
		}
	}
	if leaf == "" {
		t.Fatal("no leaf nodes")
	}
	for i := 0; i < 3; i++ {
		if _, err := o.Ping(string(leaf)); err != nil {
			t.Fatalf("Ping: %v", err)
		}
	}
	if got := o.UptimeOf(string(leaf)); got != 3*time.Second {
		t.Fatalf("UptimeOf = %v, want 3s", got)
	}
}

func TestSingleSuperPeerMinimum(t *testing.T) {
	o, _, names := build(t, 5, Config{SuperPeerFraction: 0})
	if len(o.supers) != 1 {
		t.Fatalf("supers = %d, want 1", len(o.supers))
	}
	o.Store(string(names[0]), "k", []byte("v"))
	got, _, err := o.Lookup(string(names[4]), "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("Lookup: %v", err)
	}
}

func TestUnknownOrigin(t *testing.T) {
	o, _, _ := build(t, 5, DefaultConfig())
	if _, err := o.Store("stranger", "k", nil); err == nil {
		t.Fatal("Store from stranger succeeded")
	}
}

func TestEmptyOverlay(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	if _, err := New(net, nil, DefaultConfig()); !errors.Is(err, overlay.ErrNoNodes) {
		t.Fatalf("got %v, want ErrNoNodes", err)
	}
}
