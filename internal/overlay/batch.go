package overlay

// This file defines the batch contract between overlays and the layers
// above them. Per-key operations pay a full routing pass and one request
// envelope per key; at millions of users that fan-out dominates every user
// action (LibreSocial and DECENT both identify per-object DHT round-trips
// as the dominant cost of a P2P OSN). BatchKV amortizes it: keys destined
// for the same replica set share one routing pass and one request envelope,
// so the message cost of a feed read scales with the number of replica
// groups touched, not the number of keys.

// BatchResult is one key's outcome within a GetBatch. Exactly one of Value
// and Err is meaningful: Err nil means Value holds the bytes read (which may
// be empty), Err non-nil explains why this key — and only this key — failed.
type BatchResult struct {
	// Value is the bytes read for the key (nil on error).
	Value []byte
	// Err is the per-key failure: ErrNotFound for a clean miss, a delivery
	// or overload fault otherwise. Per-key errors never abort the batch.
	Err error
}

// BatchKV is implemented by overlays that can serve multi-key operations
// with amortized routing and shared request envelopes. Semantics match a
// loop over Store/Lookup key by key — same values, same per-key error
// taxonomy — but the cost model differs: routing passes are shared between
// keys resolving to the same replica set, and each contacted replica
// receives one envelope covering all of its keys.
//
// Both methods return per-key outcomes positionally aligned with the input
// and a single OpStats for the whole batch. The top-level error reports
// whole-batch failures only (malformed arguments, unknown origin); per-key
// faults — an unreachable replica group, a missing key — are isolated to
// their slots.
type BatchKV interface {
	KV
	// PutBatch stores values[i] under keys[i], originating at node origin.
	// The returned slice holds one error (or nil) per key.
	PutBatch(origin string, keys []string, values [][]byte) ([]error, OpStats, error)
	// GetBatch resolves every key, originating at node origin.
	GetBatch(origin string, keys []string) ([]BatchResult, OpStats, error)
}
