package overlay

// RouteCached is implemented by overlays that memoize routing decisions
// (e.g. the DHT's key → successor-root cache). Layers that change effective
// placement out-of-band — the resilience breaker quarantining a node, an
// operator draining one — call InvalidateRoutes so no memoized route
// outlives the change. Overlays without a route cache simply don't
// implement it; callers feature-detect with a type assertion.
type RouteCached interface {
	// InvalidateRoutes drops every memoized routing decision.
	InvalidateRoutes()
}
