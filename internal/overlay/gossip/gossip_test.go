package gossip

import (
	"errors"
	"fmt"
	"testing"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

func buildGossip(t *testing.T, n int, cfg Config) (*Gossip, *simnet.Network, []simnet.NodeID) {
	t.Helper()
	net := simnet.New(simnet.DefaultConfig(3))
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("peer-%d", i))
	}
	g, err := New(net, names, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g, net, names
}

func TestStoreIsLocalAndFree(t *testing.T) {
	g, _, names := buildGossip(t, 10, DefaultConfig())
	st, err := g.Store(string(names[0]), "k", []byte("v"))
	if err != nil {
		t.Fatalf("Store: %v", err)
	}
	if st.Messages != 0 {
		t.Fatalf("store cost %d messages, want 0 (paper: almost zero overhead)", st.Messages)
	}
}

func TestLocalLookupFree(t *testing.T) {
	g, _, names := buildGossip(t, 10, DefaultConfig())
	g.Store(string(names[2]), "k", []byte("v"))
	got, st, err := g.Lookup(string(names[2]), "k")
	if err != nil || string(got) != "v" {
		t.Fatalf("local lookup: %v", err)
	}
	if st.Messages != 0 {
		t.Fatalf("local lookup cost %d messages", st.Messages)
	}
}

func TestFloodFindsRemoteValue(t *testing.T) {
	g, _, names := buildGossip(t, 30, Config{Degree: 4, TTL: 10})
	g.Store(string(names[17]), "needle", []byte("found-it"))
	got, st, err := g.Lookup(string(names[2]), "needle")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if string(got) != "found-it" {
		t.Fatalf("got %q", got)
	}
	if st.Messages == 0 {
		t.Fatal("remote flood reported zero messages")
	}
}

func TestTTLBoundsFlood(t *testing.T) {
	// With TTL 1 only direct neighbors are reachable.
	g, _, names := buildGossip(t, 40, Config{Degree: 2, TTL: 1})
	g.Store(string(names[20]), "far", []byte("v"))
	// names[0]'s neighbors with degree 2 ring+chords are unlikely to include
	// node 20; accept either outcome but require bounded messages.
	_, st, _ := g.Lookup(string(names[0]), "far")
	if st.Messages > 2*(2+2) {
		t.Fatalf("TTL-1 flood sent %d messages", st.Messages)
	}
}

func TestFloodMessageGrowth(t *testing.T) {
	// Unstructured lookup cost grows with network size (paper's trade-off
	// vs structured: zero index overhead, expensive queries).
	msgs := func(n int) int {
		g, _, names := buildGossip(t, n, Config{Degree: 4, TTL: 12})
		// Key stored far from the searcher, absent key worst-cases the flood.
		_, st, _ := g.Lookup(string(names[0]), "absent-key")
		return st.Messages
	}
	small := msgs(16)
	large := msgs(256)
	if large <= small {
		t.Fatalf("flood cost did not grow with size: %d vs %d", small, large)
	}
}

func TestLookupMissing(t *testing.T) {
	g, _, names := buildGossip(t, 12, DefaultConfig())
	if _, _, err := g.Lookup(string(names[0]), "missing"); !errors.Is(err, overlay.ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestOfflineOwnerUnreachable(t *testing.T) {
	g, net, names := buildGossip(t, 12, Config{Degree: 3, TTL: 8})
	g.Store(string(names[5]), "k", []byte("v"))
	net.SetOnline(names[5], false)
	if _, _, err := g.Lookup(string(names[0]), "k"); err == nil {
		t.Fatal("found value whose only holder is offline")
	}
}

func TestUnknownOrigin(t *testing.T) {
	g, _, _ := buildGossip(t, 4, DefaultConfig())
	if _, err := g.Store("stranger", "k", nil); err == nil {
		t.Fatal("Store from stranger succeeded")
	}
	if _, _, err := g.Lookup("stranger", "k"); err == nil {
		t.Fatal("Lookup from stranger succeeded")
	}
}

func TestEmptyOverlay(t *testing.T) {
	net := simnet.New(simnet.DefaultConfig(1))
	if _, err := New(net, nil, DefaultConfig()); !errors.Is(err, overlay.ErrNoNodes) {
		t.Fatalf("got %v, want ErrNoNodes", err)
	}
}

func TestAllOriginsReachStoredValue(t *testing.T) {
	g, _, names := buildGossip(t, 24, Config{Degree: 5, TTL: 12})
	g.Store(string(names[11]), "pop", []byte("v"))
	found := 0
	for _, o := range names {
		if _, _, err := g.Lookup(string(o), "pop"); err == nil {
			found++
		}
	}
	if found != len(names) {
		t.Fatalf("only %d/%d origins found the value (graph should be connected)", found, len(names))
	}
}
