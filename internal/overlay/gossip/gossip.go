// Package gossip implements an unstructured overlay: nodes form a random
// k-regular neighbor graph, no node stores any index, and lookups flood the
// graph with a TTL.
//
// The paper (Section II-B): "No user in the system store any index, and
// operations of system are simply done by the use of flooding or
// gossip-based communication between users. This kind of management has
// almost zero overhead." Experiment E6 quantifies the trade: zero index
// maintenance, but lookup messages grow with network size.
package gossip

import (
	"fmt"
	"sync"

	"godosn/internal/overlay"
	"godosn/internal/overlay/simnet"
)

// Config parameterizes the unstructured overlay.
type Config struct {
	// Degree is the number of random neighbors per node.
	Degree int
	// TTL bounds flooding depth.
	TTL int
}

// DefaultConfig returns a typical configuration (degree 4 random graph,
// TTL covering small-world diameters).
func DefaultConfig() Config { return Config{Degree: 4, TTL: 8} }

// node is one participant; values are stored only at their origin node.
type node struct {
	name      simnet.NodeID
	neighbors []simnet.NodeID

	mu   sync.Mutex
	data map[string][]byte
}

// Gossip is the unstructured overlay.
type Gossip struct {
	net *simnet.Network
	cfg Config

	mu    sync.RWMutex
	nodes map[simnet.NodeID]*node
	// querySeen deduplicates flood queries per query id.
	seenMu    sync.Mutex
	querySeen map[string]map[simnet.NodeID]bool
	nextQuery int
}

var _ overlay.KV = (*Gossip)(nil)

// New creates the overlay, wiring a seeded random neighbor graph.
func New(net *simnet.Network, names []simnet.NodeID, cfg Config) (*Gossip, error) {
	if len(names) == 0 {
		return nil, overlay.ErrNoNodes
	}
	if cfg.Degree < 1 {
		cfg.Degree = 1
	}
	if cfg.Degree >= len(names) {
		cfg.Degree = len(names) - 1
	}
	if cfg.TTL < 1 {
		cfg.TTL = 1
	}
	g := &Gossip{
		net:       net,
		cfg:       cfg,
		nodes:     make(map[simnet.NodeID]*node, len(names)),
		querySeen: make(map[string]map[simnet.NodeID]bool),
	}
	rng := net.Rand("gossip-topology")
	for _, name := range names {
		n := &node{name: name, data: make(map[string][]byte)}
		g.nodes[name] = n
		if err := net.Register(name, g.handlerFor(n)); err != nil {
			return nil, fmt.Errorf("gossip: registering %s: %w", name, err)
		}
	}
	// Random connected-ish graph: ring for connectivity + random chords.
	for i, name := range names {
		n := g.nodes[name]
		next := names[(i+1)%len(names)]
		n.neighbors = append(n.neighbors, next)
		g.nodes[next].neighbors = append(g.nodes[next].neighbors, name)
		for len(n.neighbors) < cfg.Degree {
			peer := names[rng.Intn(len(names))]
			if peer == name || contains(n.neighbors, peer) {
				continue
			}
			n.neighbors = append(n.neighbors, peer)
			g.nodes[peer].neighbors = append(g.nodes[peer].neighbors, name)
		}
	}
	return g, nil
}

func contains(list []simnet.NodeID, x simnet.NodeID) bool {
	for _, v := range list {
		if v == x {
			return true
		}
	}
	return false
}

// Name implements overlay.KV.
func (g *Gossip) Name() string { return "unstructured-flood" }

// RPC message kinds.
const kindQuery = "gossip.query"

type queryReq struct {
	ID  string
	Key string
	TTL int
}
type queryResp struct {
	Found bool
	Value []byte
}

// handlerFor implements the flooding logic: answer locally or re-flood to
// neighbors with decremented TTL.
func (g *Gossip) handlerFor(n *node) simnet.HandlerFunc {
	return func(tr *simnet.Trace, from simnet.NodeID, msg simnet.Message) (simnet.Message, error) {
		if msg.Kind != kindQuery {
			return simnet.Message{}, fmt.Errorf("gossip: unknown message kind %q", msg.Kind)
		}
		req, ok := msg.Payload.(queryReq)
		if !ok {
			return simnet.Message{}, fmt.Errorf("gossip: bad payload")
		}
		n.mu.Lock()
		v, found := n.data[req.Key]
		n.mu.Unlock()
		if found {
			return simnet.Message{Kind: kindQuery, Payload: queryResp{Found: true, Value: append([]byte(nil), v...)}, Size: 8 + len(v)}, nil
		}
		if req.TTL <= 0 {
			return simnet.Message{Kind: kindQuery, Payload: queryResp{}, Size: 8}, nil
		}
		for _, peer := range n.neighbors {
			if peer == from {
				continue
			}
			if g.markSeen(req.ID, peer) {
				continue
			}
			reply, err := g.net.RPC(tr, n.name, peer, simnet.Message{
				Kind:    kindQuery,
				Payload: queryReq{ID: req.ID, Key: req.Key, TTL: req.TTL - 1},
				Size:    16 + len(req.Key),
			})
			if err != nil {
				continue
			}
			resp, ok := reply.Payload.(queryResp)
			if ok && resp.Found {
				return simnet.Message{Kind: kindQuery, Payload: resp, Size: 8 + len(resp.Value)}, nil
			}
		}
		return simnet.Message{Kind: kindQuery, Payload: queryResp{}, Size: 8}, nil
	}
}

// markSeen records that a query reached a node; it returns true when the
// node had already been covered (so the flood skips it).
func (g *Gossip) markSeen(queryID string, n simnet.NodeID) bool {
	g.seenMu.Lock()
	defer g.seenMu.Unlock()
	set, ok := g.querySeen[queryID]
	if !ok {
		set = make(map[simnet.NodeID]bool)
		g.querySeen[queryID] = set
	}
	if set[n] {
		return true
	}
	set[n] = true
	return false
}

// Store implements overlay.KV. Unstructured overlays keep data at its owner
// ("users decide where to store ... their data"); Store is therefore local
// and free — the cost shows up at lookup time.
func (g *Gossip) Store(origin, key string, value []byte) (overlay.OpStats, error) {
	g.mu.RLock()
	n, ok := g.nodes[simnet.NodeID(origin)]
	g.mu.RUnlock()
	if !ok {
		return overlay.OpStats{}, fmt.Errorf("gossip: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	n.mu.Lock()
	n.data[key] = append([]byte(nil), value...)
	n.mu.Unlock()
	return overlay.OpStats{}, nil
}

// Lookup implements overlay.KV via TTL-bounded flooding.
func (g *Gossip) Lookup(origin, key string) ([]byte, overlay.OpStats, error) {
	g.mu.RLock()
	n, ok := g.nodes[simnet.NodeID(origin)]
	g.mu.RUnlock()
	if !ok {
		return nil, overlay.OpStats{}, fmt.Errorf("gossip: %w: %s", overlay.ErrUnknownOrigin, origin)
	}
	// Local hit first.
	n.mu.Lock()
	if v, found := n.data[key]; found {
		value := append([]byte(nil), v...)
		n.mu.Unlock()
		return value, overlay.OpStats{}, nil
	}
	n.mu.Unlock()

	g.seenMu.Lock()
	g.nextQuery++
	qid := fmt.Sprintf("q%d", g.nextQuery)
	g.seenMu.Unlock()
	g.markSeen(qid, n.name)

	tr := &simnet.Trace{}
	defer g.forgetQuery(qid)
	for _, peer := range n.neighbors {
		if g.markSeen(qid, peer) {
			continue
		}
		reply, err := g.net.RPC(tr, n.name, peer, simnet.Message{
			Kind:    kindQuery,
			Payload: queryReq{ID: qid, Key: key, TTL: g.cfg.TTL - 1},
			Size:    16 + len(key),
		})
		if err != nil {
			continue
		}
		if resp, ok := reply.Payload.(queryResp); ok && resp.Found {
			return resp.Value, stats(tr), nil
		}
	}
	return nil, stats(tr), overlay.ErrNotFound
}

func (g *Gossip) forgetQuery(qid string) {
	g.seenMu.Lock()
	delete(g.querySeen, qid)
	g.seenMu.Unlock()
}

func stats(tr *simnet.Trace) overlay.OpStats {
	return overlay.OpStats{Hops: tr.Hops, Messages: tr.Messages, Bytes: tr.Bytes, Latency: tr.Latency}
}
