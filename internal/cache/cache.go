// Package cache implements the framework's hot-path read acceleration: a
// generic, race-safe, sharded LRU with generation-based invalidation and a
// built-in singleflight group that coalesces concurrent misses for the same
// key into one inner call.
//
// Real DOSN workloads are heavily skewed toward a small hot set of popular
// profiles (LibreSocial reports read-mostly, Zipf-like access in its P2P
// OSN deployment; DECENT identifies object-read latency as the dominant
// cost of decentralized enforcement), and the paper motivates hybrid
// encryption precisely because asymmetric operations are too expensive to
// pay per read. Three instances of this cache thread through the stack: the
// DHT route cache (key → successor resolution), the resilient KV's
// verified-value cache, and the privacy layer's envelope-key cache.
// Experiment E21 measures what they buy.
//
// Determinism contract: shard assignment is a pure function of (seed, key),
// and each shard's eviction order is a pure function of the sequence of
// operations that reached that shard. Callers that partition keys across
// goroutines by shard therefore observe identical eviction orders at any
// parallelism level (TestCacheEvictionOrderShardedWorkers1vs8); serial
// callers observe identical orders across runs.
//
// A nil *Cache is valid and disabled: Get always misses, Put and the
// invalidation calls are no-ops, and Do simply invokes the fill function —
// call sites need no enabled/disabled branching.
package cache

import (
	"fmt"
	"sync"
	"sync/atomic"

	"godosn/internal/telemetry"
)

// Config parameterizes one cache instance.
type Config struct {
	// Capacity is the total entry budget across all shards (split evenly;
	// each shard holds at least one entry). Capacity <= 0 disables the
	// cache: New returns nil, and every method on a nil cache is a safe
	// no-op.
	Capacity int
	// Shards is the number of independently locked LRU segments (default
	// 8). More shards cut lock contention on concurrent hot paths at the
	// cost of a slightly less global LRU approximation.
	Shards int
	// Seed perturbs the key → shard mapping deterministically, so two
	// caches with different seeds spread the same keys differently while
	// each remains reproducible run to run.
	Seed int64
	// TTLTicks bounds entry age on the cache's logical clock: an entry
	// written (or refreshed) at tick T is swept by the first Tick() call
	// that advances the clock to T + TTLTicks or beyond. No wall clock is
	// consulted — time only passes when the owner calls Tick(), so expiry
	// is as deterministic as the tick schedule. 0 disables expiry.
	TTLTicks int
	// Budget, when non-nil, enrols this cache in a shared byte budget
	// (NewBudget): entry sizes are charged against the shared limit and
	// overflow evicts the globally least-recently-touched entry across
	// every enrolled cache, regardless of which instance it lives in. Entry
	// sizes come from SetSizer (default: key length plus a small fixed
	// overhead). Capacity still applies per instance.
	Budget *Budget
}

// Enabled reports whether this configuration describes a live cache.
func (c Config) Enabled() bool { return c.Capacity > 0 }

// DefaultShards is used when Config.Shards is unset.
const DefaultShards = 8

// Stats is a point-in-time snapshot of a cache's counters.
type Stats struct {
	// Hits counts Get/Do calls served from a resident entry.
	Hits int64
	// Misses counts Get/Do calls that found no usable entry.
	Misses int64
	// Evictions counts entries displaced by capacity pressure.
	Evictions int64
	// Invalidations counts entries dropped by Invalidate plus whole-cache
	// generation bumps (each bump counts once).
	Invalidations int64
	// Coalesced counts Do calls that piggy-backed on another caller's
	// in-flight fill instead of issuing their own.
	Coalesced int64
	// Expirations counts entries swept by the TTL clock (Config.TTLTicks)
	// and entries reclaimed by shared-budget pressure (Config.Budget).
	Expirations int64
}

// HitRate returns Hits / (Hits + Misses), or 0 with no traffic.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Outcome classifies how one Do call was served.
type Outcome int

// Do outcomes.
const (
	// Hit: served from a resident entry, fill not invoked.
	Hit Outcome = iota
	// Filled: this caller invoked the fill function.
	Filled
	// Coalesced: another caller's in-flight fill supplied the result.
	Coalesced
)

// String renders the outcome as a span/event tag.
func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "fill"
	}
}

// entry is one resident value on a shard's LRU list.
type entry[V any] struct {
	key        string
	val        V
	gen        uint64
	born       int64  // logical tick of last write (TTL expiry)
	seq        uint64 // shared-budget recency stamp of last touch
	size       int    // bytes charged against the shared budget
	prev, next *entry[V]
}

// shard is one independently locked LRU segment.
type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	// head is most-recently used, tail least-recently used.
	head, tail *entry[V]
	cap        int
	// onRemove observes every entry leaving the shard, whatever the cause
	// (eviction, invalidation, expiry, budget reclaim) — the single point
	// where a shared budget is credited back. Called with the shard lock
	// held; nil without a budget.
	onRemove func(*entry[V])
}

// call is one in-flight fill, shared by coalesced waiters.
type call[V any] struct {
	done    chan struct{}
	val     V
	err     error
	noStore bool // key invalidated while the fill ran: do not cache
}

// Cache is a sharded LRU over string keys. All methods are safe for
// concurrent use and safe on a nil receiver (disabled cache).
type Cache[V any] struct {
	shards []*shard[V]
	seed   uint64
	gen    atomic.Uint64

	ttl    int          // Config.TTLTicks; 0 = no expiry
	clock  atomic.Int64 // logical time, advanced by Tick
	budget *Budget      // shared byte budget; nil = uncharged
	sizer  atomic.Value // func(key string, val V) int

	hits          atomic.Int64
	misses        atomic.Int64
	evictions     atomic.Int64
	invalidations atomic.Int64
	coalesced     atomic.Int64
	expirations   atomic.Int64

	flightMu sync.Mutex
	flight   map[string]*call[V]

	telMu sync.Mutex
	tel   *cacheTelemetry

	evictMu sync.Mutex
	onEvict func(key string)
}

// cacheTelemetry holds resolved registry counters mirroring Stats.
type cacheTelemetry struct {
	hits, misses, evictions, invalidations, coalesced, expirations *telemetry.Counter
}

// New creates a cache, or returns nil (a valid, disabled cache) when the
// config's Capacity is not positive.
func New[V any](cfg Config) *Cache[V] {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.Shards < 1 {
		cfg.Shards = DefaultShards
	}
	if cfg.Shards > cfg.Capacity {
		cfg.Shards = cfg.Capacity
	}
	c := &Cache[V]{
		shards: make([]*shard[V], cfg.Shards),
		seed:   uint64(cfg.Seed),
		ttl:    cfg.TTLTicks,
		budget: cfg.Budget,
		flight: make(map[string]*call[V]),
	}
	c.sizer.Store(func(key string, _ V) int { return len(key) + defaultEntryOverhead })
	per := cfg.Capacity / cfg.Shards
	extra := cfg.Capacity % cfg.Shards
	for i := range c.shards {
		capi := per
		if i < extra {
			capi++
		}
		s := &shard[V]{entries: make(map[string]*entry[V], capi), cap: capi}
		if c.budget != nil {
			s.onRemove = func(e *entry[V]) { c.budget.credit(e.size) }
		}
		c.shards[i] = s
	}
	if c.budget != nil {
		c.budget.register(c)
	}
	return c
}

// defaultEntryOverhead approximates the per-entry bookkeeping bytes charged
// when no SetSizer hook refines the estimate.
const defaultEntryOverhead = 48

// SetSizer installs the byte-size estimator used to charge entries against
// a shared budget (Config.Budget): fn(key, val) returns the bytes one entry
// costs. Only entries written after the call use the new estimator.
// Nil-safe; a nil fn restores the default.
func (c *Cache[V]) SetSizer(fn func(key string, val V) int) {
	if c == nil {
		return
	}
	if fn == nil {
		fn = func(key string, _ V) int { return len(key) + defaultEntryOverhead }
	}
	c.sizer.Store(fn)
}

// Tick advances the cache's logical clock one step and sweeps every entry
// whose age reached Config.TTLTicks. Sweep order walks shards in index
// order and each shard's LRU list oldest-first, so the set and order of
// expiries is a pure function of the operation history — no wall clock.
// Nil-safe, and a no-op without a TTL.
func (c *Cache[V]) Tick() {
	if c == nil {
		return
	}
	now := c.clock.Add(1)
	if c.ttl <= 0 {
		return
	}
	for _, s := range c.shards {
		s.mu.Lock()
		var expired []string
		for e := s.tail; e != nil; {
			prev := e.prev
			if now-e.born >= int64(c.ttl) {
				s.remove(e)
				expired = append(expired, e.key)
			}
			e = prev
		}
		s.mu.Unlock()
		for range expired {
			c.count(&c.expirations, func(t *cacheTelemetry) *telemetry.Counter { return t.expirations })
		}
	}
}

// SetTelemetry mirrors the cache's counters into reg under the given metric
// prefix (e.g. "dht_route_cache" yields "dht_route_cache_hits_total").
// Counters record deltas from this call on. Nil-safe; reg nil disables.
func (c *Cache[V]) SetTelemetry(reg *telemetry.Registry, prefix string) {
	if c == nil {
		return
	}
	c.telMu.Lock()
	defer c.telMu.Unlock()
	if reg == nil {
		c.tel = nil
		return
	}
	c.tel = &cacheTelemetry{
		hits:          reg.Counter(prefix + "_hits_total"),
		misses:        reg.Counter(prefix + "_misses_total"),
		evictions:     reg.Counter(prefix + "_evictions_total"),
		invalidations: reg.Counter(prefix + "_invalidations_total"),
		coalesced:     reg.Counter(prefix + "_coalesced_total"),
		expirations:   reg.Counter(prefix + "_expirations_total"),
	}
}

// SetOnEvict installs a hook observing capacity evictions in order, called
// with the evicted key while no shard lock is held. Test instrumentation
// for the eviction-order determinism contract. Nil-safe.
func (c *Cache[V]) SetOnEvict(fn func(key string)) {
	if c == nil {
		return
	}
	c.evictMu.Lock()
	c.onEvict = fn
	c.evictMu.Unlock()
}

// count bumps one counter pair (local atomic + registry mirror).
func (c *Cache[V]) count(local *atomic.Int64, pick func(*cacheTelemetry) *telemetry.Counter) {
	local.Add(1)
	c.telMu.Lock()
	t := c.tel
	c.telMu.Unlock()
	if t != nil {
		pick(t).Inc()
	}
}

// Stats returns a snapshot of the counters. Nil-safe (zero Stats).
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Invalidations: c.invalidations.Load(),
		Coalesced:     c.coalesced.Load(),
		Expirations:   c.expirations.Load(),
	}
}

// Len returns the number of resident entries, including any invalidated by
// a generation bump but not yet lazily purged. Nil-safe (0).
func (c *Cache[V]) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, s := range c.shards {
		s.mu.Lock()
		n += len(s.entries)
		s.mu.Unlock()
	}
	return n
}

// shardOf maps a key to its shard: FNV-1a over the key, perturbed by the
// seed — a pure function of (seed, key), so placement and therefore
// per-shard eviction order is reproducible across runs.
func (c *Cache[V]) shardOf(key string) *shard[V] {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ c.seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached value for key. Entries from an older generation
// are purged and miss. Nil-safe (always a miss, uncounted).
func (c *Cache[V]) Get(key string) (V, bool) {
	var zero V
	if c == nil {
		return zero, false
	}
	gen := c.gen.Load()
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && e.gen != gen {
		s.remove(e)
		ok = false
	}
	if !ok {
		s.mu.Unlock()
		c.count(&c.misses, func(t *cacheTelemetry) *telemetry.Counter { return t.misses })
		return zero, false
	}
	s.moveToFront(e)
	if c.budget != nil {
		e.seq = c.budget.nextSeq() // touch: this entry is now globally newest
	}
	v := e.val
	s.mu.Unlock()
	c.count(&c.hits, func(t *cacheTelemetry) *telemetry.Counter { return t.hits })
	return v, true
}

// Put inserts or refreshes key under the current generation, evicting the
// shard's least-recently-used entry on overflow. Nil-safe (no-op).
func (c *Cache[V]) Put(key string, val V) {
	if c == nil {
		return
	}
	c.putGen(key, val, c.gen.Load())
}

// putGen inserts key=val tagged with gen, dropping the write silently when
// the cache has moved past gen — the fence that keeps a fill started before
// an invalidation from resurrecting stale data after it.
func (c *Cache[V]) putGen(key string, val V, gen uint64) {
	if c.gen.Load() != gen {
		return
	}
	s := c.shardOf(key)
	var evicted []string
	s.mu.Lock()
	// Re-check under the shard lock: a concurrent bump between the check
	// above and acquiring the lock must still win. A bump taken after this
	// point invalidates the entry lazily via its gen tag.
	if c.gen.Load() != gen {
		s.mu.Unlock()
		return
	}
	size := 0
	if c.budget != nil {
		size = c.sizer.Load().(func(string, V) int)(key, val)
	}
	if e, ok := s.entries[key]; ok {
		if c.budget != nil {
			c.budget.charge(size - e.size)
			e.size = size
			e.seq = c.budget.nextSeq()
		}
		e.val = val
		e.gen = gen
		e.born = c.clock.Load()
		s.moveToFront(e)
	} else {
		e := &entry[V]{key: key, val: val, gen: gen, born: c.clock.Load(), size: size}
		if c.budget != nil {
			c.budget.charge(size) // onRemove credits it back on any exit
			e.seq = c.budget.nextSeq()
		}
		s.entries[key] = e
		s.pushFront(e)
		for len(s.entries) > s.cap {
			tail := s.tail
			s.remove(tail)
			evicted = append(evicted, tail.key)
		}
	}
	s.mu.Unlock()
	for _, k := range evicted {
		c.count(&c.evictions, func(t *cacheTelemetry) *telemetry.Counter { return t.evictions })
		c.evictMu.Lock()
		fn := c.onEvict
		c.evictMu.Unlock()
		if fn != nil {
			fn(k)
		}
	}
	if c.budget != nil {
		c.budget.reclaim()
	}
}

// Invalidate drops key's entry, and marks any in-flight fill for key so its
// result is not cached — a lookup racing a store can complete, but its
// possibly-stale value never lands. Nil-safe (no-op).
func (c *Cache[V]) Invalidate(key string) {
	if c == nil {
		return
	}
	s := c.shardOf(key)
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok {
		s.remove(e)
	}
	s.mu.Unlock()
	c.flightMu.Lock()
	if cl, inflight := c.flight[key]; inflight {
		cl.noStore = true
	}
	c.flightMu.Unlock()
	if ok {
		c.count(&c.invalidations, func(t *cacheTelemetry) *telemetry.Counter { return t.invalidations })
	}
}

// BumpGeneration invalidates every resident entry at once (lazily: entries
// are purged as they are next touched) and fences all in-flight fills —
// results computed against the old world never land. Counted as one
// invalidation. Nil-safe (no-op).
func (c *Cache[V]) BumpGeneration() {
	if c == nil {
		return
	}
	c.gen.Add(1)
	c.count(&c.invalidations, func(t *cacheTelemetry) *telemetry.Counter { return t.invalidations })
}

// Do returns the cached value for key, or coalesces concurrent misses into
// one fill call: the first caller runs fill, every concurrent caller for
// the same key waits for that result. A successful fill's value is cached
// unless the key (or the whole cache) was invalidated while the fill ran.
// Fill errors are returned to every waiter and never cached. On a nil
// cache Do simply invokes fill. The returned Outcome says how this call
// was served.
func (c *Cache[V]) Do(key string, fill func() (V, error)) (V, Outcome, error) {
	if c == nil {
		v, err := fill()
		return v, Filled, err
	}
	if v, ok := c.Get(key); ok {
		return v, Hit, nil
	}
	c.flightMu.Lock()
	if cl, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-cl.done
		c.count(&c.coalesced, func(t *cacheTelemetry) *telemetry.Counter { return t.coalesced })
		return cl.val, Coalesced, cl.err
	}
	cl := &call[V]{done: make(chan struct{})}
	c.flight[key] = cl
	gen := c.gen.Load()
	c.flightMu.Unlock()

	cl.val, cl.err = fill()

	c.flightMu.Lock()
	delete(c.flight, key)
	noStore := cl.noStore
	c.flightMu.Unlock()
	close(cl.done)
	if cl.err == nil && !noStore {
		c.putGen(key, cl.val, gen)
	}
	return cl.val, Filled, cl.err
}

// String renders the cache for debugging.
func (c *Cache[V]) String() string {
	if c == nil {
		return "cache(disabled)"
	}
	return fmt.Sprintf("cache(shards=%d len=%d gen=%d)", len(c.shards), c.Len(), c.gen.Load())
}

// ---- intrusive LRU list (call with shard lock held) ----

func (s *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *shard[V]) remove(e *entry[V]) {
	if s.onRemove != nil {
		s.onRemove(e)
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(s.entries, e.key)
}

func (s *shard[V]) moveToFront(e *entry[V]) {
	if s.head == e {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
}
