package cache

import "testing"

// TTL expiry is tick-driven: an entry written at tick T survives every
// Tick until the clock reaches T + TTLTicks, then is swept.
func TestTTLExpiresEntriesOnTick(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1, TTLTicks: 2})
	c.Put("a", "1")
	c.Tick() // age 1 < 2: survives
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired before its TTL")
	}
	c.Tick() // age 2: swept
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived past its TTL")
	}
	if got := c.Stats().Expirations; got != 1 {
		t.Fatalf("Expirations = %d, want 1", got)
	}
}

// A refresh (Put on a resident key) restarts the entry's age; a read does
// not — TTL bounds staleness since the last write, not the last use.
func TestTTLRefreshResetsAgeButGetDoesNot(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1, TTLTicks: 2})
	c.Put("a", "1")
	c.Put("b", "1")
	c.Tick()
	c.Put("a", "2") // a reborn at tick 1
	c.Get("b")      // touching b must not extend its life
	c.Tick()        // b (age 2) swept, a (age 1) survives
	if _, ok := c.Get("b"); ok {
		t.Fatal("Get extended a TTL'd entry's life")
	}
	if v, ok := c.Get("a"); !ok || v != "2" {
		t.Fatalf("refreshed entry = %q, %v; want \"2\", true", v, ok)
	}
}

// Without a TTL, Tick never expires anything.
func TestNoTTLNeverExpires(t *testing.T) {
	c := New[string](Config{Capacity: 8, Shards: 1})
	c.Put("a", "1")
	for i := 0; i < 100; i++ {
		c.Tick()
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("entry expired with TTLTicks = 0")
	}
	var nilCache *Cache[string]
	nilCache.Tick() // nil-safe
}

// A shared budget evicts the globally least-recently-touched entry across
// instances: the cold entry goes, whichever cache holds it.
func TestBudgetEvictsGloballyOldestAcrossCaches(t *testing.T) {
	b := NewBudget(100)
	c1 := New[string](Config{Capacity: 100, Shards: 1, Budget: b})
	c2 := New[string](Config{Capacity: 100, Shards: 1, Budget: b})
	size40 := func(string, string) int { return 40 }
	c1.SetSizer(size40)
	c2.SetSizer(size40)

	c1.Put("a", "v")
	c2.Put("b", "v")
	if got := b.Used(); got != 80 {
		t.Fatalf("Used = %d, want 80", got)
	}
	c1.Get("a") // a is now globally newest; b is the cold one
	c2.Put("c", "v")
	if _, ok := c2.Get("b"); ok {
		t.Fatal("globally oldest entry survived budget pressure")
	}
	if _, ok := c1.Get("a"); !ok {
		t.Fatal("recently touched entry was reclaimed instead of the cold one")
	}
	if _, ok := c2.Get("c"); !ok {
		t.Fatal("the entry that triggered reclaim was itself reclaimed")
	}
	if got := b.Used(); got != 80 {
		t.Fatalf("Used after reclaim = %d, want 80", got)
	}
	if got := c2.Stats().Expirations; got != 1 {
		t.Fatalf("victim cache Expirations = %d, want 1", got)
	}
}

// Every exit path — invalidation, generation bump + lazy purge, capacity
// eviction, TTL sweep — credits the entry's bytes back to the budget.
func TestBudgetCreditsOnEveryRemovalPath(t *testing.T) {
	b := NewBudget(1000)
	c := New[string](Config{Capacity: 2, Shards: 1, TTLTicks: 1, Budget: b})
	c.SetSizer(func(string, string) int { return 10 })

	c.Put("a", "v")
	c.Invalidate("a")
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after Invalidate = %d, want 0", got)
	}
	c.Put("a", "v")
	c.Put("b", "v")
	c.Put("c", "v") // capacity 2: evicts the LRU
	if got := b.Used(); got != 20 {
		t.Fatalf("Used after capacity eviction = %d, want 20", got)
	}
	c.Tick() // TTL 1: sweeps both
	if got := b.Used(); got != 0 {
		t.Fatalf("Used after TTL sweep = %d, want 0", got)
	}
}

// A refresh charges only the size delta.
func TestBudgetRefreshChargesDelta(t *testing.T) {
	b := NewBudget(1000)
	c := New[[]byte](Config{Capacity: 8, Shards: 1, Budget: b})
	c.SetSizer(func(key string, val []byte) int { return len(key) + len(val) })
	c.Put("k", make([]byte, 10)) // 11
	c.Put("k", make([]byte, 30)) // 31
	if got := b.Used(); got != 31 {
		t.Fatalf("Used after growing refresh = %d, want 31", got)
	}
	c.Put("k", make([]byte, 4)) // 5
	if got := b.Used(); got != 5 {
		t.Fatalf("Used after shrinking refresh = %d, want 5", got)
	}
}

// NewBudget with a non-positive limit returns nil, and a nil budget is a
// valid disabled budget.
func TestBudgetDisabled(t *testing.T) {
	if b := NewBudget(0); b != nil {
		t.Fatal("NewBudget(0) should return nil")
	}
	var b *Budget
	if b.Used() != 0 || b.Limit() != 0 {
		t.Fatal("nil budget should report zero usage and limit")
	}
	c := New[string](Config{Capacity: 4, Shards: 1, Budget: nil})
	c.Put("a", "v")
	if _, ok := c.Get("a"); !ok {
		t.Fatal("cache without budget must behave normally")
	}
}
