package cache

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheGetPutLRU(t *testing.T) {
	c := New[string](Config{Capacity: 2, Shards: 1, Seed: 1})
	var evicted []string
	c.SetOnEvict(func(k string) { evicted = append(evicted, k) })

	c.Put("a", "1")
	c.Put("b", "2")
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("Get(a) = %q, %v; want 1, true", v, ok)
	}
	// "a" is now most-recent; inserting "c" must evict "b".
	c.Put("c", "3")
	if _, ok := c.Get("b"); ok {
		t.Fatalf("b should have been evicted")
	}
	if v, ok := c.Get("a"); !ok || v != "1" {
		t.Fatalf("a should survive: got %q, %v", v, ok)
	}
	if v, ok := c.Get("c"); !ok || v != "3" {
		t.Fatalf("c should be present: got %q, %v", v, ok)
	}
	if want := []string{"b"}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v; want %v", evicted, want)
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("Evictions = %d; want 1", st.Evictions)
	}
	if st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("Hits/Misses = %d/%d; want 3/1", st.Hits, st.Misses)
	}
}

func TestCachePutRefreshesExisting(t *testing.T) {
	c := New[int](Config{Capacity: 2, Shards: 1})
	c.Put("a", 1)
	c.Put("b", 2)
	c.Put("a", 10) // refresh, not insert: no eviction
	if c.Stats().Evictions != 0 {
		t.Fatalf("refresh must not evict")
	}
	if v, _ := c.Get("a"); v != 10 {
		t.Fatalf("Get(a) = %d; want 10", v)
	}
}

func TestCacheInvalidateKey(t *testing.T) {
	c := New[int](Config{Capacity: 4})
	c.Put("a", 1)
	c.Invalidate("a")
	if _, ok := c.Get("a"); ok {
		t.Fatalf("a should be invalidated")
	}
	if c.Stats().Invalidations != 1 {
		t.Fatalf("Invalidations = %d; want 1", c.Stats().Invalidations)
	}
	// Invalidating an absent key is a quiet no-op.
	c.Invalidate("missing")
	if c.Stats().Invalidations != 1 {
		t.Fatalf("absent-key invalidate must not count")
	}
}

func TestCacheBumpGenerationInvalidatesAll(t *testing.T) {
	c := New[int](Config{Capacity: 8})
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	c.BumpGeneration()
	for i := 0; i < 5; i++ {
		if _, ok := c.Get(fmt.Sprintf("k%d", i)); ok {
			t.Fatalf("k%d should be stale after bump", i)
		}
	}
	// New writes after the bump are live.
	c.Put("fresh", 42)
	if v, ok := c.Get("fresh"); !ok || v != 42 {
		t.Fatalf("post-bump Put should stick: %d, %v", v, ok)
	}
}

func TestCacheDoCoalescesConcurrentMisses(t *testing.T) {
	c := New[int](Config{Capacity: 8})
	var fills atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	outcomes := make([]Outcome, waiters)
	// Leader blocks in fill until every waiter has piled on.
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, o, err := c.Do("hot", func() (int, error) {
			close(started)
			<-release
			fills.Add(1)
			return 7, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], outcomes[0] = v, o
	}()
	<-started
	for i := 1; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, o, err := c.Do("hot", func() (int, error) {
				fills.Add(1)
				return 7, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], outcomes[i] = v, o
		}(i)
	}
	// Give waiters a chance to enqueue, then release the leader. Waiters
	// that arrive after the fill completes are hits, which is also fine —
	// the invariant under test is fills == 1.
	close(release)
	wg.Wait()

	if fills.Load() != 1 {
		t.Fatalf("fill ran %d times; want 1", fills.Load())
	}
	for i, v := range results {
		if v != 7 {
			t.Fatalf("result[%d] = %d; want 7 (outcome %v)", i, v, outcomes[i])
		}
	}
	if v, ok := c.Get("hot"); !ok || v != 7 {
		t.Fatalf("fill result should be cached: %d, %v", v, ok)
	}
}

func TestCacheDoErrorNotCached(t *testing.T) {
	c := New[int](Config{Capacity: 8})
	boom := errors.New("boom")
	_, _, err := c.Do("k", func() (int, error) { return 0, boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v; want boom", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatalf("error result must not be cached")
	}
	// A later successful fill works.
	v, o, err := c.Do("k", func() (int, error) { return 3, nil })
	if err != nil || v != 3 || o != Filled {
		t.Fatalf("retry fill: %d, %v, %v", v, o, err)
	}
}

func TestCacheInvalidateDuringFillNotStored(t *testing.T) {
	c := New[int](Config{Capacity: 8})
	inFill := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.Do("k", func() (int, error) {
			close(inFill)
			<-release
			return 1, nil
		})
		if err != nil || v != 1 {
			t.Errorf("Do = %d, %v", v, err)
		}
	}()
	<-inFill
	// Invalidate while the fill is in flight: the caller still gets its
	// value, but the possibly-stale result must not land in the cache.
	c.Invalidate("k")
	close(release)
	<-done
	if _, ok := c.Get("k"); ok {
		t.Fatalf("invalidated-during-fill result must not be cached")
	}
}

func TestCacheBumpDuringFillNotStored(t *testing.T) {
	c := New[int](Config{Capacity: 8})
	inFill := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.Do("k", func() (int, error) {
			close(inFill)
			<-release
			return 1, nil
		})
	}()
	<-inFill
	c.BumpGeneration()
	close(release)
	<-done
	if _, ok := c.Get("k"); ok {
		t.Fatalf("fill started before generation bump must not be cached after it")
	}
}

func TestNilCacheIsSafeAndDisabled(t *testing.T) {
	var c *Cache[int]
	if New[int](Config{Capacity: 0}) != nil {
		t.Fatalf("Capacity 0 must yield nil cache")
	}
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatalf("nil cache must always miss")
	}
	c.Invalidate("a")
	c.BumpGeneration()
	c.SetTelemetry(nil, "x")
	c.SetOnEvict(nil)
	if c.Len() != 0 {
		t.Fatalf("nil Len = %d", c.Len())
	}
	if (c.Stats() != Stats{}) {
		t.Fatalf("nil Stats = %+v", c.Stats())
	}
	v, o, err := c.Do("a", func() (int, error) { return 9, nil })
	if err != nil || v != 9 || o != Filled {
		t.Fatalf("nil Do = %d, %v, %v", v, o, err)
	}
	if c.String() != "cache(disabled)" {
		t.Fatalf("nil String = %q", c.String())
	}
}

// shardKeys returns nShards slices of keys, one per shard of a cache built
// with (shards, seed), each holding per keys that map to that shard.
func shardKeys(t *testing.T, shards int, seed int64, per int) [][]string {
	t.Helper()
	probe := New[int](Config{Capacity: shards, Shards: shards, Seed: seed})
	out := make([][]string, shards)
	for i := 0; len(outIncomplete(out, per)) > 0 && i < 1_000_000; i++ {
		k := fmt.Sprintf("key-%d", i)
		s := probe.shardOf(k)
		for si, sh := range probe.shards {
			if sh == s && len(out[si]) < per {
				out[si] = append(out[si], k)
			}
		}
	}
	for si, ks := range out {
		if len(ks) < per {
			t.Fatalf("could not find %d keys for shard %d", per, si)
		}
	}
	return out
}

func outIncomplete(out [][]string, per int) []int {
	var missing []int
	for i, ks := range out {
		if len(ks) < per {
			missing = append(missing, i)
		}
	}
	return missing
}

// TestCacheEvictionOrderDeterministicAcrossRuns drives the same serial
// access sequence through two identically configured caches and requires
// byte-identical eviction logs.
func TestCacheEvictionOrderDeterministicAcrossRuns(t *testing.T) {
	run := func() []string {
		c := New[int](Config{Capacity: 16, Shards: 4, Seed: 21})
		var log []string
		c.SetOnEvict(func(k string) { log = append(log, k) })
		for i := 0; i < 400; i++ {
			c.Put(fmt.Sprintf("key-%d", i%60), i)
			if i%3 == 0 {
				c.Get(fmt.Sprintf("key-%d", (i*7)%60))
			}
		}
		return log
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatalf("workload produced no evictions; broaden it")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("eviction order differs across runs:\n%v\n%v", a, b)
	}
}

// TestCacheEvictionOrderShardedWorkers1vs8 is the ISSUE 5 determinism
// criterion: per-shard eviction order is a pure function of that shard's
// access sequence, so partitioning keys by shard across 1 vs 8 goroutines
// yields identical per-shard eviction logs.
func TestCacheEvictionOrderShardedWorkers1vs8(t *testing.T) {
	const (
		shards = 8
		seed   = 5
		perKey = 12 // keys per shard; shard capacity is smaller, forcing evictions
		capTot = 8 * 4
	)
	keys := shardKeys(t, shards, seed, perKey)

	run := func(workers int) [][]string {
		c := New[int](Config{Capacity: capTot, Shards: shards, Seed: seed})
		logs := make([][]string, shards)
		var mu sync.Mutex
		shardIdx := make(map[string]int)
		for si, ks := range keys {
			for _, k := range ks {
				shardIdx[k] = si
			}
		}
		c.SetOnEvict(func(k string) {
			mu.Lock()
			si := shardIdx[k]
			logs[si] = append(logs[si], k)
			mu.Unlock()
		})
		drive := func(si int) {
			for round := 0; round < 3; round++ {
				for _, k := range keys[si] {
					c.Put(k, round)
					c.Get(keys[si][(round*5)%perKey])
				}
			}
		}
		if workers == 1 {
			for si := 0; si < shards; si++ {
				drive(si)
			}
		} else {
			var wg sync.WaitGroup
			for si := 0; si < shards; si++ {
				wg.Add(1)
				go func(si int) { defer wg.Done(); drive(si) }(si)
			}
			wg.Wait()
		}
		return logs
	}

	serial := run(1)
	parallel := run(8)
	any := false
	for _, l := range serial {
		if len(l) > 0 {
			any = true
		}
	}
	if !any {
		t.Fatalf("workload produced no evictions; broaden it")
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("per-shard eviction order differs between 1 and 8 workers:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}

// TestCacheRaceHammer exercises every mutating path concurrently; run
// under -race it is the CI cache race check.
func TestCacheRaceHammer(t *testing.T) {
	c := New[int](Config{Capacity: 64, Shards: 8, Seed: 3})
	c.SetOnEvict(func(string) {})
	workers := runtime.GOMAXPROCS(0) * 2
	if workers < 4 {
		workers = 4
	}
	const opsPer = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				k := fmt.Sprintf("k%d", (i*7+w)%97)
				switch i % 7 {
				case 0:
					c.Put(k, i)
				case 1, 2, 3:
					c.Get(k)
				case 4:
					_, _, _ = c.Do(k, func() (int, error) { return i, nil })
				case 5:
					c.Invalidate(k)
				default:
					if i%101 == 0 {
						c.BumpGeneration()
					} else {
						c.Len()
						c.Stats()
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func TestCacheShardCapBounds(t *testing.T) {
	// Shards > Capacity is clamped so every shard holds at least one entry.
	c := New[int](Config{Capacity: 3, Shards: 16})
	if got := len(c.shards); got != 3 {
		t.Fatalf("shards = %d; want clamped to 3", got)
	}
	for i := 0; i < 50; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() > 3 {
		t.Fatalf("Len = %d; want <= 3", c.Len())
	}
}

func TestCacheSeedChangesShardAssignment(t *testing.T) {
	a := New[int](Config{Capacity: 64, Shards: 8, Seed: 1})
	b := New[int](Config{Capacity: 64, Shards: 8, Seed: 99})
	diff := 0
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		var ai, bi int
		for si, sh := range a.shards {
			if a.shardOf(k) == sh {
				ai = si
			}
		}
		for si, sh := range b.shards {
			if b.shardOf(k) == sh {
				bi = si
			}
		}
		if ai != bi {
			diff++
		}
	}
	if diff == 0 {
		t.Fatalf("seed had no effect on shard assignment")
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{Hit: "hit", Filled: "fill", Coalesced: "coalesced"}
	for o, want := range cases {
		if o.String() != want {
			t.Fatalf("%d.String() = %q; want %q", o, o.String(), want)
		}
	}
}

func TestHitRate(t *testing.T) {
	if (Stats{}).HitRate() != 0 {
		t.Fatalf("empty HitRate should be 0")
	}
	if got := (Stats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("HitRate = %v; want 0.75", got)
	}
}
