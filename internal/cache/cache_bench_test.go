package cache

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

// BenchmarkCacheHit measures the steady-state hot path: a resident key
// served without touching the fill function.
func BenchmarkCacheHit(b *testing.B) {
	c := New[[]byte](Config{Capacity: 1024, Shards: 8, Seed: 1})
	c.Put("hot", []byte("value"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("hot"); !ok {
			b.Fatal("unexpected miss")
		}
	}
}

// BenchmarkCacheMiss measures a Do that always misses and fills (distinct
// key per op, capacity pressure forcing evictions).
func BenchmarkCacheMiss(b *testing.B) {
	c := New[int](Config{Capacity: 256, Shards: 8, Seed: 1})
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		c.Invalidate(k)
		if _, _, err := c.Do(k, func() (int, error) { return i, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheCoalescedMiss measures Do under contention for one cold
// key: GOMAXPROCS goroutines racing, one fill winning per generation.
func BenchmarkCacheCoalescedMiss(b *testing.B) {
	c := New[int](Config{Capacity: 64, Shards: 8, Seed: 1})
	var fills atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 0 {
				c.Invalidate("cold")
			}
			_, _, _ = c.Do("cold", func() (int, error) {
				fills.Add(1)
				return i, nil
			})
			i++
		}
	})
	b.ReportMetric(float64(fills.Load())/float64(b.N), "fills/op")
}

// BenchmarkCacheShardedContention measures Get/Put throughput with
// GOMAXPROCS goroutines spread across the shard space.
func BenchmarkCacheShardedContention(b *testing.B) {
	c := New[int](Config{Capacity: 4096, Shards: runtime.GOMAXPROCS(0) * 2, Seed: 1})
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%d", i)
		c.Put(keys[i], i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			k := keys[i%len(keys)]
			if i%16 == 0 {
				c.Put(k, i)
			} else {
				c.Get(k)
			}
			i++
		}
	})
}
