package cache

import (
	"sync"
	"sync/atomic"

	"godosn/internal/telemetry"
)

// Budget is a byte budget shared by several cache instances (Config.Budget):
// the DHT route cache, the verified-value cache, and the envelope-key cache
// can be bounded as one memory pool instead of three independent entry
// counts. Every entry write charges its estimated size (SetSizer) against
// the shared limit; overflow reclaims the globally least-recently-touched
// entry across all enrolled caches, wherever it lives — a cold route makes
// room for a hot value and vice versa.
//
// Recency is tracked with a shared monotone stamp assigned on every touch
// (write or hit), so "globally oldest" is a pure function of the operation
// history: serial workloads reclaim identically run to run. Reclaim order
// among concurrent writers follows their interleaving, like any LRU.
type Budget struct {
	limit int64
	used  atomic.Int64
	seq   atomic.Uint64

	mu      sync.Mutex // guards members and serializes reclaim sweeps
	members []budgetMember
}

// budgetMember is the view a Budget has of an enrolled cache, independent
// of the cache's value type.
type budgetMember interface {
	// oldestSeq reports the smallest recency stamp among resident entries.
	oldestSeq() (uint64, bool)
	// evictOldest removes the least-recently-touched entry, reporting
	// whether one existed. The entry's size is credited back via the
	// shard's onRemove hook.
	evictOldest() bool
}

// NewBudget creates a shared byte budget. A non-positive limit returns nil
// — a valid, disabled budget (caches run unbounded-by-bytes).
func NewBudget(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Limit returns the configured byte ceiling. Nil-safe (0).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently charged across all enrolled caches.
// Nil-safe (0).
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// register enrols a cache; called once from New, in construction order —
// which is also the tie-break order for reclaim scans.
func (b *Budget) register(m budgetMember) {
	b.mu.Lock()
	b.members = append(b.members, m)
	b.mu.Unlock()
}

// nextSeq issues the next global recency stamp.
func (b *Budget) nextSeq() uint64 { return b.seq.Add(1) }

// charge adds delta bytes (possibly negative, on a shrinking refresh) to
// the shared usage. Reclaim is a separate step so charge can run under a
// shard lock.
func (b *Budget) charge(delta int) { b.used.Add(int64(delta)) }

// credit returns size bytes to the pool when an entry leaves its cache for
// any reason (eviction, invalidation, expiry, reclaim).
func (b *Budget) credit(size int) { b.used.Add(-int64(size)) }

// reclaim evicts globally least-recently-touched entries until usage is
// back under the limit (or every member is empty). Called with no shard
// lock held; b.mu orders the lock hierarchy budget → shard, never the
// reverse.
func (b *Budget) reclaim() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.used.Load() > b.limit {
		var (
			victim budgetMember
			best   uint64
			found  bool
		)
		for _, m := range b.members {
			if s, ok := m.oldestSeq(); ok && (!found || s < best) {
				best, victim, found = s, m, true
			}
		}
		if !found || !victim.evictOldest() {
			return
		}
	}
}

// oldestSeq implements budgetMember: the smallest recency stamp across
// shard tails (each shard's tail is its least-recently-touched entry, and
// stamps are assigned under the same lock that maintains LRU order).
func (c *Cache[V]) oldestSeq() (uint64, bool) {
	var (
		best  uint64
		found bool
	)
	for _, s := range c.shards {
		s.mu.Lock()
		if s.tail != nil && (!found || s.tail.seq < best) {
			best, found = s.tail.seq, true
		}
		s.mu.Unlock()
	}
	return best, found
}

// evictOldest implements budgetMember: drop the entry with the smallest
// recency stamp, counted as an expiration (budget pressure, not capacity
// pressure — the SetOnEvict hook observes capacity evictions only).
func (c *Cache[V]) evictOldest() bool {
	var (
		victim *shard[V]
		best   uint64
		found  bool
	)
	for _, s := range c.shards {
		s.mu.Lock()
		if s.tail != nil && (!found || s.tail.seq < best) {
			best, victim, found = s.tail.seq, s, true
		}
		s.mu.Unlock()
	}
	if !found {
		return false
	}
	victim.mu.Lock()
	if victim.tail == nil {
		victim.mu.Unlock()
		return false
	}
	victim.remove(victim.tail)
	victim.mu.Unlock()
	c.count(&c.expirations, func(t *cacheTelemetry) *telemetry.Counter { return t.expirations })
	return true
}
