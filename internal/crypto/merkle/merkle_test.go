package merkle

import (
	"fmt"
	"testing"
	"testing/quick"
)

func buildTree(n int) *Tree {
	t := New()
	for i := 0; i < n; i++ {
		t.Append([]byte(fmt.Sprintf("item-%d", i)))
	}
	return t
}

func TestEmptyTreeRoot(t *testing.T) {
	a, b := New(), New()
	if a.Root() != b.Root() {
		t.Fatal("empty roots differ")
	}
	if a.Len() != 0 {
		t.Fatal("empty tree has leaves")
	}
}

func TestRootChangesOnAppend(t *testing.T) {
	tr := New()
	prev := tr.Root()
	for i := 0; i < 10; i++ {
		tr.Append([]byte{byte(i)})
		cur := tr.Root()
		if cur == prev {
			t.Fatalf("root unchanged after append %d", i)
		}
		prev = cur
	}
}

func TestRootDeterministic(t *testing.T) {
	a := New([]byte("x"), []byte("y"), []byte("z"))
	b := New([]byte("x"), []byte("y"), []byte("z"))
	if a.Root() != b.Root() {
		t.Fatal("same leaves, different roots")
	}
	c := New([]byte("x"), []byte("z"), []byte("y"))
	if a.Root() == c.Root() {
		t.Fatal("order-insensitive root")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// A leaf whose DATA is the interior-node encoding (child hashes) must
	// not hash to the interior digest (classic second-preimage pitfall).
	l, r := LeafHash([]byte("a")), LeafHash([]byte("b"))
	interiorEncoding := append(append([]byte{}, l[:]...), r[:]...)
	oneLeaf := New(interiorEncoding)
	twoLeaf := New([]byte("a"), []byte("b"))
	if oneLeaf.Root() == twoLeaf.Root() {
		t.Fatal("domain separation failure")
	}
}

func TestProveVerifyAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		tr := buildTree(n)
		root := tr.Root()
		for i := 0; i < n; i++ {
			proof, err := tr.Prove(i)
			if err != nil {
				t.Fatalf("n=%d Prove(%d): %v", n, i, err)
			}
			leaf := LeafHash([]byte(fmt.Sprintf("item-%d", i)))
			if err := VerifyProof(root, leaf, proof); err != nil {
				t.Fatalf("n=%d VerifyProof(%d): %v", n, i, err)
			}
		}
	}
}

func TestVerifyRejectsWrongLeaf(t *testing.T) {
	tr := buildTree(8)
	proof, _ := tr.Prove(3)
	if err := VerifyProof(tr.Root(), LeafHash([]byte("intruder")), proof); err == nil {
		t.Fatal("verified wrong leaf")
	}
}

func TestVerifyRejectsWrongIndex(t *testing.T) {
	tr := buildTree(8)
	proof, _ := tr.Prove(3)
	proof.Index = 4
	leaf := LeafHash([]byte("item-3"))
	if err := VerifyProof(tr.Root(), leaf, proof); err == nil {
		t.Fatal("verified at wrong index")
	}
}

func TestVerifyRejectsMutatedPath(t *testing.T) {
	tr := buildTree(16)
	proof, _ := tr.Prove(5)
	proof.Path[1][0] ^= 1
	if err := VerifyProof(tr.Root(), LeafHash([]byte("item-5")), proof); err == nil {
		t.Fatal("verified mutated path")
	}
}

func TestProveBounds(t *testing.T) {
	tr := buildTree(4)
	if _, err := tr.Prove(-1); err == nil {
		t.Fatal("accepted negative index")
	}
	if _, err := tr.Prove(4); err == nil {
		t.Fatal("accepted out-of-range index")
	}
	if _, err := New().Prove(0); err == nil {
		t.Fatal("proved in empty tree")
	}
}

func TestConsistencyAllSizePairs(t *testing.T) {
	const maxN = 20
	full := buildTree(maxN)
	roots := make([][32]byte, maxN+1)
	partial := New()
	for i := 1; i <= maxN; i++ {
		partial.Append([]byte(fmt.Sprintf("item-%d", i-1)))
		roots[i] = partial.Root()
	}
	if roots[maxN] != full.Root() {
		t.Fatal("incremental root mismatch")
	}
	for old := 1; old <= maxN; old++ {
		// Prove from the full tree state against every historical size.
		sub := buildTree(maxN)
		proof, err := sub.ProveConsistency(old)
		if err != nil {
			t.Fatalf("ProveConsistency(%d): %v", old, err)
		}
		if err := VerifyConsistency(roots[old], roots[maxN], proof); err != nil {
			t.Fatalf("VerifyConsistency(%d->%d): %v", old, maxN, err)
		}
	}
}

func TestConsistencyRejectsFork(t *testing.T) {
	honest := buildTree(10)
	// Forked history: same length prefix then divergent entry.
	forked := New()
	for i := 0; i < 9; i++ {
		forked.Append([]byte(fmt.Sprintf("item-%d", i)))
	}
	forked.Append([]byte("EQUIVOCATED"))
	// Extend both and try to prove forked(10) extends honest's root at 10.
	proof, err := forked.ProveConsistency(10)
	if err != nil {
		t.Fatalf("ProveConsistency: %v", err)
	}
	if err := VerifyConsistency(honest.Root(), forked.Root(), proof); err == nil {
		t.Fatal("consistency proof bridged a fork")
	}
}

func TestConsistencySameSize(t *testing.T) {
	tr := buildTree(7)
	proof, err := tr.ProveConsistency(7)
	if err != nil {
		t.Fatalf("ProveConsistency: %v", err)
	}
	if err := VerifyConsistency(tr.Root(), tr.Root(), proof); err != nil {
		t.Fatalf("VerifyConsistency same size: %v", err)
	}
	other := buildTree(8)
	if err := VerifyConsistency(tr.Root(), other.Root(), proof); err == nil {
		t.Fatal("same-size proof accepted different root")
	}
}

func TestConsistencyBounds(t *testing.T) {
	tr := buildTree(5)
	if _, err := tr.ProveConsistency(0); err == nil {
		t.Fatal("accepted oldSize 0")
	}
	if _, err := tr.ProveConsistency(6); err == nil {
		t.Fatal("accepted oldSize beyond tree")
	}
}

func TestQuickConsistency(t *testing.T) {
	f := func(oldRaw, newRaw uint8) bool {
		old := int(oldRaw%40) + 1
		n := old + int(newRaw%40)
		grown := buildTree(n)
		oldTree := buildTree(old)
		proof, err := grown.ProveConsistency(old)
		if err != nil {
			return false
		}
		return VerifyConsistency(oldTree.Root(), grown.Root(), proof) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMembership(t *testing.T) {
	f := func(nRaw, idxRaw uint8) bool {
		n := int(nRaw%64) + 1
		idx := int(idxRaw) % n
		tr := buildTree(n)
		proof, err := tr.Prove(idx)
		if err != nil {
			return false
		}
		leaf := LeafHash([]byte(fmt.Sprintf("item-%d", idx)))
		return VerifyProof(tr.Root(), leaf, proof) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}
