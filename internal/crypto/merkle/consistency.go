package merkle

import "errors"

// ErrInvalidConsistency indicates a consistency proof that does not verify.
var ErrInvalidConsistency = errors.New("merkle: consistency proof verification failed")

// ConsistencyProof proves that the tree with newSize leaves is an append-only
// extension of the tree with oldSize leaves (RFC 6962 §2.1.2 style).
type ConsistencyProof struct {
	// OldSize and NewSize are the two tree sizes related by the proof.
	OldSize int
	NewSize int
	// Path holds the proof node digests.
	Path [][32]byte
}

// ProveConsistency builds a proof that the current tree extends its earlier
// state at oldSize leaves.
func (t *Tree) ProveConsistency(oldSize int) (*ConsistencyProof, error) {
	n := len(t.leaves)
	if oldSize <= 0 || oldSize > n {
		return nil, ErrIndexRange
	}
	p := &ConsistencyProof{OldSize: oldSize, NewSize: n}
	if oldSize == n {
		return p, nil
	}
	p.Path = subProof(t.leaves, oldSize, true)
	return p, nil
}

// subProof implements the SUBPROOF recursion of RFC 6962.
func subProof(leaves [][32]byte, m int, completeSubtree bool) [][32]byte {
	n := len(leaves)
	if m == n {
		if completeSubtree {
			return nil
		}
		return [][32]byte{rootOf(leaves)}
	}
	k := splitPoint(n)
	if m <= k {
		proof := subProof(leaves[:k], m, completeSubtree)
		return append(proof, rootOf(leaves[k:]))
	}
	proof := subProof(leaves[k:], m-k, false)
	return append(proof, rootOf(leaves[:k]))
}

// VerifyConsistency checks that newRoot's tree extends oldRoot's tree.
func VerifyConsistency(oldRoot, newRoot [32]byte, proof *ConsistencyProof) error {
	if proof == nil || proof.OldSize <= 0 || proof.OldSize > proof.NewSize {
		return ErrInvalidConsistency
	}
	if proof.OldSize == proof.NewSize {
		if oldRoot != newRoot || len(proof.Path) != 0 {
			return ErrInvalidConsistency
		}
		return nil
	}
	// RFC 6962 §2.1.4.2 verification algorithm.
	path := proof.Path
	if len(path) == 0 {
		return ErrInvalidConsistency
	}
	fn := proof.OldSize - 1
	sn := proof.NewSize - 1
	for fn%2 == 1 {
		fn >>= 1
		sn >>= 1
	}
	var fr, sr [32]byte
	if fn > 0 {
		fr, sr = path[0], path[0]
		path = path[1:]
	} else {
		fr, sr = oldRoot, oldRoot
	}
	for _, c := range path {
		if sn == 0 {
			return ErrInvalidConsistency
		}
		if fn%2 == 1 || fn == sn {
			fr = NodeHash(c, fr)
			sr = NodeHash(c, sr)
			for fn%2 == 0 && fn != 0 {
				fn >>= 1
				sn >>= 1
			}
		} else {
			sr = NodeHash(sr, c)
		}
		fn >>= 1
		sn >>= 1
	}
	if fr != oldRoot || sr != newRoot || sn != 0 {
		return ErrInvalidConsistency
	}
	return nil
}
