// Package merkle implements binary Merkle hash trees with membership proofs.
//
// Merkle trees are the substrate for the object history tree of
// internal/crypto/historytree and the persistent authenticated dictionary of
// internal/crypto/pad, both of which the paper (Sections III-F and IV-B)
// attributes to Frientegrity.
package merkle

import (
	"crypto/sha256"
	"errors"
	"math/bits"
)

// Errors returned by this package.
var (
	ErrEmptyTree    = errors.New("merkle: empty tree")
	ErrIndexRange   = errors.New("merkle: index out of range")
	ErrInvalidProof = errors.New("merkle: proof verification failed")
)

// leafPrefix and nodePrefix domain-separate leaf and interior hashes,
// preventing second-preimage attacks between levels.
const (
	leafPrefix = byte(0x00)
	nodePrefix = byte(0x01)
)

// LeafHash hashes application data into a leaf digest.
func LeafHash(data []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{leafPrefix})
	h.Write(data)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// NodeHash combines two child digests into a parent digest.
func NodeHash(left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte{nodePrefix})
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Tree is an append-only binary Merkle tree over leaf digests.
type Tree struct {
	leaves [][32]byte
}

// New creates a tree over the given application data items.
func New(items ...[]byte) *Tree {
	t := &Tree{}
	for _, it := range items {
		t.Append(it)
	}
	return t
}

// Append adds an item and returns its leaf index.
func (t *Tree) Append(data []byte) int {
	t.leaves = append(t.leaves, LeafHash(data))
	return len(t.leaves) - 1
}

// AppendLeafHash adds a precomputed leaf digest.
func (t *Tree) AppendLeafHash(leaf [32]byte) int {
	t.leaves = append(t.leaves, leaf)
	return len(t.leaves) - 1
}

// Len returns the number of leaves.
func (t *Tree) Len() int { return len(t.leaves) }

// Root returns the root digest. An empty tree has the digest of nothing.
func (t *Tree) Root() [32]byte {
	if len(t.leaves) == 0 {
		return sha256.Sum256([]byte("godosn/merkle/empty-v1"))
	}
	return rootOf(t.leaves)
}

// rootOf computes the RFC-6962-style root of a leaf range: the split point is
// the largest power of two strictly less than the range size.
func rootOf(leaves [][32]byte) [32]byte {
	n := len(leaves)
	if n == 1 {
		return leaves[0]
	}
	k := splitPoint(n)
	return NodeHash(rootOf(leaves[:k]), rootOf(leaves[k:]))
}

// splitPoint returns the largest power of two < n (n >= 2).
func splitPoint(n int) int {
	return 1 << (bits.Len(uint(n-1)) - 1)
}

// Proof is a membership proof for one leaf: sibling digests bottom-up plus
// the tree size the proof was made against.
type Proof struct {
	// Index is the leaf position the proof speaks for.
	Index int
	// Size is the leaf count of the tree at proof time.
	Size int
	// Path holds sibling digests from leaf level to root.
	Path [][32]byte
}

// Prove builds a membership proof for the leaf at index.
func (t *Tree) Prove(index int) (*Proof, error) {
	if len(t.leaves) == 0 {
		return nil, ErrEmptyTree
	}
	if index < 0 || index >= len(t.leaves) {
		return nil, ErrIndexRange
	}
	p := &Proof{Index: index, Size: len(t.leaves)}
	buildPath(t.leaves, index, p)
	return p, nil
}

func buildPath(leaves [][32]byte, index int, p *Proof) {
	n := len(leaves)
	if n == 1 {
		return
	}
	k := splitPoint(n)
	if index < k {
		buildPath(leaves[:k], index, p)
		p.Path = append(p.Path, rootOf(leaves[k:]))
	} else {
		buildPath(leaves[k:], index-k, p)
		p.Path = append(p.Path, rootOf(leaves[:k]))
	}
}

// VerifyProof checks that leaf sits at proof.Index in a tree of proof.Size
// leaves with the given root.
func VerifyProof(root [32]byte, leaf [32]byte, proof *Proof) error {
	if proof == nil || proof.Size <= 0 || proof.Index < 0 || proof.Index >= proof.Size {
		return ErrInvalidProof
	}
	computed, rest, err := foldPath(leaf, proof.Index, proof.Size, proof.Path)
	if err != nil || len(rest) != 0 {
		return ErrInvalidProof
	}
	if computed != root {
		return ErrInvalidProof
	}
	return nil
}

// foldPath recomputes the root for the subtree of the given size containing
// index, consuming path entries, mirroring buildPath's recursion.
func foldPath(leaf [32]byte, index, size int, path [][32]byte) ([32]byte, [][32]byte, error) {
	if size == 1 {
		return leaf, path, nil
	}
	k := splitPoint(size)
	var (
		sub  [32]byte
		rest [][32]byte
		err  error
	)
	if index < k {
		sub, rest, err = foldPath(leaf, index, k, path)
		if err != nil {
			return sub, rest, err
		}
		if len(rest) == 0 {
			return sub, rest, ErrInvalidProof
		}
		return NodeHash(sub, rest[0]), rest[1:], nil
	}
	sub, rest, err = foldPath(leaf, index-k, size-k, path)
	if err != nil {
		return sub, rest, err
	}
	if len(rest) == 0 {
		return sub, rest, ErrInvalidProof
	}
	return NodeHash(rest[0], sub), rest[1:], nil
}
