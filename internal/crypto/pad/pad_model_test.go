package pad

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestModelBasedRandomOps drives the PAD with random insert/delete/get
// sequences against a plain map model, verifying (a) observable equivalence,
// (b) proof validity for every queried key, and (c) persistence of old
// versions.
func TestModelBasedRandomOps(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			d := New()
			model := map[string]string{}
			type snapshot struct {
				dict  *Dict
				model map[string]string
			}
			var snaps []snapshot

			keyspace := make([]string, 30)
			for i := range keyspace {
				keyspace[i] = fmt.Sprintf("key-%02d", i)
			}
			for op := 0; op < 400; op++ {
				k := keyspace[rng.Intn(len(keyspace))]
				switch rng.Intn(4) {
				case 0, 1: // insert/update
					v := fmt.Sprintf("v%d", op)
					d = d.Insert([]byte(k), []byte(v))
					model[k] = v
				case 2: // delete
					d = d.Delete([]byte(k))
					delete(model, k)
				case 3: // snapshot
					cp := make(map[string]string, len(model))
					for mk, mv := range model {
						cp[mk] = mv
					}
					snaps = append(snaps, snapshot{dict: d, model: cp})
				}
				// Invariants after every op.
				if d.Len() != len(model) {
					t.Fatalf("op %d: Len=%d model=%d", op, d.Len(), len(model))
				}
				probe := keyspace[rng.Intn(len(keyspace))]
				got, err := d.Get([]byte(probe))
				want, ok := model[probe]
				if ok != (err == nil) {
					t.Fatalf("op %d: Get(%s) presence mismatch: %v vs %v", op, probe, err, ok)
				}
				if ok && string(got) != want {
					t.Fatalf("op %d: Get(%s)=%q want %q", op, probe, got, want)
				}
				proof := d.Prove([]byte(probe))
				if proof.Present != ok {
					t.Fatalf("op %d: proof presence mismatch for %s", op, probe)
				}
				if err := VerifyProof(d.Root(), []byte(probe), proof); err != nil {
					t.Fatalf("op %d: proof for %s invalid: %v", op, probe, err)
				}
			}
			// Persistence: every snapshot still matches its model exactly.
			for i, s := range snaps {
				if s.dict.Len() != len(s.model) {
					t.Fatalf("snapshot %d: Len drifted", i)
				}
				for k, v := range s.model {
					got, err := s.dict.Get([]byte(k))
					if err != nil || string(got) != v {
						t.Fatalf("snapshot %d: Get(%s)=%q,%v want %q", i, k, got, err, v)
					}
				}
				for _, k := range keyspace {
					if _, inModel := s.model[k]; !inModel {
						if _, err := s.dict.Get([]byte(k)); err == nil {
							t.Fatalf("snapshot %d: phantom key %s", i, k)
						}
					}
				}
			}
		})
	}
}

// TestProofStepsLogarithmic checks the Frientegrity "logarithmic time"
// claim structurally: proof length grows ~log n, far below linear.
func TestProofStepsLogarithmic(t *testing.T) {
	steps := func(n int) int {
		d := New()
		for i := 0; i < n; i++ {
			d = d.Insert([]byte(fmt.Sprintf("m-%06d", i)), []byte("v"))
		}
		p := d.Prove([]byte(fmt.Sprintf("m-%06d", n/2)))
		return len(p.Steps)
	}
	s256 := steps(256)
	s4096 := steps(4096)
	if s4096 > s256+12 {
		t.Fatalf("proof growth not logarithmic: %d @256 -> %d @4096", s256, s4096)
	}
	if s4096 > 40 {
		t.Fatalf("proof at 4096 entries uses %d steps", s4096)
	}
}
