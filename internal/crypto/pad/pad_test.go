package pad

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertGet(t *testing.T) {
	d := New()
	d = d.Insert([]byte("alice"), []byte("rw"))
	d = d.Insert([]byte("bob"), []byte("r"))
	v, err := d.Get([]byte("alice"))
	if err != nil || string(v) != "rw" {
		t.Fatalf("Get(alice) = %q, %v", v, err)
	}
	v, err = d.Get([]byte("bob"))
	if err != nil || string(v) != "r" {
		t.Fatalf("Get(bob) = %q, %v", v, err)
	}
	if _, err := d.Get([]byte("carol")); err == nil {
		t.Fatal("Get(carol) succeeded")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestInsertOverwrite(t *testing.T) {
	d := New().Insert([]byte("k"), []byte("v1"))
	d2 := d.Insert([]byte("k"), []byte("v2"))
	if d2.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", d2.Len())
	}
	v, _ := d2.Get([]byte("k"))
	if string(v) != "v2" {
		t.Fatalf("got %q", v)
	}
	// Persistence: the old version still holds the old value.
	v, _ = d.Get([]byte("k"))
	if string(v) != "v1" {
		t.Fatalf("old version mutated: %q", v)
	}
}

func TestDelete(t *testing.T) {
	d := New().Insert([]byte("a"), []byte("1")).Insert([]byte("b"), []byte("2"))
	d2 := d.Delete([]byte("a"))
	if d2.Len() != 1 {
		t.Fatalf("Len = %d", d2.Len())
	}
	if _, err := d2.Get([]byte("a")); err == nil {
		t.Fatal("deleted key still present")
	}
	if _, err := d2.Get([]byte("b")); err != nil {
		t.Fatal("unrelated key lost")
	}
	// Old version unaffected.
	if _, err := d.Get([]byte("a")); err != nil {
		t.Fatal("persistence violated by delete")
	}
	// Deleting absent key returns same version.
	if d3 := d2.Delete([]byte("zz")); d3.Root() != d2.Root() {
		t.Fatal("deleting absent key changed root")
	}
}

func TestRootDeterministicAcrossInsertionOrders(t *testing.T) {
	keys := []string{"alice", "bob", "carol", "dave", "eve", "frank", "grace"}
	build := func(order []int) *Dict {
		d := New()
		for _, i := range order {
			d = d.Insert([]byte(keys[i]), []byte("v:"+keys[i]))
		}
		return d
	}
	base := build([]int{0, 1, 2, 3, 4, 5, 6})
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(len(keys))
		other := build(perm)
		if base.Root() != other.Root() {
			t.Fatalf("insertion order %v changed root", perm)
		}
	}
}

func TestRootChangesWithContent(t *testing.T) {
	a := New().Insert([]byte("k"), []byte("v1"))
	b := New().Insert([]byte("k"), []byte("v2"))
	if a.Root() == b.Root() {
		t.Fatal("different values, same root")
	}
	c := New().Insert([]byte("k2"), []byte("v1"))
	if a.Root() == c.Root() {
		t.Fatal("different keys, same root")
	}
	if New().Root() != New().Root() {
		t.Fatal("empty roots differ")
	}
}

func TestKeysSorted(t *testing.T) {
	d := New()
	var want []string
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key-%03d", (i*37)%100)
		d = d.Insert([]byte(k), []byte("v"))
		want = append(want, k)
	}
	sort.Strings(want)
	// dedupe
	uniq := want[:0]
	for i, k := range want {
		if i == 0 || want[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	got := d.Keys()
	if len(got) != len(uniq) {
		t.Fatalf("Keys len %d, want %d", len(got), len(uniq))
	}
	for i, k := range got {
		if string(k) != uniq[i] {
			t.Fatalf("Keys[%d] = %q, want %q", i, k, uniq[i])
		}
	}
}

func TestProveVerifyPositive(t *testing.T) {
	d := New()
	for i := 0; i < 40; i++ {
		d = d.Insert([]byte(fmt.Sprintf("user-%02d", i)), []byte(fmt.Sprintf("lvl-%d", i%3)))
	}
	root := d.Root()
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("user-%02d", i))
		p := d.Prove(key)
		if !p.Present {
			t.Fatalf("Prove(%s) negative", key)
		}
		if string(p.Value) != fmt.Sprintf("lvl-%d", i%3) {
			t.Fatalf("Prove(%s) value %q", key, p.Value)
		}
		if err := VerifyProof(root, key, p); err != nil {
			t.Fatalf("VerifyProof(%s): %v", key, err)
		}
	}
}

func TestProveVerifyNegative(t *testing.T) {
	d := New()
	for i := 0; i < 20; i++ {
		d = d.Insert([]byte(fmt.Sprintf("user-%02d", i*2)), []byte("v"))
	}
	root := d.Root()
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("user-%02d", i*2+1))
		p := d.Prove(key)
		if p.Present {
			t.Fatalf("absent key proved present")
		}
		if err := VerifyProof(root, key, p); err != nil {
			t.Fatalf("negative VerifyProof(%s): %v", key, err)
		}
	}
}

func TestVerifyRejectsWrongValue(t *testing.T) {
	d := New().Insert([]byte("k"), []byte("true-value"))
	p := d.Prove([]byte("k"))
	p.Value = []byte("lie")
	p.Steps[len(p.Steps)-2].Value = []byte("lie")
	if err := VerifyProof(d.Root(), []byte("k"), p); err == nil {
		t.Fatal("forged value verified")
	}
}

func TestVerifyRejectsAbsenceLie(t *testing.T) {
	// A malicious replica claims a present key is absent by truncating the
	// path: verification must fail against the true root.
	d := New()
	for i := 0; i < 20; i++ {
		d = d.Insert([]byte(fmt.Sprintf("user-%02d", i)), []byte("v"))
	}
	target := []byte("user-07")
	p := d.Prove(target)
	forged := &Proof{Present: false, Steps: p.Steps[:len(p.Steps)-2]}
	if err := VerifyProof(d.Root(), target, forged); err == nil {
		t.Fatal("false absence proof verified")
	}
}

func TestVerifyRejectsWrongRoot(t *testing.T) {
	d1 := New().Insert([]byte("k"), []byte("v"))
	d2 := New().Insert([]byte("k"), []byte("other"))
	p := d1.Prove([]byte("k"))
	if err := VerifyProof(d2.Root(), []byte("k"), p); err == nil {
		t.Fatal("proof verified against wrong root")
	}
}

func TestVerifyNilProof(t *testing.T) {
	if err := VerifyProof([32]byte{}, []byte("k"), nil); err == nil {
		t.Fatal("nil proof verified")
	}
}

func TestQuickInsertGetProve(t *testing.T) {
	f := func(keys [][]byte) bool {
		d := New()
		expect := map[string][]byte{}
		for i, k := range keys {
			v := []byte(fmt.Sprintf("v%d", i))
			d = d.Insert(k, v)
			expect[string(k)] = v
		}
		root := d.Root()
		for k, v := range expect {
			got, err := d.Get([]byte(k))
			if err != nil || !bytes.Equal(got, v) {
				return false
			}
			p := d.Prove([]byte(k))
			if !p.Present || VerifyProof(root, []byte(k), p) != nil {
				return false
			}
		}
		return d.Len() == len(expect)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDeterministicRoot(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 1
		keys := make([]string, n)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Intn(40))
		}
		d1, d2 := New(), New()
		for _, k := range keys {
			d1 = d1.Insert([]byte(k), []byte("v"))
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			d2 = d2.Insert([]byte(keys[i]), []byte("v"))
		}
		return d1.Root() == d2.Root()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
