// Package pad implements a persistent authenticated dictionary (PAD): a
// key-value store with Merkle-style authentication, logarithmic-time lookups
// and proofs, and cheap persistent snapshots.
//
// The paper (Section III-F) notes that in Frientegrity "the hybrid structure
// of the access control lists (ACLs) ... is organized in a persistent
// authenticated dictionary (PAD). Thus, ACLs are PADs, making it possible to
// access in logarithmic time." This package provides that substrate: the
// ACL layer of internal/social/privacy stores membership entries in a PAD so
// that an untrusted replica can answer "is user U in group G's ACL?" with a
// cryptographic proof against a signed root.
//
// The construction is an authenticated treap: a balanced search tree whose
// shape is a deterministic function of the key set (heap priorities are
// derived by hashing keys), with every node carrying a hash of its subtree.
// Deterministic shape means two replicas holding the same entries agree on
// the root digest. Updates copy the O(log n) path (path-copying persistence),
// so every version remains queryable — the "persistent" in PAD.
package pad

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
)

// Errors returned by this package.
var (
	ErrNotFound     = errors.New("pad: key not found")
	ErrInvalidProof = errors.New("pad: proof verification failed")
)

// node is an immutable treap node; trees share structure across versions.
type node struct {
	key      []byte
	value    []byte
	priority [32]byte
	hash     [32]byte
	left     *node
	right    *node
}

// Dict is one immutable version of the dictionary. The zero value is NOT
// usable; obtain versions from New and Insert/Delete.
type Dict struct {
	root *node
	size int
}

// New returns an empty dictionary version.
func New() *Dict { return &Dict{} }

// Len returns the number of entries in this version.
func (d *Dict) Len() int { return d.size }

// Root returns the authenticator digest of this version. Signing this root
// commits the whole dictionary contents.
func (d *Dict) Root() [32]byte { return hashOf(d.root) }

var emptyHash = sha256.Sum256([]byte("godosn/pad/empty-v1"))

func hashOf(n *node) [32]byte {
	if n == nil {
		return emptyHash
	}
	return n.hash
}

// nodeHash authenticates a node: H(len(key) || key || len(value) || value ||
// leftHash || rightHash).
func nodeHash(key, value []byte, left, right [32]byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("godosn/pad/node-v1"))
	var l [8]byte
	binary.BigEndian.PutUint64(l[:], uint64(len(key)))
	h.Write(l[:])
	h.Write(key)
	binary.BigEndian.PutUint64(l[:], uint64(len(value)))
	h.Write(l[:])
	h.Write(value)
	h.Write(left[:])
	h.Write(right[:])
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func priorityOf(key []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("godosn/pad/priority-v1"))
	h.Write(key)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

func mkNode(key, value []byte, left, right *node) *node {
	n := &node{
		key:      key,
		value:    value,
		priority: priorityOf(key),
		left:     left,
		right:    right,
	}
	n.hash = nodeHash(key, value, hashOf(left), hashOf(right))
	return n
}

// withChildren returns a copy of n with new children (path copying).
func (n *node) withChildren(left, right *node) *node {
	return mkNode(n.key, n.value, left, right)
}

// Get returns the value for key in this version.
func (d *Dict) Get(key []byte) ([]byte, error) {
	n := d.root
	for n != nil {
		switch c := bytes.Compare(key, n.key); {
		case c == 0:
			return append([]byte(nil), n.value...), nil
		case c < 0:
			n = n.left
		default:
			n = n.right
		}
	}
	return nil, ErrNotFound
}

// Insert returns a new version with key set to value. The receiver version
// is unchanged.
func (d *Dict) Insert(key, value []byte) *Dict {
	k := append([]byte(nil), key...)
	v := append([]byte(nil), value...)
	root, added := insert(d.root, k, v)
	size := d.size
	if added {
		size++
	}
	return &Dict{root: root, size: size}
}

func insert(n *node, key, value []byte) (*node, bool) {
	if n == nil {
		return mkNode(key, value, nil, nil), true
	}
	switch c := bytes.Compare(key, n.key); {
	case c == 0:
		return mkNode(n.key, value, n.left, n.right), false
	case c < 0:
		left, added := insert(n.left, key, value)
		nn := n.withChildren(left, n.right)
		if bytes.Compare(left.priority[:], nn.priority[:]) > 0 {
			nn = rotateRight(nn)
		}
		return nn, added
	default:
		right, added := insert(n.right, key, value)
		nn := n.withChildren(n.left, right)
		if bytes.Compare(right.priority[:], nn.priority[:]) > 0 {
			nn = rotateLeft(nn)
		}
		return nn, added
	}
}

// Delete returns a new version without key. Deleting an absent key returns
// the receiver unchanged.
func (d *Dict) Delete(key []byte) *Dict {
	root, removed := remove(d.root, key)
	if !removed {
		return d
	}
	return &Dict{root: root, size: d.size - 1}
}

func remove(n *node, key []byte) (*node, bool) {
	if n == nil {
		return nil, false
	}
	switch c := bytes.Compare(key, n.key); {
	case c < 0:
		left, removed := remove(n.left, key)
		if !removed {
			return n, false
		}
		return n.withChildren(left, n.right), true
	case c > 0:
		right, removed := remove(n.right, key)
		if !removed {
			return n, false
		}
		return n.withChildren(n.left, right), true
	default:
		return merge(n.left, n.right), true
	}
}

// merge joins two treaps where every key in a precedes every key in b.
func merge(a, b *node) *node {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	case bytes.Compare(a.priority[:], b.priority[:]) > 0:
		return a.withChildren(a.left, merge(a.right, b))
	default:
		return b.withChildren(merge(a, b.left), b.right)
	}
}

func rotateRight(n *node) *node {
	l := n.left
	return l.withChildren(l.left, n.withChildren(l.right, n.right))
}

func rotateLeft(n *node) *node {
	r := n.right
	return r.withChildren(n.withChildren(n.left, r.left), r.right)
}

// Keys returns all keys in order (for iteration and tests).
func (d *Dict) Keys() [][]byte {
	var out [][]byte
	var walk func(n *node)
	walk = func(n *node) {
		if n == nil {
			return
		}
		walk(n.left)
		out = append(out, append([]byte(nil), n.key...))
		walk(n.right)
	}
	walk(d.root)
	return out
}

// ProofStep is one node on a lookup path.
type ProofStep struct {
	// Key and Value are the node's entry (Value only for the terminal node
	// of a positive proof; nil otherwise to keep proofs small — the hash
	// still commits to it via ValueHashed).
	Key []byte
	// Value is the node's value.
	Value []byte
	// OffPathHash is the hash of the child NOT taken by the lookup.
	OffPathHash [32]byte
	// WentLeft records which child the lookup descended into.
	WentLeft bool
}

// Proof is an authenticated lookup result: the path from root to the key's
// node (positive) or to the leaf where the key would live (negative).
type Proof struct {
	// Present reports whether the key was found.
	Present bool
	// Value is the found value (Present only).
	Value []byte
	// Steps is the root-to-node path.
	Steps []ProofStep
}

// Prove produces an authenticated lookup proof for key in this version.
func (d *Dict) Prove(key []byte) *Proof {
	p := &Proof{}
	n := d.root
	for n != nil {
		c := bytes.Compare(key, n.key)
		if c == 0 {
			p.Present = true
			p.Value = append([]byte(nil), n.value...)
			// Terminal step carries both child hashes via Steps encoding:
			// we store the node with the right child hash in OffPathHash and
			// WentLeft=true, then a sentinel step for the left child hash.
			p.Steps = append(p.Steps, ProofStep{
				Key:         append([]byte(nil), n.key...),
				Value:       append([]byte(nil), n.value...),
				OffPathHash: hashOf(n.right),
				WentLeft:    true,
			})
			p.Steps = append(p.Steps, ProofStep{OffPathHash: hashOf(n.left), WentLeft: false})
			return p
		}
		step := ProofStep{
			Key:   append([]byte(nil), n.key...),
			Value: append([]byte(nil), n.value...),
		}
		if c < 0 {
			step.WentLeft = true
			step.OffPathHash = hashOf(n.right)
			n = n.left
		} else {
			step.WentLeft = false
			step.OffPathHash = hashOf(n.left)
			n = n.right
		}
		p.Steps = append(p.Steps, step)
	}
	return p
}

// VerifyProof checks a lookup proof against a trusted root digest. For a
// positive proof it also confirms the returned value; for a negative proof it
// confirms the search path ends at an absent position and that every step is
// search-order consistent with the queried key.
func VerifyProof(root [32]byte, key []byte, p *Proof) error {
	if p == nil {
		return ErrInvalidProof
	}
	steps := p.Steps
	var computed [32]byte
	if p.Present {
		if len(steps) < 2 {
			return ErrInvalidProof
		}
		term := steps[len(steps)-2]
		sentinel := steps[len(steps)-1]
		if !bytes.Equal(term.Key, key) || !bytes.Equal(term.Value, p.Value) {
			return ErrInvalidProof
		}
		computed = nodeHash(term.Key, term.Value, sentinel.OffPathHash, term.OffPathHash)
		steps = steps[:len(steps)-2]
	} else {
		computed = emptyHash
	}
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		// Search-order consistency: the lookup key must sort to the side
		// that was descended into.
		c := bytes.Compare(key, s.Key)
		if c == 0 || (c < 0) != s.WentLeft {
			return ErrInvalidProof
		}
		if s.WentLeft {
			computed = nodeHash(s.Key, s.Value, computed, s.OffPathHash)
		} else {
			computed = nodeHash(s.Key, s.Value, s.OffPathHash, computed)
		}
	}
	if computed != root {
		return ErrInvalidProof
	}
	return nil
}
