// Package pre implements proxy re-encryption (PRE) over P-256, in the style
// of Blaze–Bleumer–Strauss (BBS98) ElGamal re-encryption.
//
// The paper (Section II-A) cites flyByNight as "a prototype Facebook
// application addressing some security issues of the Facebook platform by
// proxy cryptography": clients store only ciphertext with the provider, and
// the provider — acting as a *proxy* — transforms ciphertext encrypted for
// Alice into ciphertext decryptable by Bob without ever seeing the
// plaintext or the parties' secret keys.
//
// Construction (EC-ElGamal, additive notation over P-256, group order N):
//
//	key pair:    sk = a,  pk = a·G
//	encrypt:     random r and message point M;  c1 = (a·r)·G = r·pk,
//	             c2 = M + r·G;  the payload is sealed under H(M).
//	decrypt:     M = c2 − a⁻¹·c1
//	re-key a→b:  rk = b·a⁻¹ mod N  (computed with both parties' cooperation,
//	             as in BBS98 — the proxy alone cannot create it)
//	re-encrypt:  c1' = rk·c1 = (b·r)·G;  c2 unchanged
//	decrypt@b:   M = c2 − b⁻¹·c1'
//
// The proxy sees only (c1, c2, sealed payload) and rk; none reveal M.
package pre

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"

	"godosn/internal/crypto/prf"
	"godosn/internal/crypto/symmetric"
)

// Errors returned by this package.
var (
	ErrNotOnCurve    = errors.New("pre: point not on curve")
	ErrBadCiphertext = errors.New("pre: malformed ciphertext")
)

var curve = elliptic.P256()

// KeyPair is a PRE key pair.
type KeyPair struct {
	secret *big.Int
	pubX   *big.Int
	pubY   *big.Int
}

// PublicKey is the public half of a KeyPair.
type PublicKey struct {
	x, y *big.Int
}

// NewKeyPair generates a fresh key pair.
func NewKeyPair() (*KeyPair, error) {
	a, err := randScalar()
	if err != nil {
		return nil, err
	}
	x, y := curve.ScalarBaseMult(a.Bytes())
	return &KeyPair{secret: a, pubX: x, pubY: y}, nil
}

// Public returns the public key.
func (kp *KeyPair) Public() *PublicKey {
	return &PublicKey{x: kp.pubX, y: kp.pubY}
}

// Bytes returns the canonical public key encoding.
func (pk *PublicKey) Bytes() []byte {
	return elliptic.Marshal(curve, pk.x, pk.y)
}

// Ciphertext is a PRE ciphertext. Level distinguishes original (encrypted
// directly to the delegator) from re-encrypted (transformed for a delegatee);
// both decrypt the same way with the right secret key.
type Ciphertext struct {
	// C1 is the marshaled point r·pk (or rk·c1 after re-encryption).
	C1 []byte
	// C2 is the marshaled point M + r·G.
	C2 []byte
	// Body is the payload sealed under the key derived from M.
	Body []byte
	// ReEncrypted records whether the proxy transformed this ciphertext.
	ReEncrypted bool
}

// Size returns the approximate serialized size in bytes.
func (c *Ciphertext) Size() int { return len(c.C1) + len(c.C2) + len(c.Body) + 1 }

const keyContext = "godosn/pre/key-v1"

func keyFromPoint(x, y *big.Int) (symmetric.Key, error) {
	h := sha256.New()
	h.Write([]byte("godosn/pre/point-v1"))
	h.Write(elliptic.Marshal(curve, x, y))
	return prf.Derive(h.Sum(nil), keyContext, symmetric.KeySize)
}

// Encrypt encrypts plaintext to the holder of pk (the delegator).
func Encrypt(pk *PublicKey, plaintext []byte) (*Ciphertext, error) {
	r, err := randScalar()
	if err != nil {
		return nil, err
	}
	m, err := randScalar()
	if err != nil {
		return nil, err
	}
	// M = m·G, the random message point carrying the session key.
	mx, my := curve.ScalarBaseMult(m.Bytes())
	// c1 = r·pk = (a·r)·G
	c1x, c1y := curve.ScalarMult(pk.x, pk.y, r.Bytes())
	// c2 = M + r·G
	rgx, rgy := curve.ScalarBaseMult(r.Bytes())
	c2x, c2y := curve.Add(mx, my, rgx, rgy)
	key, err := keyFromPoint(mx, my)
	if err != nil {
		return nil, fmt.Errorf("pre: deriving key: %w", err)
	}
	body, err := symmetric.Seal(key, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("pre: sealing body: %w", err)
	}
	return &Ciphertext{
		C1:   elliptic.Marshal(curve, c1x, c1y),
		C2:   elliptic.Marshal(curve, c2x, c2y),
		Body: body,
	}, nil
}

// Decrypt opens a ciphertext with the matching secret key: the delegator's
// for originals, the delegatee's for re-encrypted ones.
func (kp *KeyPair) Decrypt(ct *Ciphertext) ([]byte, error) {
	c1x, c1y := elliptic.Unmarshal(curve, ct.C1)
	if c1x == nil {
		return nil, ErrNotOnCurve
	}
	c2x, c2y := elliptic.Unmarshal(curve, ct.C2)
	if c2x == nil {
		return nil, ErrNotOnCurve
	}
	n := curve.Params().N
	inv := new(big.Int).ModInverse(kp.secret, n)
	if inv == nil {
		return nil, ErrBadCiphertext
	}
	// r·G = a⁻¹·c1
	rgx, rgy := curve.ScalarMult(c1x, c1y, inv.Bytes())
	// M = c2 − r·G
	mx, my := curve.Add(c2x, c2y, rgx, new(big.Int).Sub(curve.Params().P, rgy))
	key, err := keyFromPoint(mx, my)
	if err != nil {
		return nil, fmt.Errorf("pre: deriving key: %w", err)
	}
	pt, err := symmetric.Open(key, ct.Body, nil)
	if err != nil {
		return nil, fmt.Errorf("pre: opening body: %w", err)
	}
	return pt, nil
}

// ReKey is the proxy's re-encryption key for one delegation direction.
type ReKey struct {
	rk *big.Int
	// From and To label the delegation for bookkeeping.
	From, To string
}

// NewReKey computes rk = b·a⁻¹ mod N for delegation from a to b. As in
// BBS98, producing it requires the cooperation of both key holders; the
// proxy receives only the product, from which neither secret is recoverable.
func NewReKey(from *KeyPair, to *KeyPair, fromLabel, toLabel string) (*ReKey, error) {
	n := curve.Params().N
	inv := new(big.Int).ModInverse(from.secret, n)
	if inv == nil {
		return nil, errors.New("pre: degenerate delegator key")
	}
	rk := new(big.Int).Mul(to.secret, inv)
	rk.Mod(rk, n)
	return &ReKey{rk: rk, From: fromLabel, To: toLabel}, nil
}

// ReEncrypt transforms a delegator ciphertext into a delegatee ciphertext.
// The proxy learns nothing about the plaintext.
func ReEncrypt(rk *ReKey, ct *Ciphertext) (*Ciphertext, error) {
	if ct.ReEncrypted {
		// BBS98 is single-hop: re-encrypting twice would require rk
		// composition, which this deployment does not delegate.
		return nil, errors.New("pre: ciphertext already re-encrypted (single-hop scheme)")
	}
	c1x, c1y := elliptic.Unmarshal(curve, ct.C1)
	if c1x == nil {
		return nil, ErrNotOnCurve
	}
	nx, ny := curve.ScalarMult(c1x, c1y, rk.rk.Bytes())
	return &Ciphertext{
		C1:          elliptic.Marshal(curve, nx, ny),
		C2:          append([]byte(nil), ct.C2...),
		Body:        append([]byte(nil), ct.Body...),
		ReEncrypted: true,
	}, nil
}

func randScalar() (*big.Int, error) {
	n := curve.Params().N
	for {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, fmt.Errorf("pre: sampling scalar: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}
