package pre

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	alice, err := NewKeyPair()
	if err != nil {
		t.Fatalf("NewKeyPair: %v", err)
	}
	for _, pt := range [][]byte{{}, []byte("x"), bytes.Repeat([]byte("m"), 5000)} {
		ct, err := Encrypt(alice.Public(), pt)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		got, err := alice.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch for %d bytes", len(pt))
		}
	}
}

func TestReEncryptionDelegates(t *testing.T) {
	alice, _ := NewKeyPair()
	bob, _ := NewKeyPair()
	ct, err := Encrypt(alice.Public(), []byte("for my friends via the provider"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// Bob cannot read the original.
	if _, err := bob.Decrypt(ct); err == nil {
		t.Fatal("bob decrypted alice's original ciphertext")
	}
	rk, err := NewReKey(alice, bob, "alice", "bob")
	if err != nil {
		t.Fatalf("NewReKey: %v", err)
	}
	ct2, err := ReEncrypt(rk, ct)
	if err != nil {
		t.Fatalf("ReEncrypt: %v", err)
	}
	got, err := bob.Decrypt(ct2)
	if err != nil {
		t.Fatalf("bob decrypting re-encrypted: %v", err)
	}
	if string(got) != "for my friends via the provider" {
		t.Fatalf("got %q", got)
	}
	// Alice can no longer decrypt the transformed ciphertext...
	if _, err := alice.Decrypt(ct2); err == nil {
		t.Fatal("alice decrypted the re-encrypted ciphertext")
	}
	// ...but her original is untouched.
	if _, err := alice.Decrypt(ct); err != nil {
		t.Fatalf("original broken by re-encryption: %v", err)
	}
}

func TestProxyLearnsNothing(t *testing.T) {
	// The "proxy view" is (ct, rk). Neither decrypts the body: try opening
	// with fresh keys and confirm the sealed body differs from plaintext.
	alice, _ := NewKeyPair()
	bob, _ := NewKeyPair()
	secret := []byte("the plaintext the proxy must not see")
	ct, _ := Encrypt(alice.Public(), secret)
	if bytes.Contains(ct.Body, secret) || bytes.Contains(ct.C1, secret) || bytes.Contains(ct.C2, secret) {
		t.Fatal("plaintext visible in ciphertext")
	}
	rk, _ := NewReKey(alice, bob, "a", "b")
	eve, _ := NewKeyPair()
	ct2, _ := ReEncrypt(rk, ct)
	if _, err := eve.Decrypt(ct2); err == nil {
		t.Fatal("unrelated key decrypted re-encrypted ciphertext")
	}
}

func TestSingleHop(t *testing.T) {
	alice, _ := NewKeyPair()
	bob, _ := NewKeyPair()
	carol, _ := NewKeyPair()
	ct, _ := Encrypt(alice.Public(), []byte("m"))
	rkAB, _ := NewReKey(alice, bob, "a", "b")
	rkBC, _ := NewReKey(bob, carol, "b", "c")
	ct2, err := ReEncrypt(rkAB, ct)
	if err != nil {
		t.Fatalf("ReEncrypt: %v", err)
	}
	if _, err := ReEncrypt(rkBC, ct2); err == nil {
		t.Fatal("second-hop re-encryption accepted")
	}
}

func TestWrongReKeyFails(t *testing.T) {
	alice, _ := NewKeyPair()
	bob, _ := NewKeyPair()
	carol, _ := NewKeyPair()
	ct, _ := Encrypt(alice.Public(), []byte("m"))
	// Re-key for a different delegator: transformation yields garbage that
	// bob cannot open.
	rkWrong, _ := NewReKey(carol, bob, "carol", "bob")
	ct2, err := ReEncrypt(rkWrong, ct)
	if err != nil {
		t.Fatalf("ReEncrypt: %v", err)
	}
	if _, err := bob.Decrypt(ct2); err == nil {
		t.Fatal("wrong-delegator re-encryption decrypted")
	}
}

func TestTamperedCiphertextFails(t *testing.T) {
	alice, _ := NewKeyPair()
	ct, _ := Encrypt(alice.Public(), []byte("m"))
	ct.Body[len(ct.Body)-1] ^= 1
	if _, err := alice.Decrypt(ct); err == nil {
		t.Fatal("tampered body decrypted")
	}
	ct2, _ := Encrypt(alice.Public(), []byte("m"))
	ct2.C1 = []byte("junk")
	if _, err := alice.Decrypt(ct2); err == nil {
		t.Fatal("garbage C1 accepted")
	}
}

func TestCiphertextSizeReported(t *testing.T) {
	alice, _ := NewKeyPair()
	ct, _ := Encrypt(alice.Public(), make([]byte, 100))
	if ct.Size() <= 100 {
		t.Fatalf("Size = %d", ct.Size())
	}
}

func TestQuickDelegationRoundTrip(t *testing.T) {
	alice, _ := NewKeyPair()
	bob, _ := NewKeyPair()
	rk, _ := NewReKey(alice, bob, "a", "b")
	f := func(pt []byte) bool {
		ct, err := Encrypt(alice.Public(), pt)
		if err != nil {
			return false
		}
		ct2, err := ReEncrypt(rk, ct)
		if err != nil {
			return false
		}
		got, err := bob.Decrypt(ct2)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
