// Package zkp implements Schnorr zero-knowledge proofs of knowledge of a
// discrete logarithm over P-256, in both interactive (sigma protocol) and
// non-interactive (Fiat–Shamir) form.
//
// The paper (Section V-B) describes searcher privacy via "Zero Knowledge
// Proof alongside using pseudonyms": a user searches under a pseudonym and
// proves possession of an access credential without revealing anything else.
// In internal/search/zkpauth the credential is a secret scalar x whose public
// image X = g^x is registered with the data owner; this package provides the
// proof that the searcher knows x.
package zkp

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by this package.
var (
	ErrInvalidProof = errors.New("zkp: proof verification failed")
	ErrNotOnCurve   = errors.New("zkp: point not on curve")
)

var curve = elliptic.P256()

// Witness is the prover's secret discrete log.
type Witness struct {
	x *big.Int
}

// Statement is the public image X = g^x being proven about.
type Statement struct {
	X []byte // marshaled curve point
}

// NewWitness samples a fresh witness and its public statement.
func NewWitness() (*Witness, *Statement, error) {
	x, err := randScalar()
	if err != nil {
		return nil, nil, err
	}
	gx, gy := curve.ScalarBaseMult(x.Bytes())
	return &Witness{x: x}, &Statement{X: elliptic.Marshal(curve, gx, gy)}, nil
}

// WitnessFromSeed derives a witness deterministically from seed material,
// letting a user re-derive the same credential from a stored secret.
func WitnessFromSeed(seed []byte) (*Witness, *Statement) {
	h := sha256.Sum256(append([]byte("godosn/zkp/seed-v1"), seed...))
	x := new(big.Int).SetBytes(h[:])
	x.Mod(x, curve.Params().N)
	if x.Sign() == 0 {
		x.SetInt64(1)
	}
	gx, gy := curve.ScalarBaseMult(x.Bytes())
	return &Witness{x: x}, &Statement{X: elliptic.Marshal(curve, gx, gy)}
}

// Proof is a non-interactive Schnorr proof (Fiat–Shamir transform).
type Proof struct {
	// Commitment is the marshaled point A = g^r.
	Commitment []byte
	// Response is s = r + c*x mod N with challenge c = H(context, X, A).
	Response []byte
}

// Prove produces a non-interactive proof of knowledge of the witness for the
// given statement, bound to the supplied context (e.g. a search request
// transcript) to prevent replay across contexts.
func (w *Witness) Prove(stmt *Statement, context []byte) (*Proof, error) {
	r, err := randScalar()
	if err != nil {
		return nil, err
	}
	ax, ay := curve.ScalarBaseMult(r.Bytes())
	a := elliptic.Marshal(curve, ax, ay)
	c := challenge(stmt.X, a, context)
	n := curve.Params().N
	s := new(big.Int).Mul(c, w.x)
	s.Add(s, r)
	s.Mod(s, n)
	return &Proof{Commitment: a, Response: s.Bytes()}, nil
}

// Verify checks a proof against the statement and context: g^s == A * X^c.
func Verify(stmt *Statement, proof *Proof, context []byte) error {
	if stmt == nil || proof == nil {
		return ErrInvalidProof
	}
	xx, xy := elliptic.Unmarshal(curve, stmt.X)
	if xx == nil {
		return ErrNotOnCurve
	}
	ax, ay := elliptic.Unmarshal(curve, proof.Commitment)
	if ax == nil {
		return ErrNotOnCurve
	}
	c := challenge(stmt.X, proof.Commitment, context)
	s := new(big.Int).SetBytes(proof.Response)
	// left = g^s
	lx, ly := curve.ScalarBaseMult(s.Bytes())
	// right = A + c*X (additive notation)
	cxx, cxy := curve.ScalarMult(xx, xy, c.Bytes())
	rx, ry := curve.Add(ax, ay, cxx, cxy)
	if lx.Cmp(rx) != 0 || ly.Cmp(ry) != 0 {
		return ErrInvalidProof
	}
	return nil
}

// Interactive sigma protocol, used by tests and by deployments that want a
// live challenge rather than Fiat–Shamir.

// Commitment is the prover's first message A = g^r plus retained state.
type Commitment struct {
	A []byte
	r *big.Int
}

// Commit starts an interactive proof.
func (w *Witness) Commit() (*Commitment, error) {
	r, err := randScalar()
	if err != nil {
		return nil, err
	}
	ax, ay := curve.ScalarBaseMult(r.Bytes())
	return &Commitment{A: elliptic.Marshal(curve, ax, ay), r: r}, nil
}

// NewChallenge samples a random verifier challenge.
func NewChallenge() (*big.Int, error) {
	return randScalar()
}

// Respond computes the prover's response s = r + c*x mod N.
func (w *Witness) Respond(com *Commitment, c *big.Int) *big.Int {
	n := curve.Params().N
	s := new(big.Int).Mul(c, w.x)
	s.Add(s, com.r)
	return s.Mod(s, n)
}

// VerifyInteractive checks the transcript (A, c, s) against the statement.
func VerifyInteractive(stmt *Statement, a []byte, c, s *big.Int) error {
	xx, xy := elliptic.Unmarshal(curve, stmt.X)
	if xx == nil {
		return ErrNotOnCurve
	}
	ax, ay := elliptic.Unmarshal(curve, a)
	if ax == nil {
		return ErrNotOnCurve
	}
	lx, ly := curve.ScalarBaseMult(s.Bytes())
	cxx, cxy := curve.ScalarMult(xx, xy, c.Bytes())
	rx, ry := curve.Add(ax, ay, cxx, cxy)
	if lx.Cmp(rx) != 0 || ly.Cmp(ry) != 0 {
		return ErrInvalidProof
	}
	return nil
}

func challenge(x, a, context []byte) *big.Int {
	h := sha256.New()
	h.Write([]byte("godosn/zkp/fiat-shamir-v1"))
	h.Write(x)
	h.Write(a)
	h.Write(context)
	c := new(big.Int).SetBytes(h.Sum(nil))
	return c.Mod(c, curve.Params().N)
}

func randScalar() (*big.Int, error) {
	n := curve.Params().N
	for {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, fmt.Errorf("zkp: sampling scalar: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}
