package zkp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestProveVerify(t *testing.T) {
	w, stmt, err := NewWitness()
	if err != nil {
		t.Fatalf("NewWitness: %v", err)
	}
	ctx := []byte("search request 1")
	proof, err := w.Prove(stmt, ctx)
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Verify(stmt, proof, ctx); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongContext(t *testing.T) {
	w, stmt, _ := NewWitness()
	proof, _ := w.Prove(stmt, []byte("ctx-a"))
	if err := Verify(stmt, proof, []byte("ctx-b")); err == nil {
		t.Fatal("proof verified under different context (replayable)")
	}
}

func TestVerifyRejectsWrongStatement(t *testing.T) {
	w, stmt, _ := NewWitness()
	_, other, _ := NewWitness()
	proof, _ := w.Prove(stmt, []byte("ctx"))
	if err := Verify(other, proof, []byte("ctx")); err == nil {
		t.Fatal("proof verified against wrong statement")
	}
}

func TestVerifyRejectsMutatedProof(t *testing.T) {
	w, stmt, _ := NewWitness()
	proof, _ := w.Prove(stmt, []byte("ctx"))
	badResp := append([]byte(nil), proof.Response...)
	badResp[0] ^= 1
	if err := Verify(stmt, &Proof{Commitment: proof.Commitment, Response: badResp}, []byte("ctx")); err == nil {
		t.Fatal("mutated response verified")
	}
	badCom := append([]byte(nil), proof.Commitment...)
	badCom[5] ^= 1
	if err := Verify(stmt, &Proof{Commitment: badCom, Response: proof.Response}, []byte("ctx")); err == nil {
		t.Fatal("mutated commitment verified")
	}
}

func TestVerifyRejectsNil(t *testing.T) {
	_, stmt, _ := NewWitness()
	if err := Verify(stmt, nil, nil); err == nil {
		t.Fatal("nil proof verified")
	}
	if err := Verify(nil, &Proof{}, nil); err == nil {
		t.Fatal("nil statement verified")
	}
}

func TestWitnessFromSeedDeterministic(t *testing.T) {
	w1, s1 := WitnessFromSeed([]byte("seed"))
	w2, s2 := WitnessFromSeed([]byte("seed"))
	if !bytes.Equal(s1.X, s2.X) {
		t.Fatal("same seed gave different statements")
	}
	proof, err := w1.Prove(s2, []byte("ctx"))
	if err != nil {
		t.Fatalf("Prove: %v", err)
	}
	if err := Verify(s1, proof, []byte("ctx")); err != nil {
		t.Fatalf("cross-derived proof failed: %v", err)
	}
	_ = w2
	_, s3 := WitnessFromSeed([]byte("other seed"))
	if bytes.Equal(s1.X, s3.X) {
		t.Fatal("different seeds gave same statement")
	}
}

func TestInteractiveProtocol(t *testing.T) {
	w, stmt, _ := NewWitness()
	com, err := w.Commit()
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	c, err := NewChallenge()
	if err != nil {
		t.Fatalf("NewChallenge: %v", err)
	}
	s := w.Respond(com, c)
	if err := VerifyInteractive(stmt, com.A, c, s); err != nil {
		t.Fatalf("VerifyInteractive: %v", err)
	}
}

func TestInteractiveRejectsWrongWitness(t *testing.T) {
	w, _, _ := NewWitness()
	_, otherStmt, _ := NewWitness()
	com, _ := w.Commit()
	c, _ := NewChallenge()
	s := w.Respond(com, c)
	if err := VerifyInteractive(otherStmt, com.A, c, s); err == nil {
		t.Fatal("interactive proof verified against wrong statement")
	}
}

func TestQuickProofsVerify(t *testing.T) {
	w, stmt, _ := NewWitness()
	f := func(ctx []byte) bool {
		proof, err := w.Prove(stmt, ctx)
		if err != nil {
			return false
		}
		return Verify(stmt, proof, ctx) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
