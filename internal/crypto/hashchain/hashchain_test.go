package hashchain

import (
	"fmt"
	"testing"

	"godosn/internal/crypto/pubkey"
)

func newChain(t *testing.T, author string) (*Chain, pubkey.VerificationKey) {
	t.Helper()
	kp, err := pubkey.NewSigningKeyPair()
	if err != nil {
		t.Fatalf("NewSigningKeyPair: %v", err)
	}
	return New(author, kp), kp.Verification()
}

func TestAppendVerify(t *testing.T) {
	c, vk := newChain(t, "alice")
	for i := 0; i < 20; i++ {
		if _, err := c.Append([]byte(fmt.Sprintf("post %d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if c.Len() != 20 {
		t.Fatalf("Len = %d", c.Len())
	}
	if idx, err := Verify(c.Entries(), vk); err != nil {
		t.Fatalf("Verify failed at %d: %v", idx, err)
	}
}

func TestVerifyEmptyChain(t *testing.T) {
	_, vk := newChain(t, "alice")
	if idx, err := Verify(nil, vk); err != nil || idx != -1 {
		t.Fatalf("empty chain: idx=%d err=%v", idx, err)
	}
}

func TestVerifyDetectsPayloadTamper(t *testing.T) {
	c, vk := newChain(t, "alice")
	for i := 0; i < 5; i++ {
		c.Append([]byte(fmt.Sprintf("post %d", i)))
	}
	entries := c.Entries()
	entries[2].Payload = []byte("FORGED")
	idx, err := Verify(entries, vk)
	if err == nil {
		t.Fatal("tampered payload verified")
	}
	if idx != 2 && idx != 3 {
		t.Fatalf("wrong failure index %d", idx)
	}
}

func TestVerifyDetectsReordering(t *testing.T) {
	c, vk := newChain(t, "alice")
	for i := 0; i < 5; i++ {
		c.Append([]byte(fmt.Sprintf("post %d", i)))
	}
	entries := c.Entries()
	entries[1], entries[2] = entries[2], entries[1]
	if _, err := Verify(entries, vk); err == nil {
		t.Fatal("reordered chain verified")
	}
}

func TestVerifyDetectsDeletion(t *testing.T) {
	c, vk := newChain(t, "alice")
	for i := 0; i < 5; i++ {
		c.Append([]byte(fmt.Sprintf("post %d", i)))
	}
	entries := c.Entries()
	// Drop entry 2: sequence numbers reveal the gap.
	trimmed := append(entries[:2:2], entries[3:]...)
	if _, err := Verify(trimmed, vk); err == nil {
		t.Fatal("chain with deleted entry verified")
	}
	// Truncation of the tail, however, is only detectable via anchors or
	// fork-consistency — prefix remains valid.
	if _, err := Verify(entries[:3], vk); err != nil {
		t.Fatalf("valid prefix rejected: %v", err)
	}
}

func TestVerifyDetectsWrongSigner(t *testing.T) {
	c, _ := newChain(t, "alice")
	_, otherVK := newChain(t, "mallory")
	c.Append([]byte("post"))
	if _, err := Verify(c.Entries(), otherVK); err == nil {
		t.Fatal("chain verified under wrong key")
	}
}

func TestVerifyDetectsAuthorMix(t *testing.T) {
	kp, _ := pubkey.NewSigningKeyPair()
	a := New("alice", kp)
	a.Append([]byte("a0"))
	b := New("bob", kp)
	b.Append([]byte("b0"))
	mixed := []*Entry{a.Entries()[0], b.Entries()[0]}
	mixed[1].Seq = 1
	if _, err := Verify(mixed, kp.Verification()); err == nil {
		t.Fatal("mixed-author chain verified")
	}
}

func TestAnchorsVerify(t *testing.T) {
	alice, _ := newChain(t, "alice")
	bob, _ := newChain(t, "bob")
	alice.Append([]byte("alice post 0"))
	anchor, err := AnchorTo(alice)
	if err != nil {
		t.Fatalf("AnchorTo: %v", err)
	}
	bob.Append([]byte("bob saw alice's post"), anchor)

	resolve := func(author string) []*Entry {
		switch author {
		case "alice":
			return alice.Entries()
		case "bob":
			return bob.Entries()
		}
		return nil
	}
	if err := VerifyAnchors(bob.Entries(), resolve); err != nil {
		t.Fatalf("VerifyAnchors: %v", err)
	}
}

func TestAnchorDetectsRewrite(t *testing.T) {
	alice, _ := newChain(t, "alice")
	bob, _ := newChain(t, "bob")
	alice.Append([]byte("original"))
	anchor, _ := AnchorTo(alice)
	bob.Append([]byte("anchored"), anchor)

	// Alice (or her storage) rewrites history after Bob anchored it.
	kp, _ := pubkey.NewSigningKeyPair()
	rewritten := New("alice", kp)
	rewritten.Append([]byte("REWRITTEN"))

	resolve := func(author string) []*Entry {
		if author == "alice" {
			return rewritten.Entries()
		}
		return bob.Entries()
	}
	if err := VerifyAnchors(bob.Entries(), resolve); err == nil {
		t.Fatal("anchor did not detect rewritten foreign entry")
	}
}

func TestAnchorUnknownTarget(t *testing.T) {
	bob, _ := newChain(t, "bob")
	bob.Append([]byte("x"), Anchor{Author: "ghost", Seq: 5})
	resolve := func(string) []*Entry { return nil }
	if err := VerifyAnchors(bob.Entries(), resolve); err == nil {
		t.Fatal("anchor to unknown entry verified")
	}
}

func TestAnchorToEmptyChain(t *testing.T) {
	empty, _ := newChain(t, "nobody")
	if _, err := AnchorTo(empty); err == nil {
		t.Fatal("anchored to empty chain")
	}
}

func TestHappensBeforeSameChain(t *testing.T) {
	alice, _ := newChain(t, "alice")
	for i := 0; i < 3; i++ {
		alice.Append([]byte(fmt.Sprintf("p%d", i)))
	}
	resolve := func(string) []*Entry { return alice.Entries() }
	if !HappensBefore("alice", 0, "alice", 2, resolve) {
		t.Fatal("0 !< 2 in same chain")
	}
	if HappensBefore("alice", 2, "alice", 0, resolve) {
		t.Fatal("2 < 0 in same chain")
	}
}

func TestHappensBeforeCrossChain(t *testing.T) {
	alice, _ := newChain(t, "alice")
	bob, _ := newChain(t, "bob")
	alice.Append([]byte("a0"))
	anchor, _ := AnchorTo(alice)
	bob.Append([]byte("b0"), anchor)
	bob.Append([]byte("b1"))

	resolve := func(author string) []*Entry {
		if author == "alice" {
			return alice.Entries()
		}
		return bob.Entries()
	}
	if !HappensBefore("alice", 0, "bob", 0, resolve) {
		t.Fatal("anchored entry not ordered before anchoring entry")
	}
	if !HappensBefore("alice", 0, "bob", 1, resolve) {
		t.Fatal("ordering not transitive through prev links")
	}
	if HappensBefore("bob", 1, "alice", 0, resolve) {
		t.Fatal("reverse ordering claimed")
	}
	// No anchor from alice to bob: unprovable.
	if HappensBefore("bob", 0, "alice", 0, resolve) {
		t.Fatal("unprovable ordering claimed")
	}
}

func TestEntriesCopyIsShallow(t *testing.T) {
	c, _ := newChain(t, "alice")
	c.Append([]byte("p"))
	e1 := c.Entries()
	e2 := c.Entries()
	e1[0] = nil
	if e2[0] == nil {
		t.Fatal("Entries slices share backing array")
	}
}
