// Package hashchain implements signed hash chains for historical integrity,
// including cross-timeline entanglement.
//
// The paper (Section IV-B) describes two solutions for data history
// integrity, both implemented here:
//
//  1. "hash chaining alongside digital signature": each published entry is
//     signed and includes the hash of at least one prior post, yielding "a
//     provable partial ordering for his posts".
//  2. "establish a dependency between the timelines of different publishers":
//     a publisher "adds the hashes of prior events from other participants",
//     creating a provable order between different users' messages
//     (FETHR-style entanglement).
package hashchain

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"godosn/internal/crypto/pubkey"
)

// Errors returned by this package.
var (
	ErrBrokenChain    = errors.New("hashchain: chain linkage broken")
	ErrBadSignature   = errors.New("hashchain: entry signature invalid")
	ErrBadSequence    = errors.New("hashchain: sequence numbers not contiguous")
	ErrUnknownAnchor  = errors.New("hashchain: foreign anchor not found")
	ErrEmptyChain     = errors.New("hashchain: empty chain")
	ErrAuthorMismatch = errors.New("hashchain: entry author mismatch")
)

// Anchor references an entry in another publisher's timeline, entangling the
// two histories.
type Anchor struct {
	// Author identifies the foreign publisher.
	Author string
	// Seq is the referenced entry's sequence number.
	Seq uint64
	// Hash is the referenced entry's hash.
	Hash [32]byte
}

// Entry is one signed element of a publisher's timeline.
type Entry struct {
	// Author is the publisher's identity.
	Author string
	// Seq is the zero-based position in the author's chain.
	Seq uint64
	// PrevHash is the hash of the author's previous entry (zero for Seq 0).
	PrevHash [32]byte
	// Anchors reference prior entries of other publishers.
	Anchors []Anchor
	// Payload is the application content (typically an encrypted post).
	Payload []byte
	// Signature is the author's signature over the entry digest.
	Signature []byte
}

// Hash returns the entry's digest, which the next entry links to.
func (e *Entry) Hash() [32]byte {
	return sha256.Sum256(e.digest())
}

// digest is the byte string that is hashed and signed.
func (e *Entry) digest() []byte {
	var buf bytes.Buffer
	buf.WriteString("godosn/hashchain/entry-v1\x00")
	buf.WriteString(e.Author)
	buf.WriteByte(0)
	var seq [8]byte
	binary.BigEndian.PutUint64(seq[:], e.Seq)
	buf.Write(seq[:])
	buf.Write(e.PrevHash[:])
	var count [8]byte
	binary.BigEndian.PutUint64(count[:], uint64(len(e.Anchors)))
	buf.Write(count[:])
	for _, a := range e.Anchors {
		buf.WriteString(a.Author)
		buf.WriteByte(0)
		binary.BigEndian.PutUint64(seq[:], a.Seq)
		buf.Write(seq[:])
		buf.Write(a.Hash[:])
	}
	buf.Write(e.Payload)
	return buf.Bytes()
}

// Chain is one publisher's append-only signed timeline.
type Chain struct {
	author  string
	signer  *pubkey.SigningKeyPair
	entries []*Entry
}

// New creates an empty chain for the author with the given signing key.
func New(author string, signer *pubkey.SigningKeyPair) *Chain {
	return &Chain{author: author, signer: signer}
}

// Author returns the chain's publisher identity.
func (c *Chain) Author() string { return c.author }

// Len returns the number of entries.
func (c *Chain) Len() int { return len(c.entries) }

// Entries returns the chain's entries. The returned slice is a copy; the
// entries themselves are shared and must be treated as immutable.
func (c *Chain) Entries() []*Entry {
	return append([]*Entry(nil), c.entries...)
}

// Head returns the latest entry, or nil for an empty chain.
func (c *Chain) Head() *Entry {
	if len(c.entries) == 0 {
		return nil
	}
	return c.entries[len(c.entries)-1]
}

// Append publishes a new signed entry with the given payload and optional
// anchors into other publishers' timelines.
func (c *Chain) Append(payload []byte, anchors ...Anchor) (*Entry, error) {
	e := &Entry{
		Author:  c.author,
		Seq:     uint64(len(c.entries)),
		Anchors: append([]Anchor(nil), anchors...),
		Payload: append([]byte(nil), payload...),
	}
	if head := c.Head(); head != nil {
		e.PrevHash = head.Hash()
	}
	e.Signature = c.signer.Sign(e.digest())
	c.entries = append(c.entries, e)
	return e, nil
}

// AnchorTo builds an anchor referencing another chain's head.
func AnchorTo(other *Chain) (Anchor, error) {
	head := other.Head()
	if head == nil {
		return Anchor{}, ErrEmptyChain
	}
	return Anchor{Author: other.author, Seq: head.Seq, Hash: head.Hash()}, nil
}

// Verify checks the full chain: signatures, contiguous sequence numbers, and
// hash linkage. It returns the index of the first bad entry on failure.
func Verify(entries []*Entry, vk pubkey.VerificationKey) (int, error) {
	var prev [32]byte
	for i, e := range entries {
		if e.Seq != uint64(i) {
			return i, ErrBadSequence
		}
		if i > 0 && e.PrevHash != prev {
			return i, ErrBrokenChain
		}
		if i > 0 && e.Author != entries[0].Author {
			return i, ErrAuthorMismatch
		}
		if err := pubkey.Verify(vk, e.digest(), e.Signature); err != nil {
			return i, fmt.Errorf("%w: entry %d: %v", ErrBadSignature, i, err)
		}
		prev = e.Hash()
	}
	return -1, nil
}

// VerifyAnchors checks every anchor in entries against the referenced
// publishers' timelines (resolve maps author to that author's entries).
// A satisfied anchor proves the referenced entry existed before the anchoring
// one — the provable cross-publisher ordering of Section IV-B.
func VerifyAnchors(entries []*Entry, resolve func(author string) []*Entry) error {
	for i, e := range entries {
		for _, a := range e.Anchors {
			foreign := resolve(a.Author)
			if a.Seq >= uint64(len(foreign)) {
				return fmt.Errorf("%w: entry %d anchors %s/%d", ErrUnknownAnchor, i, a.Author, a.Seq)
			}
			if foreign[a.Seq].Hash() != a.Hash {
				return fmt.Errorf("%w: entry %d anchor hash mismatch for %s/%d",
					ErrBrokenChain, i, a.Author, a.Seq)
			}
		}
	}
	return nil
}

// HappensBefore reports whether entry (author a, seq i) provably precedes
// (author b, seq j) given the set of verified chains: within one chain by
// sequence number, across chains by following anchors transitively.
func HappensBefore(aAuthor string, aSeq uint64, bAuthor string, bSeq uint64,
	resolve func(author string) []*Entry) bool {
	if aAuthor == bAuthor {
		return aSeq < bSeq
	}
	// BFS backwards from (bAuthor, bSeq) through prev links and anchors.
	type node struct {
		author string
		seq    uint64
	}
	seen := map[node]struct{}{}
	queue := []node{{bAuthor, bSeq}}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if _, ok := seen[n]; ok {
			continue
		}
		seen[n] = struct{}{}
		// Reaching any entry of a's chain at or after aSeq while walking
		// strictly backwards from b proves aSeq precedes b.
		if n.author == aAuthor && n.seq >= aSeq {
			return true
		}
		entries := resolve(n.author)
		if n.seq >= uint64(len(entries)) {
			continue
		}
		e := entries[n.seq]
		if n.seq > 0 {
			queue = append(queue, node{n.author, n.seq - 1})
		}
		for _, anc := range e.Anchors {
			queue = append(queue, node{anc.Author, anc.Seq})
		}
	}
	return false
}
