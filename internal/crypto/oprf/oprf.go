// Package oprf implements an oblivious pseudorandom function protocol
// (2HashDH) over the NIST P-256 curve.
//
// The paper (Section III-F) describes Hummingbird disseminating message keys
// via an OPRF: the receiver learns F_s(x) for its chosen input x while the
// sender, who holds the secret s, learns nothing about x. The construction
// here is the standard two-hash Diffie-Hellman OPRF:
//
//	F_s(x) = H2(x, H1(x)^s)
//
// The receiver blinds H1(x) with a random scalar r, the sender raises the
// blinded point to s, and the receiver unblinds by raising to r^{-1}.
package oprf

import (
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// OutputSize is the size in bytes of an OPRF output.
const OutputSize = sha256.Size

// Errors returned by this package.
var (
	ErrNotOnCurve = errors.New("oprf: point not on curve")
	ErrZeroScalar = errors.New("oprf: zero scalar")
)

var curve = elliptic.P256()

// Secret is the sender-side OPRF key.
type Secret struct {
	s *big.Int
}

// NewSecret samples a fresh OPRF secret.
func NewSecret() (*Secret, error) {
	s, err := randScalar()
	if err != nil {
		return nil, err
	}
	return &Secret{s: s}, nil
}

// point is an elliptic curve point in affine coordinates.
type point struct {
	x, y *big.Int
}

func (p point) marshal() []byte {
	return elliptic.Marshal(curve, p.x, p.y)
}

func unmarshalPoint(data []byte) (point, error) {
	x, y := elliptic.Unmarshal(curve, data)
	if x == nil {
		return point{}, ErrNotOnCurve
	}
	return point{x: x, y: y}, nil
}

// BlindedElement is the receiver's first protocol message.
type BlindedElement []byte

// EvaluatedElement is the sender's reply.
type EvaluatedElement []byte

// BlindState is the receiver's private state kept between Blind and Finalize.
type BlindState struct {
	input []byte
	rInv  *big.Int
}

// Blind hashes input to the curve and blinds it with a fresh scalar.
// It returns the message for the sender and the state needed by Finalize.
func Blind(input []byte) (BlindedElement, *BlindState, error) {
	r, err := randScalar()
	if err != nil {
		return nil, nil, err
	}
	h := hashToCurve(input)
	bx, by := curve.ScalarMult(h.x, h.y, r.Bytes())
	rInv := new(big.Int).ModInverse(r, curve.Params().N)
	if rInv == nil {
		return nil, nil, ErrZeroScalar
	}
	blinded := point{x: bx, y: by}.marshal()
	return blinded, &BlindState{input: append([]byte(nil), input...), rInv: rInv}, nil
}

// Evaluate is the sender step: it raises the blinded element to the secret.
func (s *Secret) Evaluate(blinded BlindedElement) (EvaluatedElement, error) {
	p, err := unmarshalPoint(blinded)
	if err != nil {
		return nil, fmt.Errorf("oprf: evaluate: %w", err)
	}
	ex, ey := curve.ScalarMult(p.x, p.y, s.s.Bytes())
	return point{x: ex, y: ey}.marshal(), nil
}

// Finalize unblinds the sender's reply and computes the OPRF output
// H2(x, H1(x)^s).
func (st *BlindState) Finalize(evaluated EvaluatedElement) ([]byte, error) {
	p, err := unmarshalPoint(evaluated)
	if err != nil {
		return nil, fmt.Errorf("oprf: finalize: %w", err)
	}
	ux, uy := curve.ScalarMult(p.x, p.y, st.rInv.Bytes())
	return finalHash(st.input, point{x: ux, y: uy}), nil
}

// EvaluateDirect computes F_s(x) locally. It is what the sender itself would
// derive, and what an OPRF run by a receiver on the same input yields.
func (s *Secret) EvaluateDirect(input []byte) []byte {
	h := hashToCurve(input)
	ex, ey := curve.ScalarMult(h.x, h.y, s.s.Bytes())
	return finalHash(input, point{x: ex, y: ey})
}

func finalHash(input []byte, p point) []byte {
	h := sha256.New()
	h.Write([]byte("godosn/oprf/2hashdh-v1"))
	h.Write(input)
	h.Write(p.marshal())
	return h.Sum(nil)
}

// hashToCurve maps input to a curve point by try-and-increment on a hashed
// counter. Not constant time, which is acceptable for a research framework:
// the input being hashed is the receiver's own, locally known value.
func hashToCurve(input []byte) point {
	params := curve.Params()
	for counter := uint32(0); ; counter++ {
		h := sha256.New()
		h.Write([]byte("godosn/oprf/h1"))
		h.Write(input)
		h.Write([]byte{byte(counter >> 24), byte(counter >> 16), byte(counter >> 8), byte(counter)})
		xBytes := h.Sum(nil)
		x := new(big.Int).SetBytes(xBytes)
		x.Mod(x, params.P)
		// y^2 = x^3 - 3x + b
		y2 := new(big.Int).Mul(x, x)
		y2.Mul(y2, x)
		threeX := new(big.Int).Lsh(x, 1)
		threeX.Add(threeX, x)
		y2.Sub(y2, threeX)
		y2.Add(y2, params.B)
		y2.Mod(y2, params.P)
		y := new(big.Int).ModSqrt(y2, params.P)
		if y == nil {
			continue
		}
		return point{x: x, y: y}
	}
}

func randScalar() (*big.Int, error) {
	n := curve.Params().N
	for {
		k, err := rand.Int(rand.Reader, n)
		if err != nil {
			return nil, fmt.Errorf("oprf: sampling scalar: %w", err)
		}
		if k.Sign() > 0 {
			return k, nil
		}
	}
}
