package oprf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestProtocolMatchesDirect(t *testing.T) {
	s, err := NewSecret()
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	inputs := [][]byte{[]byte(""), []byte("hashtag"), []byte("#godosn"), bytes.Repeat([]byte("a"), 1000)}
	for _, in := range inputs {
		blinded, st, err := Blind(in)
		if err != nil {
			t.Fatalf("Blind: %v", err)
		}
		evaluated, err := s.Evaluate(blinded)
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		got, err := st.Finalize(evaluated)
		if err != nil {
			t.Fatalf("Finalize: %v", err)
		}
		want := s.EvaluateDirect(in)
		if !bytes.Equal(got, want) {
			t.Fatalf("OPRF output mismatch for input %q", in)
		}
		if len(got) != OutputSize {
			t.Fatalf("output size %d, want %d", len(got), OutputSize)
		}
	}
}

func TestDistinctInputsDistinctOutputs(t *testing.T) {
	s, _ := NewSecret()
	a := s.EvaluateDirect([]byte("x"))
	b := s.EvaluateDirect([]byte("y"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct inputs gave equal outputs")
	}
}

func TestDistinctSecretsDistinctOutputs(t *testing.T) {
	s1, _ := NewSecret()
	s2, _ := NewSecret()
	a := s1.EvaluateDirect([]byte("x"))
	b := s2.EvaluateDirect([]byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct secrets gave equal outputs")
	}
}

func TestBlindingHidesInput(t *testing.T) {
	// Two blindings of the same input must differ (fresh blinding factors),
	// otherwise the sender could link repeated queries.
	b1, _, err := Blind([]byte("same input"))
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	b2, _, err := Blind([]byte("same input"))
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	if bytes.Equal(b1, b2) {
		t.Fatal("blinded elements repeat across runs")
	}
}

func TestEvaluateRejectsGarbage(t *testing.T) {
	s, _ := NewSecret()
	if _, err := s.Evaluate([]byte("not a point")); err == nil {
		t.Fatal("Evaluate accepted garbage")
	}
}

func TestFinalizeRejectsGarbage(t *testing.T) {
	_, st, err := Blind([]byte("in"))
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	if _, err := st.Finalize([]byte("junk")); err == nil {
		t.Fatal("Finalize accepted garbage")
	}
}

func TestQuickProtocolAgreement(t *testing.T) {
	s, _ := NewSecret()
	f := func(input []byte) bool {
		blinded, st, err := Blind(input)
		if err != nil {
			return false
		}
		evaluated, err := s.Evaluate(blinded)
		if err != nil {
			return false
		}
		got, err := st.Finalize(evaluated)
		if err != nil {
			return false
		}
		return bytes.Equal(got, s.EvaluateDirect(input))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
