package prf

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEvalDeterministic(t *testing.T) {
	s, err := NewSecret()
	if err != nil {
		t.Fatalf("NewSecret: %v", err)
	}
	a, err := Eval(s, []byte("input"))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	b, err := Eval(s, []byte("input"))
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("Eval is not deterministic")
	}
	if len(a) != OutputSize {
		t.Fatalf("output size %d, want %d", len(a), OutputSize)
	}
}

func TestEvalDistinctInputs(t *testing.T) {
	s, _ := NewSecret()
	a, _ := Eval(s, []byte("x"))
	b, _ := Eval(s, []byte("y"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct inputs produced equal outputs")
	}
}

func TestEvalDistinctSecrets(t *testing.T) {
	s1, _ := NewSecret()
	s2, _ := NewSecret()
	a, _ := Eval(s1, []byte("x"))
	b, _ := Eval(s2, []byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("distinct secrets produced equal outputs")
	}
}

func TestEvalEmptySecret(t *testing.T) {
	if _, err := Eval(nil, []byte("x")); err == nil {
		t.Fatal("Eval accepted empty secret")
	}
}

func TestDeriveLengths(t *testing.T) {
	seed := []byte("seed material")
	for _, n := range []int{1, 16, 32, 33, 64, 100, 255} {
		out, err := Derive(seed, "ctx", n)
		if err != nil {
			t.Fatalf("Derive(%d): %v", n, err)
		}
		if len(out) != n {
			t.Fatalf("Derive(%d) returned %d bytes", n, len(out))
		}
	}
}

func TestDeriveInvalidLength(t *testing.T) {
	for _, n := range []int{0, -1, 255*OutputSize + 1} {
		if _, err := Derive([]byte("s"), "ctx", n); err == nil {
			t.Fatalf("Derive accepted length %d", n)
		}
	}
}

func TestDeriveContextSeparation(t *testing.T) {
	seed := []byte("seed")
	a, _ := Derive(seed, "ctx-a", 32)
	b, _ := Derive(seed, "ctx-b", 32)
	if bytes.Equal(a, b) {
		t.Fatal("different contexts produced equal derivations")
	}
}

func TestDerivePrefixConsistency(t *testing.T) {
	// Same seed+context with different lengths must agree on the shared
	// prefix (HKDF-Expand property) so callers can extend derivations.
	seed := []byte("seed")
	short, _ := Derive(seed, "ctx", 16)
	long, _ := Derive(seed, "ctx", 48)
	if !bytes.Equal(short, long[:16]) {
		t.Fatal("derivation prefix not consistent across lengths")
	}
}

func TestQuickEvalInjectivityOnInputs(t *testing.T) {
	s, _ := NewSecret()
	f := func(x, y []byte) bool {
		if bytes.Equal(x, y) {
			return true
		}
		a, err1 := Eval(s, x)
		b, err2 := Eval(s, y)
		return err1 == nil && err2 == nil && !bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
