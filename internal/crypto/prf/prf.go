// Package prf implements a pseudorandom function family based on HMAC-SHA256,
// plus an HKDF-style key derivation helper.
//
// The paper (Section III-F) describes Hummingbird deriving per-message
// symmetric keys by applying "a combination of a pseudo random function (PRF)
// and a hash function on a particular part of message (hashtag)". This
// package provides that PRF; the oblivious evaluation protocol lives in
// internal/crypto/oprf.
package prf

import (
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
)

// SecretSize is the size in bytes of a PRF secret.
const SecretSize = 32

// OutputSize is the size in bytes of a PRF output.
const OutputSize = sha256.Size

// ErrEmptySecret indicates evaluation with an empty secret.
var ErrEmptySecret = errors.New("prf: empty secret")

// Secret is the key selecting one function from the PRF family.
type Secret []byte

// NewSecret generates a fresh random PRF secret.
func NewSecret() (Secret, error) {
	s := make([]byte, SecretSize)
	if _, err := io.ReadFull(rand.Reader, s); err != nil {
		return nil, fmt.Errorf("prf: generating secret: %w", err)
	}
	return s, nil
}

// Eval computes F_s(x) = HMAC-SHA256(s, x).
func Eval(s Secret, x []byte) ([]byte, error) {
	if len(s) == 0 {
		return nil, ErrEmptySecret
	}
	mac := hmac.New(sha256.New, s)
	mac.Write(x)
	return mac.Sum(nil), nil
}

// Derive expands a seed into length bytes of key material bound to the given
// context label, using the HKDF-Expand construction over HMAC-SHA256.
func Derive(seed []byte, context string, length int) ([]byte, error) {
	if len(seed) == 0 {
		return nil, ErrEmptySecret
	}
	if length <= 0 || length > 255*OutputSize {
		return nil, fmt.Errorf("prf: invalid derive length %d", length)
	}
	var (
		out  = make([]byte, 0, length)
		prev []byte
	)
	for counter := byte(1); len(out) < length; counter++ {
		mac := hmac.New(sha256.New, seed)
		mac.Write(prev)
		mac.Write([]byte(context))
		mac.Write([]byte{counter})
		prev = mac.Sum(nil)
		out = append(out, prev...)
	}
	return out[:length], nil
}
