package symmetric

import "crypto/cipher"

// Sealer is the pooled hot-path variant of Seal/Open: the AES key schedule
// and GCM tables are computed once at construction and reused for every
// operation. The one-shot functions rebuild both per call — profiling the
// bench driver under -pprof shows that construction dominating the seal
// path's allocations (the AEAD costs more to build than a small post costs
// to encrypt). A long-lived group key should therefore be wrapped in a
// Sealer and the one-shot functions reserved for keys used once.
//
// Sealer is stateless after construction (the underlying cipher.AEAD is
// safe for concurrent use), so one instance can serve all goroutines.
type Sealer struct {
	aead cipher.AEAD
}

// NewSealer precomputes the AEAD for key. The key bytes are captured by the
// cipher's key schedule, not referenced — later mutation of the caller's
// slice does not affect the Sealer.
func NewSealer(key Key) (*Sealer, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return &Sealer{aead: aead}, nil
}

// Seal is Seal with the precomputed AEAD.
func (s *Sealer) Seal(plaintext, associatedData []byte) ([]byte, error) {
	return s.SealTo(nil, plaintext, associatedData)
}

// SealTo is SealTo with the precomputed AEAD: zero allocations when dst has
// SealedLen(len(plaintext)) spare capacity.
func (s *Sealer) SealTo(dst, plaintext, associatedData []byte) ([]byte, error) {
	return sealTo(s.aead, dst, plaintext, associatedData)
}

// Open is Open with the precomputed AEAD.
func (s *Sealer) Open(ciphertext, associatedData []byte) ([]byte, error) {
	return s.OpenTo(nil, ciphertext, associatedData)
}

// OpenTo is OpenTo with the precomputed AEAD: zero allocations when dst has
// enough spare capacity for the plaintext.
func (s *Sealer) OpenTo(dst, ciphertext, associatedData []byte) ([]byte, error) {
	return openTo(s.aead, dst, ciphertext, associatedData)
}
