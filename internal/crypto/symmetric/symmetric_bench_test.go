package symmetric

// Microbenchmarks for the symmetric hot path. BenchmarkSealTo/reuse and
// BenchmarkOpenTo/reuse show the allocation delta bought by caller-provided
// destination buffers versus the allocating Seal/Open.

import "testing"

func benchKey(b *testing.B) Key {
	b.Helper()
	k, err := NewKey()
	if err != nil {
		b.Fatal(err)
	}
	return k
}

var benchAD = []byte("bench/ad")

func benchPlaintext() []byte {
	pt := make([]byte, 1024)
	for i := range pt {
		pt[i] = byte(i)
	}
	return pt
}

func BenchmarkSeal(b *testing.B) {
	key, pt := benchKey(b), benchPlaintext()
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Seal(key, pt, benchAD); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealTo(b *testing.B) {
	key, pt := benchKey(b), benchPlaintext()
	buf := make([]byte, 0, SealedLen(len(pt)))
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := SealTo(buf[:0], key, pt, benchAD)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

func BenchmarkOpen(b *testing.B) {
	key, pt := benchKey(b), benchPlaintext()
	ct, err := Seal(key, pt, benchAD)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Open(key, ct, benchAD); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenTo(b *testing.B) {
	key, pt := benchKey(b), benchPlaintext()
	ct, err := Seal(key, pt, benchAD)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, len(pt))
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := OpenTo(buf[:0], key, ct, benchAD)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
