// Package symmetric provides authenticated symmetric encryption (AES-GCM)
// with explicit key management primitives.
//
// It implements the "symmetric key encryption" row of Table I of the paper:
// a single shared secret is used for both encryption and decryption, which is
// fast but complicates revocation — revoking a member requires generating a
// fresh key and re-encrypting all data that must stay hidden from the revoked
// member. Key rotation helpers for that workflow live here; the group
// management logic built on top lives in internal/social/privacy.
package symmetric

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// KeySize is the size in bytes of symmetric keys (AES-256).
const KeySize = 32

// nonceSize is the standard GCM nonce size in bytes.
const nonceSize = 12

// ErrInvalidKeySize indicates a key of the wrong length was supplied.
var ErrInvalidKeySize = errors.New("symmetric: invalid key size")

// ErrCiphertextTooShort indicates a ciphertext shorter than a nonce.
var ErrCiphertextTooShort = errors.New("symmetric: ciphertext too short")

// Key is an AES-256 key.
type Key []byte

// NewKey generates a fresh random key using crypto/rand.
func NewKey() (Key, error) {
	k := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, k); err != nil {
		return nil, fmt.Errorf("symmetric: generating key: %w", err)
	}
	return k, nil
}

// MustNewKey generates a fresh key and panics on failure. It is intended for
// tests and examples where entropy failure is fatal anyway.
func MustNewKey() Key {
	k, err := NewKey()
	if err != nil {
		panic(err)
	}
	return k
}

// Clone returns an independent copy of the key.
func (k Key) Clone() Key {
	out := make(Key, len(k))
	copy(out, k)
	return out
}

// Valid reports whether the key has the correct length.
func (k Key) Valid() bool { return len(k) == KeySize }

// Seal encrypts and authenticates plaintext under key, binding the optional
// associated data. The returned ciphertext embeds a random nonce prefix.
func Seal(key Key, plaintext, associatedData []byte) ([]byte, error) {
	return SealTo(nil, key, plaintext, associatedData)
}

// SealTo is Seal appending into dst, for hot paths that reuse a buffer or
// build a larger message around the ciphertext: when dst has
// SealedLen(len(plaintext)) spare capacity, SealTo performs no allocation.
// It returns the extended slice (which may have been reallocated, like
// append).
func SealTo(dst []byte, key Key, plaintext, associatedData []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return sealTo(aead, dst, plaintext, associatedData)
}

// sealTo is the AEAD-level seal body shared by the one-shot path and Sealer.
func sealTo(aead cipher.AEAD, dst, plaintext, associatedData []byte) ([]byte, error) {
	need := nonceSize + len(plaintext) + aead.Overhead()
	if free := cap(dst) - len(dst); free < need {
		grown := make([]byte, len(dst), len(dst)+need)
		copy(grown, dst)
		dst = grown
	}
	// Write the nonce directly into the output to avoid a separate buffer.
	nonce := dst[len(dst) : len(dst)+nonceSize]
	if _, err := io.ReadFull(rand.Reader, nonce); err != nil {
		return nil, fmt.Errorf("symmetric: generating nonce: %w", err)
	}
	dst = dst[:len(dst)+nonceSize]
	return aead.Seal(dst, nonce, plaintext, associatedData), nil
}

// SealedLen returns the ciphertext length Seal produces for a plaintext of
// the given length, for sizing SealTo destination buffers.
func SealedLen(plaintextLen int) int { return plaintextLen + Overhead() }

// Open authenticates and decrypts a ciphertext produced by Seal.
func Open(key Key, ciphertext, associatedData []byte) ([]byte, error) {
	return OpenTo(nil, key, ciphertext, associatedData)
}

// OpenTo is Open appending the plaintext into dst (allocation-free when dst
// has enough spare capacity). It returns the extended slice.
func OpenTo(dst []byte, key Key, ciphertext, associatedData []byte) ([]byte, error) {
	aead, err := newAEAD(key)
	if err != nil {
		return nil, err
	}
	return openTo(aead, dst, ciphertext, associatedData)
}

// openTo is the AEAD-level open body shared by the one-shot path and Sealer.
func openTo(aead cipher.AEAD, dst, ciphertext, associatedData []byte) ([]byte, error) {
	if len(ciphertext) < nonceSize {
		return nil, ErrCiphertextTooShort
	}
	nonce, body := ciphertext[:nonceSize], ciphertext[nonceSize:]
	plaintext, err := aead.Open(dst, nonce, body, associatedData)
	if err != nil {
		return nil, fmt.Errorf("symmetric: opening ciphertext: %w", err)
	}
	return plaintext, nil
}

// Overhead is the total ciphertext expansion of Seal in bytes.
func Overhead() int { return nonceSize + 16 }

func newAEAD(key Key) (cipher.AEAD, error) {
	if !key.Valid() {
		return nil, ErrInvalidKeySize
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("symmetric: creating cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("symmetric: creating GCM: %w", err)
	}
	return aead, nil
}
