package symmetric

import (
	"bytes"
	"testing"
)

// A Sealer's output must interoperate with the one-shot functions both
// ways: same key, same wire format.
func TestSealerInteroperatesWithOneShot(t *testing.T) {
	key := MustNewKey()
	s, err := NewSealer(key)
	if err != nil {
		t.Fatal(err)
	}
	pt, ad := []byte("the payload"), []byte("ad")

	ct, err := s.Seal(pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Open(key, ct, ad)
	if err != nil {
		t.Fatalf("one-shot Open of Sealer output: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round-trip = %q, want %q", got, pt)
	}

	ct, err = Seal(key, pt, ad)
	if err != nil {
		t.Fatal(err)
	}
	got, err = s.Open(ct, ad)
	if err != nil {
		t.Fatalf("Sealer Open of one-shot output: %v", err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatalf("round-trip = %q, want %q", got, pt)
	}
}

// Sealer enforces the same failure modes as the one-shot path.
func TestSealerRejects(t *testing.T) {
	if _, err := NewSealer(Key("short")); err == nil {
		t.Fatal("NewSealer accepted a bad key")
	}
	s, err := NewSealer(MustNewKey())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open([]byte("tiny"), nil); err == nil {
		t.Fatal("Open accepted a ciphertext shorter than a nonce")
	}
	ct, err := s.Seal([]byte("x"), []byte("ad"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open(ct, []byte("other-ad")); err == nil {
		t.Fatal("Open accepted a mismatched associated-data binding")
	}
}

// The pooled path: AEAD construction amortized across operations.
func BenchmarkSealerSeal(b *testing.B) {
	s, err := NewSealer(benchKey(b))
	if err != nil {
		b.Fatal(err)
	}
	pt := benchPlaintext()
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(pt, benchAD); err != nil {
			b.Fatal(err)
		}
	}
}

// Pooled AEAD plus a reused destination buffer: the zero-allocation seal.
func BenchmarkSealerSealTo(b *testing.B) {
	s, err := NewSealer(benchKey(b))
	if err != nil {
		b.Fatal(err)
	}
	pt := benchPlaintext()
	buf := make([]byte, 0, SealedLen(len(pt)))
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.SealTo(buf[:0], pt, benchAD)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

func BenchmarkSealerOpen(b *testing.B) {
	s, err := NewSealer(benchKey(b))
	if err != nil {
		b.Fatal(err)
	}
	pt := benchPlaintext()
	ct, err := s.Seal(pt, benchAD)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Open(ct, benchAD); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSealerOpenTo(b *testing.B) {
	s, err := NewSealer(benchKey(b))
	if err != nil {
		b.Fatal(err)
	}
	pt := benchPlaintext()
	ct, err := s.Seal(pt, benchAD)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, len(pt))
	b.SetBytes(int64(len(pt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := s.OpenTo(buf[:0], ct, benchAD)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}
