package symmetric

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestSealOpenRoundTrip(t *testing.T) {
	key := MustNewKey()
	tests := []struct {
		name string
		pt   []byte
		ad   []byte
	}{
		{name: "empty", pt: []byte{}, ad: nil},
		{name: "short", pt: []byte("hello"), ad: nil},
		{name: "with ad", pt: []byte("hello"), ad: []byte("context")},
		{name: "binary", pt: []byte{0, 1, 2, 255, 254}, ad: []byte{9}},
		{name: "large", pt: bytes.Repeat([]byte("x"), 1<<16), ad: nil},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ct, err := Seal(key, tt.pt, tt.ad)
			if err != nil {
				t.Fatalf("Seal: %v", err)
			}
			got, err := Open(key, ct, tt.ad)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if !bytes.Equal(got, tt.pt) {
				t.Fatalf("round trip mismatch: got %q want %q", got, tt.pt)
			}
		})
	}
}

func TestOpenRejectsWrongKey(t *testing.T) {
	k1, k2 := MustNewKey(), MustNewKey()
	ct, err := Seal(k1, []byte("secret"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := Open(k2, ct, nil); err == nil {
		t.Fatal("Open with wrong key succeeded")
	}
}

func TestOpenRejectsWrongAD(t *testing.T) {
	key := MustNewKey()
	ct, err := Seal(key, []byte("secret"), []byte("ad1"))
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	if _, err := Open(key, ct, []byte("ad2")); err == nil {
		t.Fatal("Open with wrong associated data succeeded")
	}
}

func TestOpenRejectsTampering(t *testing.T) {
	key := MustNewKey()
	ct, err := Seal(key, []byte("attack at dawn"), nil)
	if err != nil {
		t.Fatalf("Seal: %v", err)
	}
	for i := 0; i < len(ct); i += 7 {
		mutated := append([]byte(nil), ct...)
		mutated[i] ^= 0x01
		if _, err := Open(key, mutated, nil); err == nil {
			t.Fatalf("Open accepted ciphertext tampered at byte %d", i)
		}
	}
}

func TestOpenRejectsShortCiphertext(t *testing.T) {
	key := MustNewKey()
	if _, err := Open(key, []byte{1, 2, 3}, nil); err == nil {
		t.Fatal("Open accepted truncated ciphertext")
	}
}

func TestInvalidKeySizes(t *testing.T) {
	for _, n := range []int{0, 1, 16, 31, 33, 64} {
		bad := make(Key, n)
		if _, err := Seal(bad, []byte("x"), nil); err == nil {
			t.Fatalf("Seal accepted %d-byte key", n)
		}
		if _, err := Open(bad, make([]byte, 64), nil); err == nil {
			t.Fatalf("Open accepted %d-byte key", n)
		}
	}
}

func TestKeyClone(t *testing.T) {
	k := MustNewKey()
	c := k.Clone()
	if !bytes.Equal(k, c) {
		t.Fatal("clone differs from original")
	}
	c[0] ^= 0xFF
	if bytes.Equal(k, c) {
		t.Fatal("mutating clone affected original")
	}
}

func TestCiphertextOverheadMatches(t *testing.T) {
	key := MustNewKey()
	for _, n := range []int{0, 1, 100, 4096} {
		ct, err := Seal(key, make([]byte, n), nil)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		if got := len(ct) - n; got != Overhead() {
			t.Fatalf("overhead for %d-byte plaintext: got %d want %d", n, got, Overhead())
		}
	}
}

func TestNonceUniqueness(t *testing.T) {
	key := MustNewKey()
	seen := make(map[string]bool)
	for i := 0; i < 256; i++ {
		ct, err := Seal(key, []byte("same message"), nil)
		if err != nil {
			t.Fatalf("Seal: %v", err)
		}
		nonce := string(ct[:12])
		if seen[nonce] {
			t.Fatal("nonce repeated across Seal calls")
		}
		seen[nonce] = true
	}
}

func TestQuickRoundTrip(t *testing.T) {
	key := MustNewKey()
	f := func(pt, ad []byte) bool {
		ct, err := Seal(key, pt, ad)
		if err != nil {
			return false
		}
		got, err := Open(key, ct, ad)
		if err != nil {
			return false
		}
		return bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
