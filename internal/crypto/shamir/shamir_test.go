package shamir

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSplitCombineRoundTrip(t *testing.T) {
	tests := []struct {
		name string
		k, n int
	}{
		{"1 of 1", 1, 1},
		{"1 of 5", 1, 5},
		{"2 of 3", 2, 3},
		{"3 of 3", 3, 3},
		{"5 of 10", 5, 10},
		{"10 of 10", 10, 10},
	}
	secret := big.NewInt(123456789)
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			shares, err := Split(secret, tt.k, tt.n)
			if err != nil {
				t.Fatalf("Split: %v", err)
			}
			if len(shares) != tt.n {
				t.Fatalf("got %d shares, want %d", len(shares), tt.n)
			}
			got, err := Combine(shares[:tt.k])
			if err != nil {
				t.Fatalf("Combine: %v", err)
			}
			if got.Cmp(secret) != 0 {
				t.Fatalf("reconstructed %v, want %v", got, secret)
			}
		})
	}
}

func TestCombineAnySubset(t *testing.T) {
	secret := big.NewInt(42)
	shares, err := Split(secret, 3, 6)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(6)
		subset := []Share{shares[perm[0]], shares[perm[1]], shares[perm[2]]}
		got, err := Combine(subset)
		if err != nil {
			t.Fatalf("Combine: %v", err)
		}
		if got.Cmp(secret) != 0 {
			t.Fatalf("subset %v reconstructed %v, want %v", perm[:3], got, secret)
		}
	}
}

func TestTooFewSharesYieldWrongSecret(t *testing.T) {
	secret := big.NewInt(7777)
	shares, err := Split(secret, 3, 5)
	if err != nil {
		t.Fatalf("Split: %v", err)
	}
	// With fewer than k shares the interpolation yields an unrelated value
	// with overwhelming probability.
	got, err := Combine(shares[:2])
	if err != nil {
		t.Fatalf("Combine: %v", err)
	}
	if got.Cmp(secret) == 0 {
		t.Fatal("2 shares of a 3-threshold sharing reconstructed the secret")
	}
}

func TestSplitValidation(t *testing.T) {
	secret := big.NewInt(1)
	if _, err := Split(secret, 0, 3); err == nil {
		t.Fatal("accepted k=0")
	}
	if _, err := Split(secret, 4, 3); err == nil {
		t.Fatal("accepted k>n")
	}
	if _, err := Split(big.NewInt(-1), 1, 1); err == nil {
		t.Fatal("accepted negative secret")
	}
	if _, err := Split(Prime(), 1, 1); err == nil {
		t.Fatal("accepted secret >= prime")
	}
}

func TestCombineValidation(t *testing.T) {
	if _, err := Combine(nil); err == nil {
		t.Fatal("accepted empty share list")
	}
	s := Share{X: 1, Y: big.NewInt(5)}
	if _, err := Combine([]Share{s, s.Clone()}); err == nil {
		t.Fatal("accepted duplicate X coordinates")
	}
	if _, err := Combine([]Share{{X: 0, Y: big.NewInt(5)}}); err == nil {
		t.Fatal("accepted zero X coordinate")
	}
}

func TestShareClone(t *testing.T) {
	s := Share{X: 3, Y: big.NewInt(99)}
	c := s.Clone()
	c.Y.Add(c.Y, big.NewInt(1))
	if s.Y.Cmp(big.NewInt(99)) != 0 {
		t.Fatal("mutating clone affected original")
	}
}

func TestPrimeIsPrime(t *testing.T) {
	if !Prime().ProbablyPrime(64) {
		t.Fatal("field modulus is not prime")
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(raw uint64, kSeed, nSeed uint8) bool {
		n := int(nSeed%10) + 1
		k := int(kSeed)%n + 1
		secret := new(big.Int).SetUint64(raw)
		shares, err := Split(secret, k, n)
		if err != nil {
			return false
		}
		got, err := Combine(shares[:k])
		if err != nil {
			return false
		}
		return got.Cmp(secret) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
