// Package shamir implements Shamir secret sharing over the prime field
// GF(p) with p = 2^256 - 189, a 256-bit prime.
//
// It is the threshold substrate for the attribute-based encryption scheme in
// internal/crypto/abe: an ABE access structure is compiled to a tree of
// threshold gates, and each gate splits its secret among its children with
// this package.
package shamir

import (
	"crypto/rand"
	"errors"
	"fmt"
	"math/big"
)

// prime is 2^256 - 189, the largest 256-bit prime of the form 2^256 - c.
var prime, _ = new(big.Int).SetString(
	"115792089237316195423570985008687907853269984665640564039457584007913129639747", 10)

// Prime returns the field modulus used by this package.
func Prime() *big.Int { return new(big.Int).Set(prime) }

// Share is one point (X, Y) on the sharing polynomial.
type Share struct {
	// X is the evaluation point; it must be non-zero and unique per share.
	X uint32
	// Y is the polynomial value at X, reduced mod Prime().
	Y *big.Int
}

// Clone returns an independent copy of the share.
func (s Share) Clone() Share {
	return Share{X: s.X, Y: new(big.Int).Set(s.Y)}
}

// Errors returned by this package.
var (
	ErrBadThreshold   = errors.New("shamir: threshold must satisfy 1 <= k <= n")
	ErrSecretRange    = errors.New("shamir: secret out of field range")
	ErrTooFewShares   = errors.New("shamir: not enough shares")
	ErrDuplicateShare = errors.New("shamir: duplicate share X coordinate")
	ErrZeroX          = errors.New("shamir: share X coordinate must be non-zero")
)

// Split shares secret into n shares such that any k reconstruct it.
// The secret must lie in [0, Prime()).
func Split(secret *big.Int, k, n int) ([]Share, error) {
	if k < 1 || n < k {
		return nil, ErrBadThreshold
	}
	if secret.Sign() < 0 || secret.Cmp(prime) >= 0 {
		return nil, ErrSecretRange
	}
	// Random polynomial of degree k-1 with constant term = secret.
	coeffs := make([]*big.Int, k)
	coeffs[0] = new(big.Int).Set(secret)
	for i := 1; i < k; i++ {
		c, err := rand.Int(rand.Reader, prime)
		if err != nil {
			return nil, fmt.Errorf("shamir: sampling coefficient: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint32(i + 1)
		shares[i] = Share{X: x, Y: evalPoly(coeffs, x)}
	}
	return shares, nil
}

// Combine reconstructs the secret from at least k shares produced by Split
// with threshold k. Passing fewer shares than the original threshold yields
// an unrelated field element, not an error: secrecy, not integrity, is the
// contract here.
func Combine(shares []Share) (*big.Int, error) {
	if len(shares) == 0 {
		return nil, ErrTooFewShares
	}
	seen := make(map[uint32]struct{}, len(shares))
	for _, s := range shares {
		if s.X == 0 {
			return nil, ErrZeroX
		}
		if _, dup := seen[s.X]; dup {
			return nil, ErrDuplicateShare
		}
		seen[s.X] = struct{}{}
	}
	// Lagrange interpolation at x = 0.
	secret := new(big.Int)
	for i, si := range shares {
		num := big.NewInt(1)
		den := big.NewInt(1)
		xi := big.NewInt(int64(si.X))
		for j, sj := range shares {
			if i == j {
				continue
			}
			xj := big.NewInt(int64(sj.X))
			// num *= -xj ; den *= (xi - xj)
			num.Mul(num, new(big.Int).Neg(xj))
			num.Mod(num, prime)
			d := new(big.Int).Sub(xi, xj)
			den.Mul(den, d)
			den.Mod(den, prime)
		}
		denInv := new(big.Int).ModInverse(den, prime)
		if denInv == nil {
			return nil, ErrDuplicateShare
		}
		term := new(big.Int).Mul(si.Y, num)
		term.Mul(term, denInv)
		secret.Add(secret, term)
		secret.Mod(secret, prime)
	}
	return secret, nil
}

func evalPoly(coeffs []*big.Int, x uint32) *big.Int {
	// Horner's rule mod prime.
	xv := big.NewInt(int64(x))
	y := new(big.Int)
	for i := len(coeffs) - 1; i >= 0; i-- {
		y.Mul(y, xv)
		y.Add(y, coeffs[i])
		y.Mod(y, prime)
	}
	return y
}
