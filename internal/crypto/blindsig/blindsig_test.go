package blindsig

import (
	"bytes"
	"math/big"
	"testing"
)

// testSigner is shared across tests; RSA keygen is expensive.
var testSigner = mustSigner()

func mustSigner() *Signer {
	s, err := NewSigner(1024)
	if err != nil {
		panic(err)
	}
	return s
}

func TestBlindSignVerify(t *testing.T) {
	pub := testSigner.Public()
	msg := []byte("#party-hashtag")
	blinded, st, err := pub.Blind(msg)
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	sig := st.Unblind(testSigner.SignBlinded(blinded))
	if err := pub.Verify(msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBlindSignatureEqualsPlainSignature(t *testing.T) {
	// Unblinding must yield exactly the deterministic RSA signature, which
	// is what makes the signature usable as a message key by all holders.
	pub := testSigner.Public()
	msg := []byte("keyword")
	blinded, st, err := pub.Blind(msg)
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	viaBlind := st.Unblind(testSigner.SignBlinded(blinded))
	direct := testSigner.Sign(msg)
	if viaBlind.Cmp(direct) != 0 {
		t.Fatal("blind-channel signature differs from direct signature")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	sig := testSigner.Sign([]byte("right"))
	if err := testSigner.Public().Verify([]byte("wrong"), sig); err == nil {
		t.Fatal("verified signature on different message")
	}
}

func TestVerifyRejectsMutatedSignature(t *testing.T) {
	sig := testSigner.Sign([]byte("msg"))
	bad := new(big.Int).Add(sig, big.NewInt(1))
	if err := testSigner.Public().Verify([]byte("msg"), bad); err == nil {
		t.Fatal("verified mutated signature")
	}
}

func TestBlindedElementUnlinkable(t *testing.T) {
	pub := testSigner.Public()
	b1, _, err := pub.Blind([]byte("same"))
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	b2, _, err := pub.Blind([]byte("same"))
	if err != nil {
		t.Fatalf("Blind: %v", err)
	}
	if b1.Cmp(b2) == 0 {
		t.Fatal("blinding is deterministic; signer could link requests")
	}
}

func TestSignatureKeyDeterministic(t *testing.T) {
	sig := testSigner.Sign([]byte("kw"))
	k1 := SignatureKey(sig)
	k2 := SignatureKey(new(big.Int).Set(sig))
	if !bytes.Equal(k1, k2) {
		t.Fatal("SignatureKey not deterministic")
	}
	if len(k1) != 32 {
		t.Fatalf("key length %d, want 32", len(k1))
	}
	other := SignatureKey(testSigner.Sign([]byte("kw2")))
	if bytes.Equal(k1, other) {
		t.Fatal("different signatures gave same key")
	}
}

func TestNewSignerRejectsSmallKeys(t *testing.T) {
	if _, err := NewSigner(512); err == nil {
		t.Fatal("accepted 512-bit key")
	}
}

func TestCrossSignerVerifyFails(t *testing.T) {
	other, err := NewSigner(1024)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	sig := testSigner.Sign([]byte("m"))
	if err := other.Public().Verify([]byte("m"), sig); err == nil {
		t.Fatal("verified against wrong signer")
	}
}
