// Package blindsig implements Chaum blind RSA signatures.
//
// The paper (Section V-A) uses blind signatures for content privacy in
// secure social search: a subscriber obtains the publisher's signature on a
// keyword (hashtag) without revealing the keyword, and that signature then
// doubles as the decryption key for matching messages (the Hummingbird
// approach). The classic RSA construction implemented here:
//
//	blind:    m' = m * r^e mod N      (receiver, random r)
//	sign:     s' = (m')^d mod N       (signer, learns nothing about m)
//	unblind:  s  = s' * r^{-1} mod N  (receiver; s = m^d, a plain signature)
//
// Messages are hashed (full-domain style) before blinding.
package blindsig

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by this package.
var (
	ErrBadSignature = errors.New("blindsig: signature verification failed")
	ErrKeySize      = errors.New("blindsig: key too small")
)

// minBits is the minimum accepted RSA modulus size.
const minBits = 1024

// Signer holds the RSA private key of the signing party (the publisher).
type Signer struct {
	key *rsa.PrivateKey
}

// PublicKey is the signer's public key, distributed to subscribers.
type PublicKey struct {
	key *rsa.PublicKey
}

// NewSigner generates a signer with a fresh RSA key of the given bit size.
func NewSigner(bits int) (*Signer, error) {
	if bits < minBits {
		return nil, ErrKeySize
	}
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("blindsig: generating key: %w", err)
	}
	return &Signer{key: key}, nil
}

// Public returns the signer's public key.
func (s *Signer) Public() *PublicKey {
	return &PublicKey{key: &s.key.PublicKey}
}

// BlindState is the receiver's private unblinding state.
type BlindState struct {
	r   *big.Int
	pub *rsa.PublicKey
}

// Blind hashes message to the RSA domain and blinds it. It returns the
// blinded element to send to the signer and the unblinding state.
func (pk *PublicKey) Blind(message []byte) (*big.Int, *BlindState, error) {
	n := pk.key.N
	m := hashToDomain(message, n)
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, n)
		if err != nil {
			return nil, nil, fmt.Errorf("blindsig: sampling blinding factor: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, n).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	e := big.NewInt(int64(pk.key.E))
	re := new(big.Int).Exp(r, e, n)
	blinded := new(big.Int).Mul(m, re)
	blinded.Mod(blinded, n)
	return blinded, &BlindState{r: r, pub: pk.key}, nil
}

// SignBlinded signs a blinded element. The signer learns nothing about the
// underlying message.
func (s *Signer) SignBlinded(blinded *big.Int) *big.Int {
	return new(big.Int).Exp(blinded, s.key.D, s.key.N)
}

// Unblind removes the blinding factor, yielding an ordinary RSA signature on
// the original message.
func (st *BlindState) Unblind(blindedSig *big.Int) *big.Int {
	rInv := new(big.Int).ModInverse(st.r, st.pub.N)
	sig := new(big.Int).Mul(blindedSig, rInv)
	return sig.Mod(sig, st.pub.N)
}

// Verify checks that sig is a valid signature on message under pk.
func (pk *PublicKey) Verify(message []byte, sig *big.Int) error {
	n := pk.key.N
	e := big.NewInt(int64(pk.key.E))
	m := hashToDomain(message, n)
	check := new(big.Int).Exp(sig, e, n)
	if check.Cmp(m) != 0 {
		return ErrBadSignature
	}
	return nil
}

// Sign produces a plain (non-blind) signature on message; used by the signer
// for its own content and by tests as a reference.
func (s *Signer) Sign(message []byte) *big.Int {
	m := hashToDomain(message, s.key.N)
	return new(big.Int).Exp(m, s.key.D, s.key.N)
}

// SignatureKey derives a symmetric-key-sized digest from a signature, for
// Hummingbird-style use of the signature as a message encryption key.
func SignatureKey(sig *big.Int) []byte {
	h := sha256.New()
	h.Write([]byte("godosn/blindsig/sigkey-v1"))
	h.Write(sig.Bytes())
	return h.Sum(nil)
}

// hashToDomain maps message into Z_N via repeated hashing (full-domain hash,
// truncated below N).
func hashToDomain(message []byte, n *big.Int) *big.Int {
	byteLen := (n.BitLen() + 7) / 8
	out := make([]byte, 0, byteLen)
	var counter byte
	for len(out) < byteLen {
		h := sha256.New()
		h.Write([]byte("godosn/blindsig/fdh-v1"))
		h.Write([]byte{counter})
		h.Write(message)
		out = append(out, h.Sum(nil)...)
		counter++
	}
	m := new(big.Int).SetBytes(out[:byteLen])
	return m.Mod(m, n)
}
