package pubkey

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncryptDecryptRoundTrip(t *testing.T) {
	kp, err := NewEncryptionKeyPair()
	if err != nil {
		t.Fatalf("NewEncryptionKeyPair: %v", err)
	}
	for _, pt := range [][]byte{{}, []byte("x"), bytes.Repeat([]byte("m"), 10000)} {
		ct, err := Encrypt(kp.Public(), pt)
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		got, err := kp.Decrypt(ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(got, pt) {
			t.Fatalf("round trip mismatch for %d bytes", len(pt))
		}
	}
}

func TestDecryptWrongKeyFails(t *testing.T) {
	kp1, _ := NewEncryptionKeyPair()
	kp2, _ := NewEncryptionKeyPair()
	ct, err := Encrypt(kp1.Public(), []byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := kp2.Decrypt(ct); err == nil {
		t.Fatal("decryption with wrong key succeeded")
	}
}

func TestDecryptTamperedFails(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	ct, err := Encrypt(kp.Public(), []byte("secret"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	for _, idx := range []int{0, 64, 65, len(ct) - 1} {
		mutated := append([]byte(nil), ct...)
		mutated[idx] ^= 1
		if _, err := kp.Decrypt(mutated); err == nil {
			t.Fatalf("tampered ciphertext at byte %d accepted", idx)
		}
	}
}

func TestDecryptTruncatedFails(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	if _, err := kp.Decrypt([]byte{1, 2, 3}); err == nil {
		t.Fatal("truncated ciphertext accepted")
	}
}

func TestEncryptNilKey(t *testing.T) {
	if _, err := Encrypt(nil, []byte("x")); err == nil {
		t.Fatal("Encrypt accepted nil key")
	}
}

func TestPublicKeySerialization(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	data := kp.Public().Bytes()
	pk, err := ParseEncryptionPublicKey(data)
	if err != nil {
		t.Fatalf("ParseEncryptionPublicKey: %v", err)
	}
	ct, err := Encrypt(pk, []byte("via parsed key"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := kp.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if string(got) != "via parsed key" {
		t.Fatal("round trip through serialized key failed")
	}
}

func TestParsePublicKeyRejectsGarbage(t *testing.T) {
	if _, err := ParseEncryptionPublicKey([]byte("not a point")); err == nil {
		t.Fatal("parsed garbage public key")
	}
}

func TestPrivateBytesRoundTrip(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	restored, err := EncryptionKeyPairFromPrivateBytes(kp.PrivateBytes())
	if err != nil {
		t.Fatalf("EncryptionKeyPairFromPrivateBytes: %v", err)
	}
	ct, _ := Encrypt(kp.Public(), []byte("hello"))
	got, err := restored.Decrypt(ct)
	if err != nil || string(got) != "hello" {
		t.Fatalf("restored key failed to decrypt: %v", err)
	}
}

func TestCiphertextOverhead(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	for _, n := range []int{0, 1, 1000} {
		ct, err := Encrypt(kp.Public(), make([]byte, n))
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		if got := len(ct) - n; got != CiphertextOverhead() {
			t.Fatalf("overhead %d, want %d", got, CiphertextOverhead())
		}
	}
}

func TestSignVerify(t *testing.T) {
	kp, err := NewSigningKeyPair()
	if err != nil {
		t.Fatalf("NewSigningKeyPair: %v", err)
	}
	msg := []byte("signed message")
	sig := kp.Sign(msg)
	if len(sig) != SignatureSize {
		t.Fatalf("signature size %d, want %d", len(sig), SignatureSize)
	}
	if err := Verify(kp.Verification(), msg, sig); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	kp, _ := NewSigningKeyPair()
	sig := kp.Sign([]byte("original"))
	if err := Verify(kp.Verification(), []byte("forged"), sig); err == nil {
		t.Fatal("verified signature over different message")
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	kp1, _ := NewSigningKeyPair()
	kp2, _ := NewSigningKeyPair()
	sig := kp1.Sign([]byte("msg"))
	if err := Verify(kp2.Verification(), []byte("msg"), sig); err == nil {
		t.Fatal("verified with wrong key")
	}
}

func TestVerifyRejectsBadKeyLength(t *testing.T) {
	if err := Verify(VerificationKey{1, 2}, []byte("m"), make([]byte, SignatureSize)); err == nil {
		t.Fatal("accepted malformed verification key")
	}
}

func TestQuickEncryptRoundTrip(t *testing.T) {
	kp, _ := NewEncryptionKeyPair()
	pub := kp.Public()
	f := func(pt []byte) bool {
		ct, err := Encrypt(pub, pt)
		if err != nil {
			return false
		}
		got, err := kp.Decrypt(ct)
		return err == nil && bytes.Equal(got, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSignVerify(t *testing.T) {
	kp, _ := NewSigningKeyPair()
	vk := kp.Verification()
	f := func(msg []byte) bool {
		return Verify(vk, msg, kp.Sign(msg)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
