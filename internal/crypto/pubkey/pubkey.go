// Package pubkey provides public-key (asymmetric) encryption and digital
// signatures, implementing the "public key encryption" row of Table I of the
// paper and the signature substrate for Section IV (data integrity).
//
// Encryption is ECIES-style hybrid: an ephemeral ECDH key agreement on P-256
// derives (via the prf package) an AES-GCM key that encrypts the payload.
// Signatures are Ed25519. Both use only the Go standard library.
package pubkey

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"errors"
	"fmt"

	"godosn/internal/crypto/prf"
	"godosn/internal/crypto/symmetric"
)

// Errors returned by this package.
var (
	ErrCiphertextFormat = errors.New("pubkey: malformed ciphertext")
	ErrBadSignature     = errors.New("pubkey: signature verification failed")
	ErrNilKey           = errors.New("pubkey: nil key")
)

// encContext labels ECIES key derivation.
const encContext = "godosn/pubkey/ecies-v1"

// EncryptionKeyPair holds a P-256 ECDH keypair used for hybrid encryption.
type EncryptionKeyPair struct {
	private *ecdh.PrivateKey
}

// EncryptionPublicKey is the public half of an EncryptionKeyPair.
type EncryptionPublicKey struct {
	public *ecdh.PublicKey
}

// NewEncryptionKeyPair generates a fresh P-256 keypair.
func NewEncryptionKeyPair() (*EncryptionKeyPair, error) {
	priv, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pubkey: generating encryption key: %w", err)
	}
	return &EncryptionKeyPair{private: priv}, nil
}

// EncryptionKeyPairFromPrivateBytes reconstructs a keypair from a 32-byte
// P-256 private scalar, as produced by PrivateBytes. It is used by the IBE
// private key generator to derive identity keys deterministically.
func EncryptionKeyPairFromPrivateBytes(data []byte) (*EncryptionKeyPair, error) {
	priv, err := ecdh.P256().NewPrivateKey(data)
	if err != nil {
		return nil, fmt.Errorf("pubkey: parsing private key: %w", err)
	}
	return &EncryptionKeyPair{private: priv}, nil
}

// PrivateBytes returns the raw private scalar of the keypair.
func (kp *EncryptionKeyPair) PrivateBytes() []byte {
	return kp.private.Bytes()
}

// Public returns the public key for distribution to other users.
func (kp *EncryptionKeyPair) Public() *EncryptionPublicKey {
	return &EncryptionPublicKey{public: kp.private.PublicKey()}
}

// Bytes returns the canonical encoding of the public key.
func (pk *EncryptionPublicKey) Bytes() []byte {
	return pk.public.Bytes()
}

// ParseEncryptionPublicKey decodes a public key encoded with Bytes.
func ParseEncryptionPublicKey(data []byte) (*EncryptionPublicKey, error) {
	pub, err := ecdh.P256().NewPublicKey(data)
	if err != nil {
		return nil, fmt.Errorf("pubkey: parsing public key: %w", err)
	}
	return &EncryptionPublicKey{public: pub}, nil
}

// Encrypt encrypts plaintext to the holder of pk using ephemeral ECDH +
// AES-GCM. The ciphertext layout is: ephemeral public key || sealed payload.
func Encrypt(pk *EncryptionPublicKey, plaintext []byte) ([]byte, error) {
	if pk == nil || pk.public == nil {
		return nil, ErrNilKey
	}
	eph, err := ecdh.P256().GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pubkey: generating ephemeral key: %w", err)
	}
	shared, err := eph.ECDH(pk.public)
	if err != nil {
		return nil, fmt.Errorf("pubkey: ECDH: %w", err)
	}
	key, err := prf.Derive(shared, encContext, symmetric.KeySize)
	if err != nil {
		return nil, fmt.Errorf("pubkey: deriving key: %w", err)
	}
	ephBytes := eph.PublicKey().Bytes()
	// Seal directly into the output buffer after the ephemeral key: one
	// allocation for the whole ciphertext instead of seal-then-copy.
	out := make([]byte, 0, len(ephBytes)+symmetric.SealedLen(len(plaintext)))
	out = append(out, ephBytes...)
	out, err = symmetric.SealTo(out, key, plaintext, ephBytes)
	if err != nil {
		return nil, fmt.Errorf("pubkey: sealing payload: %w", err)
	}
	return out, nil
}

// ephPubLen is the length of an uncompressed P-256 point encoding.
const ephPubLen = 65

// Decrypt reverses Encrypt using the private key.
func (kp *EncryptionKeyPair) Decrypt(ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < ephPubLen {
		return nil, ErrCiphertextFormat
	}
	ephBytes, sealed := ciphertext[:ephPubLen], ciphertext[ephPubLen:]
	ephPub, err := ecdh.P256().NewPublicKey(ephBytes)
	if err != nil {
		return nil, fmt.Errorf("pubkey: parsing ephemeral key: %w", err)
	}
	shared, err := kp.private.ECDH(ephPub)
	if err != nil {
		return nil, fmt.Errorf("pubkey: ECDH: %w", err)
	}
	key, err := prf.Derive(shared, encContext, symmetric.KeySize)
	if err != nil {
		return nil, fmt.Errorf("pubkey: deriving key: %w", err)
	}
	plaintext, err := symmetric.Open(key, sealed, ephBytes)
	if err != nil {
		return nil, fmt.Errorf("pubkey: opening payload: %w", err)
	}
	return plaintext, nil
}

// CiphertextOverhead is the ciphertext expansion of Encrypt in bytes.
func CiphertextOverhead() int { return ephPubLen + symmetric.Overhead() }

// SigningKeyPair holds an Ed25519 keypair for digital signatures.
type SigningKeyPair struct {
	private ed25519.PrivateKey
	public  ed25519.PublicKey
}

// VerificationKey is the public half of a SigningKeyPair.
type VerificationKey ed25519.PublicKey

// NewSigningKeyPair generates a fresh Ed25519 keypair.
func NewSigningKeyPair() (*SigningKeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pubkey: generating signing key: %w", err)
	}
	return &SigningKeyPair{private: priv, public: pub}, nil
}

// Seed returns the 32-byte Ed25519 seed from which the keypair can be
// reconstructed with SigningKeyPairFromSeed. It is the transferable form of
// a signing capability (e.g. the per-post comment key of Section IV-C).
func (kp *SigningKeyPair) Seed() []byte {
	return kp.private.Seed()
}

// SigningKeyPairFromSeed reconstructs a signing keypair from a seed produced
// by Seed.
func SigningKeyPairFromSeed(seed []byte) (*SigningKeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("pubkey: bad seed length %d", len(seed))
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub, ok := priv.Public().(ed25519.PublicKey)
	if !ok {
		return nil, errors.New("pubkey: unexpected public key type")
	}
	return &SigningKeyPair{private: priv, public: pub}, nil
}

// Verification returns the verification key for distribution.
func (kp *SigningKeyPair) Verification() VerificationKey {
	out := make(VerificationKey, len(kp.public))
	copy(out, kp.public)
	return out
}

// Sign signs message with the private key.
func (kp *SigningKeyPair) Sign(message []byte) []byte {
	return ed25519.Sign(kp.private, message)
}

// Verify checks signature over message against the verification key.
func Verify(vk VerificationKey, message, signature []byte) error {
	if len(vk) != ed25519.PublicKeySize {
		return ErrNilKey
	}
	if !ed25519.Verify(ed25519.PublicKey(vk), message, signature) {
		return ErrBadSignature
	}
	return nil
}

// SignatureSize is the size in bytes of a signature produced by Sign.
const SignatureSize = ed25519.SignatureSize
