// Package historytree implements a Frientegrity-style object history tree
// with fork-consistency checking.
//
// The paper (Section IV-B) describes the approach: an untrusted storage
// provider maintains an "object history tree" of all operations on a shared
// object (e.g. a user's wall); the provider "digitally signs the root of
// [the] object history tree", clients "share information about their
// individual views of the history by embedding it in every operation they
// perform", and "if the clients who have been equivocated by the service
// provider communicate to each other, they will discover the provider's
// misbehaviour".
//
// Concretely:
//
//   - Server: append-only Merkle tree over operations; every append yields a
//     signed Commitment (object, version, root).
//   - Clients: a View that tracks the latest verified commitment. Advancing
//     the view requires a Merkle consistency proof, so a server cannot
//     silently rewrite history ("data retention"-style tampering fails).
//   - Fork detection: two commitments for the same object are compared with
//     CheckCommitments; if neither extends the other, the pair of signed
//     roots is cryptographic evidence of equivocation (a fork), returned as
//     *ForkEvidence.
package historytree

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"godosn/internal/crypto/merkle"
	"godosn/internal/crypto/pubkey"
)

// Errors returned by this package.
var (
	ErrBadCommitment = errors.New("historytree: commitment signature invalid")
	ErrStaleView     = errors.New("historytree: commitment older than view")
	ErrObjectChanged = errors.New("historytree: commitment for different object")
	ErrFork          = errors.New("historytree: fork detected")
	ErrNoSuchVersion = errors.New("historytree: unknown version")
)

// Commitment is the server's signed statement of an object's history state.
type Commitment struct {
	// ObjectID names the object (e.g. "wall:alice").
	ObjectID string
	// Version is the number of operations in the history.
	Version int
	// Root is the Merkle root over the first Version operations.
	Root [32]byte
	// Signature is the server's signature over the commitment digest.
	Signature []byte
}

// digest is the signed byte string.
func (c *Commitment) digest() []byte {
	var buf bytes.Buffer
	buf.WriteString("godosn/historytree/commitment-v1\x00")
	buf.WriteString(c.ObjectID)
	buf.WriteByte(0)
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], uint64(c.Version))
	buf.Write(v[:])
	buf.Write(c.Root[:])
	return buf.Bytes()
}

// Verify checks the commitment signature.
func (c *Commitment) Verify(vk pubkey.VerificationKey) error {
	if err := pubkey.Verify(vk, c.digest(), c.Signature); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCommitment, err)
	}
	return nil
}

// Server is the storage-provider side: an append-only operation log per
// object with signed commitments. It is safe for concurrent use.
type Server struct {
	mu      sync.Mutex
	signer  *pubkey.SigningKeyPair
	objects map[string]*objectLog
}

type objectLog struct {
	tree *merkle.Tree
	ops  [][]byte
}

// NewServer creates a server signing commitments with the given key.
func NewServer(signer *pubkey.SigningKeyPair) *Server {
	return &Server{signer: signer, objects: make(map[string]*objectLog)}
}

// Append records an operation on the object and returns the new signed
// commitment.
func (s *Server) Append(objectID string, op []byte) (*Commitment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.objects[objectID]
	if !ok {
		log = &objectLog{tree: merkle.New()}
		s.objects[objectID] = log
	}
	log.ops = append(log.ops, append([]byte(nil), op...))
	log.tree.Append(op)
	return s.commitLocked(objectID, log), nil
}

// Latest returns the current signed commitment for an object.
func (s *Server) Latest(objectID string) (*Commitment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.objects[objectID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVersion, objectID)
	}
	return s.commitLocked(objectID, log), nil
}

func (s *Server) commitLocked(objectID string, log *objectLog) *Commitment {
	c := &Commitment{ObjectID: objectID, Version: log.tree.Len(), Root: log.tree.Root()}
	c.Signature = s.signer.Sign(c.digest())
	return c
}

// ProveConsistency proves that version newV of the object extends oldV.
func (s *Server) ProveConsistency(objectID string, oldV, newV int) (*merkle.ConsistencyProof, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.objects[objectID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVersion, objectID)
	}
	if newV > log.tree.Len() || newV <= 0 {
		return nil, ErrNoSuchVersion
	}
	// Rebuild the prefix tree so proofs work between historical versions too.
	prefix := merkle.New()
	for _, op := range log.ops[:newV] {
		prefix.Append(op)
	}
	proof, err := prefix.ProveConsistency(oldV)
	if err != nil {
		return nil, fmt.Errorf("historytree: proving consistency: %w", err)
	}
	return proof, nil
}

// ProveMembership proves that op sits at index in the object history of the
// given version.
func (s *Server) ProveMembership(objectID string, version, index int) ([]byte, *merkle.Proof, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.objects[objectID]
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNoSuchVersion, objectID)
	}
	if version <= 0 || version > log.tree.Len() || index < 0 || index >= version {
		return nil, nil, ErrNoSuchVersion
	}
	prefix := merkle.New()
	for _, op := range log.ops[:version] {
		prefix.Append(op)
	}
	proof, err := prefix.Prove(index)
	if err != nil {
		return nil, nil, fmt.Errorf("historytree: proving membership: %w", err)
	}
	return append([]byte(nil), log.ops[index]...), proof, nil
}

// Operations returns the ops of an object up to version (for replay/audit).
func (s *Server) Operations(objectID string, version int) ([][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	log, ok := s.objects[objectID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSuchVersion, objectID)
	}
	if version < 0 || version > len(log.ops) {
		return nil, ErrNoSuchVersion
	}
	out := make([][]byte, version)
	for i, op := range log.ops[:version] {
		out[i] = append([]byte(nil), op...)
	}
	return out, nil
}

// ForkEvidence is cryptographic proof of server equivocation: two validly
// signed commitments for the same object that are provably inconsistent.
type ForkEvidence struct {
	A, B *Commitment
}

// Error renders the evidence as an error message.
func (f *ForkEvidence) Error() string {
	return fmt.Sprintf("historytree: fork on %q: version %d root %x vs version %d root %x",
		f.A.ObjectID, f.A.Version, f.A.Root[:4], f.B.Version, f.B.Root[:4])
}

// View is a client's fork-consistent tracking of one object.
type View struct {
	// ObjectID names the tracked object.
	ObjectID string

	vk     pubkey.VerificationKey
	latest *Commitment
}

// NewView starts tracking an object, trusting the given server key.
func NewView(objectID string, vk pubkey.VerificationKey) *View {
	return &View{ObjectID: objectID, vk: vk}
}

// Latest returns the last verified commitment (nil before the first Advance).
func (v *View) Latest() *Commitment { return v.latest }

// Advance verifies a new commitment against the view. For a non-empty view a
// consistency proof from the view's version to the commitment's version is
// required. On provable equivocation it returns *ForkEvidence (which also
// satisfies error via errors.As).
func (v *View) Advance(c *Commitment, proof *merkle.ConsistencyProof) error {
	if c.ObjectID != v.ObjectID {
		return ErrObjectChanged
	}
	if err := c.Verify(v.vk); err != nil {
		return err
	}
	if v.latest == nil {
		v.latest = c
		return nil
	}
	switch {
	case c.Version < v.latest.Version:
		return ErrStaleView
	case c.Version == v.latest.Version:
		if c.Root != v.latest.Root {
			return &ForkEvidence{A: v.latest, B: c}
		}
		return nil
	default:
		if proof == nil || proof.OldSize != v.latest.Version || proof.NewSize != c.Version {
			return merkle.ErrInvalidConsistency
		}
		if err := merkle.VerifyConsistency(v.latest.Root, c.Root, proof); err != nil {
			// An invalid proof is suspicious but not yet evidence; the
			// caller retries or escalates.
			return err
		}
		v.latest = c
		return nil
	}
}

// CheckCommitments cross-checks two clients' verified commitments for the
// same object — the "clients communicate to each other" step of the paper.
// It returns *ForkEvidence when the commitments are at the same version with
// different roots. For differing versions the caller should obtain a
// consistency proof via the server; refusal to produce one is operational
// evidence of misbehaviour.
func CheckCommitments(a, b *Commitment, vk pubkey.VerificationKey) error {
	if a == nil || b == nil {
		return nil
	}
	if a.ObjectID != b.ObjectID {
		return ErrObjectChanged
	}
	if err := a.Verify(vk); err != nil {
		return err
	}
	if err := b.Verify(vk); err != nil {
		return err
	}
	if a.Version == b.Version && a.Root != b.Root {
		return &ForkEvidence{A: a, B: b}
	}
	return nil
}
