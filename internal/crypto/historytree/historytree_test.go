package historytree

import (
	"errors"
	"fmt"
	"testing"

	"godosn/internal/crypto/merkle"
	"godosn/internal/crypto/pubkey"
)

func newServer(t *testing.T) (*Server, pubkey.VerificationKey) {
	t.Helper()
	kp, err := pubkey.NewSigningKeyPair()
	if err != nil {
		t.Fatalf("NewSigningKeyPair: %v", err)
	}
	return NewServer(kp), kp.Verification()
}

func TestCommitmentSignature(t *testing.T) {
	s, vk := newServer(t)
	c, err := s.Append("wall:alice", []byte("op1"))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := c.Verify(vk); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	c.Version++
	if err := c.Verify(vk); err == nil {
		t.Fatal("mutated commitment verified")
	}
}

func TestViewAdvances(t *testing.T) {
	s, vk := newServer(t)
	view := NewView("wall:alice", vk)
	var last *Commitment
	for i := 0; i < 10; i++ {
		c, err := s.Append("wall:alice", []byte(fmt.Sprintf("op%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		var proof *merkle.ConsistencyProof
		if last != nil {
			proof, err = s.ProveConsistency("wall:alice", last.Version, c.Version)
			if err != nil {
				t.Fatalf("ProveConsistency: %v", err)
			}
		}
		if err := view.Advance(c, proof); err != nil {
			t.Fatalf("Advance step %d: %v", i, err)
		}
		last = c
	}
	if view.Latest().Version != 10 {
		t.Fatalf("view at version %d", view.Latest().Version)
	}
}

func TestViewSkipsVersions(t *testing.T) {
	s, vk := newServer(t)
	view := NewView("w", vk)
	c1, _ := s.Append("w", []byte("1"))
	if err := view.Advance(c1, nil); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	s.Append("w", []byte("2"))
	s.Append("w", []byte("3"))
	c4, _ := s.Append("w", []byte("4"))
	proof, err := s.ProveConsistency("w", 1, 4)
	if err != nil {
		t.Fatalf("ProveConsistency: %v", err)
	}
	if err := view.Advance(c4, proof); err != nil {
		t.Fatalf("Advance over gap: %v", err)
	}
}

func TestViewRejectsMissingProof(t *testing.T) {
	s, vk := newServer(t)
	view := NewView("w", vk)
	c1, _ := s.Append("w", []byte("1"))
	view.Advance(c1, nil)
	c2, _ := s.Append("w", []byte("2"))
	if err := view.Advance(c2, nil); err == nil {
		t.Fatal("advanced without consistency proof")
	}
}

func TestViewRejectsWrongObject(t *testing.T) {
	s, vk := newServer(t)
	view := NewView("w", vk)
	c, _ := s.Append("other", []byte("1"))
	if err := view.Advance(c, nil); !errors.Is(err, ErrObjectChanged) {
		t.Fatalf("got %v, want ErrObjectChanged", err)
	}
}

func TestForkDetectionSameVersion(t *testing.T) {
	// The provider equivocates: presents two different version-1 states to
	// two clients. When the clients compare commitments they obtain
	// cryptographic fork evidence — the scenario of Section IV-B.
	kp, _ := pubkey.NewSigningKeyPair()
	vk := kp.Verification()
	honest := NewServer(kp)
	evil := NewServer(kp)

	cA, _ := honest.Append("wall", []byte("real post"))
	cB, _ := evil.Append("wall", []byte("hidden post"))

	err := CheckCommitments(cA, cB, vk)
	var fork *ForkEvidence
	if !errors.As(err, &fork) {
		t.Fatalf("got %v, want ForkEvidence", err)
	}
	if fork.A.Root == fork.B.Root {
		t.Fatal("evidence roots identical")
	}
	if fork.Error() == "" {
		t.Fatal("empty evidence message")
	}
}

func TestForkDetectionViaView(t *testing.T) {
	kp, _ := pubkey.NewSigningKeyPair()
	vk := kp.Verification()
	honest := NewServer(kp)
	evil := NewServer(kp)

	view := NewView("wall", vk)
	c1, _ := honest.Append("wall", []byte("post-1"))
	if err := view.Advance(c1, nil); err != nil {
		t.Fatalf("Advance: %v", err)
	}
	// Evil presents an alternative version 1.
	e1, _ := evil.Append("wall", []byte("other-post"))
	err := view.Advance(e1, nil)
	var fork *ForkEvidence
	if !errors.As(err, &fork) {
		t.Fatalf("got %v, want ForkEvidence", err)
	}
}

func TestForkedExtensionRejected(t *testing.T) {
	kp, _ := pubkey.NewSigningKeyPair()
	vk := kp.Verification()
	honest := NewServer(kp)
	evil := NewServer(kp)

	view := NewView("wall", vk)
	c1, _ := honest.Append("wall", []byte("post-1"))
	view.Advance(c1, nil)

	// Evil builds a divergent longer history and tries to move the view.
	evil.Append("wall", []byte("fake-1"))
	e2, _ := evil.Append("wall", []byte("fake-2"))
	proof, err := evil.ProveConsistency("wall", 1, 2)
	if err != nil {
		t.Fatalf("ProveConsistency: %v", err)
	}
	if err := view.Advance(e2, proof); err == nil {
		t.Fatal("view advanced onto forked history")
	}
	if view.Latest().Version != 1 {
		t.Fatal("view moved despite rejection")
	}
}

func TestCheckCommitmentsConsistentPair(t *testing.T) {
	s, vk := newServer(t)
	c1, _ := s.Append("w", []byte("1"))
	c2, _ := s.Append("w", []byte("2"))
	if err := CheckCommitments(c1, c2, vk); err != nil {
		t.Fatalf("consistent pair flagged: %v", err)
	}
	if err := CheckCommitments(c1, c1, vk); err != nil {
		t.Fatalf("identical pair flagged: %v", err)
	}
	if err := CheckCommitments(nil, c1, vk); err != nil {
		t.Fatalf("nil pair flagged: %v", err)
	}
}

func TestMembershipProof(t *testing.T) {
	s, _ := newServer(t)
	var commits []*Commitment
	for i := 0; i < 8; i++ {
		c, _ := s.Append("w", []byte(fmt.Sprintf("op%d", i)))
		commits = append(commits, c)
	}
	op, proof, err := s.ProveMembership("w", 8, 3)
	if err != nil {
		t.Fatalf("ProveMembership: %v", err)
	}
	if string(op) != "op3" {
		t.Fatalf("got op %q", op)
	}
	if err := merkle.VerifyProof(commits[7].Root, merkle.LeafHash(op), proof); err != nil {
		t.Fatalf("membership proof invalid: %v", err)
	}
	// Historical version proofs too.
	op, proof, err = s.ProveMembership("w", 4, 3)
	if err != nil {
		t.Fatalf("ProveMembership historical: %v", err)
	}
	if err := merkle.VerifyProof(commits[3].Root, merkle.LeafHash(op), proof); err != nil {
		t.Fatalf("historical membership proof invalid: %v", err)
	}
}

func TestOperationsReplay(t *testing.T) {
	s, _ := newServer(t)
	for i := 0; i < 5; i++ {
		s.Append("w", []byte(fmt.Sprintf("op%d", i)))
	}
	ops, err := s.Operations("w", 3)
	if err != nil {
		t.Fatalf("Operations: %v", err)
	}
	if len(ops) != 3 || string(ops[2]) != "op2" {
		t.Fatalf("ops = %q", ops)
	}
	if _, err := s.Operations("missing", 1); err == nil {
		t.Fatal("operations for unknown object")
	}
	if _, err := s.Operations("w", 99); err == nil {
		t.Fatal("operations beyond version")
	}
}

func TestLatest(t *testing.T) {
	s, vk := newServer(t)
	if _, err := s.Latest("nope"); err == nil {
		t.Fatal("Latest for unknown object")
	}
	s.Append("w", []byte("1"))
	c, err := s.Latest("w")
	if err != nil || c.Version != 1 {
		t.Fatalf("Latest: %v %+v", err, c)
	}
	if err := c.Verify(vk); err != nil {
		t.Fatalf("Latest signature: %v", err)
	}
}
