package historytree

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"godosn/internal/crypto/merkle"
	"godosn/internal/crypto/pubkey"
)

// TestQuickViewNeverCrossesForks drives random interleavings of appends on
// an honest and a forked copy of the same object and checks the invariants:
// a view following the honest server always advances; any attempt to move
// it onto the forked copy fails or yields fork evidence; cross-checking a
// forked reader always yields evidence once both sides diverge at the same
// version.
func TestQuickViewNeverCrossesForks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key, err := pubkey.NewSigningKeyPair()
		if err != nil {
			return false
		}
		vk := key.Verification()
		honest := NewServer(key)
		forked := NewServer(key)
		const obj = "wall:x"

		view := NewView(obj, vk)
		divergedAt := -1
		for round := 0; round < 12; round++ {
			payload := fmt.Sprintf("op-%d", round)
			honest.Append(obj, []byte(payload))
			if divergedAt < 0 && rng.Intn(4) == 0 {
				divergedAt = round
			}
			if divergedAt >= 0 && round >= divergedAt {
				forked.Append(obj, []byte("FORK-"+payload))
			} else {
				forked.Append(obj, []byte(payload))
			}

			// Advance the view honestly.
			latest, err := honest.Latest(obj)
			if err != nil {
				return false
			}
			var proof *merkle.ConsistencyProof
			if cur := view.Latest(); cur != nil && latest.Version > cur.Version {
				proof, err = honest.ProveConsistency(obj, cur.Version, latest.Version)
				if err != nil {
					return false
				}
			}
			if err := view.Advance(latest, proof); err != nil {
				return false // honest advance must always work
			}

			// Attack: try to move the view onto the forked copy.
			if divergedAt >= 0 {
				evil, err := forked.Latest(obj)
				if err != nil {
					return false
				}
				evilProof, _ := forked.ProveConsistency(obj, view.Latest().Version, evil.Version)
				if err := view.Advance(evil, evilProof); err == nil {
					return false // crossing the fork must never succeed
				}
				// And the view must not have moved.
				if view.Latest().Root != latest.Root {
					return false
				}
			}
		}
		// Final cross-check between an honest and a forked reader.
		if divergedAt >= 0 {
			hc, _ := honest.Latest(obj)
			fc, _ := forked.Latest(obj)
			err := CheckCommitments(hc, fc, vk)
			var fork *ForkEvidence
			if !errors.As(err, &fork) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMembershipAcrossVersions checks that membership proofs verify at
// every historical version for random history lengths.
func TestQuickMembershipAcrossVersions(t *testing.T) {
	key, err := pubkey.NewSigningKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(key)
	const obj = "o"
	var roots [][32]byte
	for i := 0; i < 24; i++ {
		c, err := s.Append(obj, []byte(fmt.Sprintf("op%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		roots = append(roots, c.Root)
	}
	f := func(vRaw, iRaw uint8) bool {
		version := int(vRaw)%24 + 1
		index := int(iRaw) % version
		op, proof, err := s.ProveMembership(obj, version, index)
		if err != nil {
			return false
		}
		if string(op) != fmt.Sprintf("op%d", index) {
			return false
		}
		return merkle.VerifyProof(roots[version-1], merkle.LeafHash(op), proof) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
