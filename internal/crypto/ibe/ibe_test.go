package ibe

import (
	"bytes"
	"testing"
)

func newTestPKG(t *testing.T) *PKG {
	t.Helper()
	p, err := NewPKG()
	if err != nil {
		t.Fatalf("NewPKG: %v", err)
	}
	return p
}

func TestIBERoundTrip(t *testing.T) {
	pkg := newTestPKG(t)
	ct, err := pkg.Encrypt("alice@example.org", []byte("hello alice"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	key, err := pkg.Extract("alice@example.org")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	got, err := key.Decrypt(ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if string(got) != "hello alice" {
		t.Fatalf("got %q", got)
	}
}

func TestIBEWrongIdentityFails(t *testing.T) {
	pkg := newTestPKG(t)
	ct, _ := pkg.Encrypt("alice@example.org", []byte("for alice"))
	bobKey, _ := pkg.Extract("bob@example.org")
	if _, err := bobKey.Decrypt(ct); err == nil {
		t.Fatal("bob decrypted alice's message")
	}
}

func TestIdentityKeysDeterministic(t *testing.T) {
	pkg := newTestPKG(t)
	k1, _ := pkg.Extract("carol")
	k2, _ := pkg.Extract("carol")
	ct, _ := pkg.Encrypt("carol", []byte("m"))
	a, err1 := k1.Decrypt(ct)
	b, err2 := k2.Decrypt(ct)
	if err1 != nil || err2 != nil || !bytes.Equal(a, b) {
		t.Fatal("re-extracted key differs")
	}
}

func TestDifferentPKGsIncompatible(t *testing.T) {
	pkg1 := newTestPKG(t)
	pkg2 := newTestPKG(t)
	ct, _ := pkg1.Encrypt("alice", []byte("m"))
	key, _ := pkg2.Extract("alice")
	if _, err := key.Decrypt(ct); err == nil {
		t.Fatal("key from different PKG decrypted")
	}
}

func TestArbitraryStringIdentities(t *testing.T) {
	pkg := newTestPKG(t)
	// "public keys can be any arbitrary string" — exercise odd identities.
	for _, id := range []string{"", "a", "ユーザー@例.jp", "spaces in id", string([]byte{0, 1, 2})} {
		ct, err := pkg.Encrypt(id, []byte("m"))
		if err != nil {
			t.Fatalf("Encrypt(%q): %v", id, err)
		}
		key, err := pkg.Extract(id)
		if err != nil {
			t.Fatalf("Extract(%q): %v", id, err)
		}
		if got, err := key.Decrypt(ct); err != nil || string(got) != "m" {
			t.Fatalf("Decrypt(%q): %v", id, err)
		}
	}
}

func TestBroadcastRoundTrip(t *testing.T) {
	pkg := newTestPKG(t)
	recipients := []string{"alice", "bob", "carol"}
	b, err := pkg.EncryptBroadcast(recipients, []byte("party on friday"))
	if err != nil {
		t.Fatalf("EncryptBroadcast: %v", err)
	}
	for _, id := range recipients {
		key, _ := pkg.Extract(id)
		got, err := key.DecryptBroadcast(b)
		if err != nil {
			t.Fatalf("DecryptBroadcast(%s): %v", id, err)
		}
		if string(got) != "party on friday" {
			t.Fatalf("%s got %q", id, got)
		}
	}
}

func TestBroadcastNonRecipientFails(t *testing.T) {
	pkg := newTestPKG(t)
	b, _ := pkg.EncryptBroadcast([]string{"alice", "bob"}, []byte("secret"))
	eveKey, _ := pkg.Extract("eve")
	if _, err := eveKey.DecryptBroadcast(b); err == nil {
		t.Fatal("non-recipient decrypted broadcast")
	}
}

func TestBroadcastRecipientRemovalIsFree(t *testing.T) {
	// The paper: "Removing a recipient from the list would then have no
	// extra cost" — a new broadcast simply omits the identity; no re-keying
	// of remaining members is needed.
	pkg := newTestPKG(t)
	before, _ := pkg.EncryptBroadcast([]string{"alice", "bob", "carol"}, []byte("v1"))
	after, err := pkg.EncryptBroadcast([]string{"alice", "carol"}, []byte("v2"))
	if err != nil {
		t.Fatalf("EncryptBroadcast: %v", err)
	}
	bobKey, _ := pkg.Extract("bob")
	if _, err := bobKey.DecryptBroadcast(after); err == nil {
		t.Fatal("removed recipient still decrypts")
	}
	aliceKey, _ := pkg.Extract("alice")
	if got, err := aliceKey.DecryptBroadcast(after); err != nil || string(got) != "v2" {
		t.Fatalf("remaining recipient failed: %v", err)
	}
	// Old broadcasts stay readable by the removed member, as with any
	// already-delivered content.
	if _, err := bobKey.DecryptBroadcast(before); err != nil {
		t.Fatalf("old broadcast unreadable: %v", err)
	}
}

func TestBroadcastSizeGrowsWithRecipients(t *testing.T) {
	pkg := newTestPKG(t)
	small, _ := pkg.EncryptBroadcast([]string{"a"}, []byte("m"))
	var many []string
	for i := 0; i < 16; i++ {
		many = append(many, string(rune('a'+i)))
	}
	large, _ := pkg.EncryptBroadcast(many, []byte("m"))
	if large.Size() <= small.Size() {
		t.Fatal("broadcast size did not grow with recipient count")
	}
}

func TestBroadcastEmptyRecipients(t *testing.T) {
	pkg := newTestPKG(t)
	if _, err := pkg.EncryptBroadcast(nil, []byte("m")); err == nil {
		t.Fatal("accepted empty recipient list")
	}
}

func TestBroadcastMalformed(t *testing.T) {
	pkg := newTestPKG(t)
	key, _ := pkg.Extract("alice")
	if _, err := key.DecryptBroadcast(nil); err == nil {
		t.Fatal("accepted nil broadcast")
	}
	b, _ := pkg.EncryptBroadcast([]string{"alice"}, []byte("m"))
	b.WrappedKeys = nil
	if _, err := key.DecryptBroadcast(b); err == nil {
		t.Fatal("accepted broadcast with missing wraps")
	}
}
