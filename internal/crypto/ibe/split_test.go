package ibe

import (
	"bytes"
	"errors"
	"testing"
)

// The two-phase broadcast API: UnwrapSession then OpenBroadcast must compose
// to exactly DecryptBroadcast, and the session key must be reusable across
// opens (the property the privacy layer's key cache relies on).

func TestUnwrapSessionOpenBroadcastCompose(t *testing.T) {
	pkg, err := NewPKG()
	if err != nil {
		t.Fatalf("NewPKG: %v", err)
	}
	b, err := pkg.EncryptBroadcast([]string{"alice", "bob"}, []byte("two-phase"))
	if err != nil {
		t.Fatalf("EncryptBroadcast: %v", err)
	}
	key, err := pkg.Extract("bob")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	session, err := key.UnwrapSession(b)
	if err != nil {
		t.Fatalf("UnwrapSession: %v", err)
	}
	for i := 0; i < 2; i++ {
		pt, err := OpenBroadcast(session, b)
		if err != nil || !bytes.Equal(pt, []byte("two-phase")) {
			t.Fatalf("OpenBroadcast %d: %q, %v", i, pt, err)
		}
	}
	whole, err := key.DecryptBroadcast(b)
	if err != nil || !bytes.Equal(whole, []byte("two-phase")) {
		t.Fatalf("DecryptBroadcast: %q, %v", whole, err)
	}
}

func TestUnwrapSessionNonRecipient(t *testing.T) {
	pkg, err := NewPKG()
	if err != nil {
		t.Fatalf("NewPKG: %v", err)
	}
	b, err := pkg.EncryptBroadcast([]string{"alice"}, []byte("private"))
	if err != nil {
		t.Fatalf("EncryptBroadcast: %v", err)
	}
	eve, err := pkg.Extract("eve")
	if err != nil {
		t.Fatalf("Extract: %v", err)
	}
	if _, err := eve.UnwrapSession(b); !errors.Is(err, ErrNotRecipient) {
		t.Fatalf("UnwrapSession for non-recipient = %v; want ErrNotRecipient", err)
	}
	if _, err := eve.UnwrapSession(nil); !errors.Is(err, ErrBadCiphertext) {
		t.Fatalf("UnwrapSession(nil) = %v; want ErrBadCiphertext", err)
	}
}
