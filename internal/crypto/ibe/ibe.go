// Package ibe implements identity-based encryption (IBE) and identity-based
// broadcast encryption (IBBE), pairing-free, via a trusted Private Key
// Generator.
//
// The paper (Section III-E) describes IBE as a scheme where "public keys can
// be any arbitrary string ... like email addresses", with a trusted third
// party, the Private Key Generator (PKG), producing the corresponding
// private keys; and IBBE as its broadcast form where "the username or e-mail
// addresses of the members can be used as their public key", making
// recipient removal free ("Removing a recipient from the list would then
// have no extra cost").
//
// Substitution (DESIGN.md §2): the pairing-based Boneh–Franklin / Delerablée
// constructions are replaced by a PKG that deterministically derives a P-256
// keypair from (master secret, identity). The PKG publishes identity public
// keys through a public directory operation (DirectoryLookup) — senders need
// no interaction with the recipient, preserving the IBE usage model — and
// issues private keys to authenticated identity owners (Extract). IBBE
// ciphertexts wrap a session key per recipient, so ciphertext size is
// O(recipients) rather than Delerablée's O(1); EXPERIMENTS.md reports the
// measured growth and flags the deviation. Recipient *removal* remains free,
// matching the survey's claim.
package ibe

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"sync"

	"godosn/internal/crypto/prf"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/crypto/symmetric"
	"godosn/internal/parallel"
)

// Errors returned by this package.
var (
	ErrNoRecipients  = errors.New("ibe: no recipients")
	ErrNotRecipient  = errors.New("ibe: identity is not a recipient of this broadcast")
	ErrBadCiphertext = errors.New("ibe: malformed ciphertext")
)

// PKG is the trusted Private Key Generator. It is safe for concurrent use.
type PKG struct {
	mu     sync.RWMutex
	master []byte
	cache  map[string]*identityKeys
}

type identityKeys struct {
	pair   *pubkey.EncryptionKeyPair
	public *pubkey.EncryptionPublicKey
}

// NewPKG creates a PKG with a fresh random master secret.
func NewPKG() (*PKG, error) {
	master := make([]byte, 32)
	if _, err := io.ReadFull(rand.Reader, master); err != nil {
		return nil, fmt.Errorf("ibe: generating master secret: %w", err)
	}
	return &PKG{master: master, cache: make(map[string]*identityKeys)}, nil
}

// derive deterministically produces the identity keypair.
func (p *PKG) derive(identity string) (*identityKeys, error) {
	p.mu.RLock()
	if k, ok := p.cache[identity]; ok {
		p.mu.RUnlock()
		return k, nil
	}
	p.mu.RUnlock()

	seed, err := prf.Derive(p.master, "godosn/ibe/identity-v1/"+identity, 32)
	if err != nil {
		return nil, fmt.Errorf("ibe: deriving identity seed: %w", err)
	}
	pair, err := deterministicKey(seed)
	if err != nil {
		return nil, err
	}
	k := &identityKeys{pair: pair, public: pair.Public()}
	p.mu.Lock()
	p.cache[identity] = k
	p.mu.Unlock()
	return k, nil
}

// deterministicKey derives a P-256 keypair from seed material, retrying the
// derivation with a fresh counter until the scalar lands in range.
func deterministicKey(seed []byte) (*pubkey.EncryptionKeyPair, error) {
	for counter := 0; counter < 64; counter++ {
		material, err := prf.Derive(seed, fmt.Sprintf("godosn/ibe/keygen/%d", counter), 32)
		if err != nil {
			return nil, err
		}
		pair, err := pubkey.EncryptionKeyPairFromPrivateBytes(material)
		if err == nil {
			return pair, nil
		}
	}
	return nil, errors.New("ibe: could not derive key from seed")
}

// IdentityKey is the private key the PKG issues to an identity owner.
type IdentityKey struct {
	// Identity is the string identity (e.g. an email address).
	Identity string

	pair *pubkey.EncryptionKeyPair
}

// Extract issues the private key for an identity. In a deployment this is
// gated on authenticating ownership of the identity; the framework models
// that check at the social layer.
func (p *PKG) Extract(identity string) (*IdentityKey, error) {
	k, err := p.derive(identity)
	if err != nil {
		return nil, err
	}
	return &IdentityKey{Identity: identity, pair: k.pair}, nil
}

// DirectoryLookup returns the public key for an identity. It is a public
// operation: any sender may call it, mirroring IBE's "encrypt to a string"
// usage model.
func (p *PKG) DirectoryLookup(identity string) (*pubkey.EncryptionPublicKey, error) {
	k, err := p.derive(identity)
	if err != nil {
		return nil, err
	}
	return k.public, nil
}

// Encrypt encrypts plaintext to a single identity (plain IBE).
func (p *PKG) Encrypt(identity string, plaintext []byte) ([]byte, error) {
	pk, err := p.DirectoryLookup(identity)
	if err != nil {
		return nil, err
	}
	ct, err := pubkey.Encrypt(pk, plaintext)
	if err != nil {
		return nil, fmt.Errorf("ibe: encrypting to %q: %w", identity, err)
	}
	return ct, nil
}

// Decrypt decrypts a plain IBE ciphertext with the identity's private key.
func (k *IdentityKey) Decrypt(ciphertext []byte) ([]byte, error) {
	plaintext, err := k.pair.Decrypt(ciphertext)
	if err != nil {
		return nil, fmt.Errorf("ibe: decrypting for %q: %w", k.Identity, err)
	}
	return plaintext, nil
}

// Broadcast is an IBBE ciphertext addressed to a list of identities.
type Broadcast struct {
	// Recipients is the public recipient list, as in IBBE where the
	// broadcaster "selects a group of identities".
	Recipients []string
	// WrappedKeys holds the per-recipient wrap of the session key, indexed
	// like Recipients.
	WrappedKeys [][]byte
	// Body is the session-key-encrypted payload.
	Body []byte
}

// Size returns the approximate serialized size in bytes.
func (b *Broadcast) Size() int {
	n := len(b.Body)
	for i, r := range b.Recipients {
		n += len(r) + len(b.WrappedKeys[i])
	}
	return n
}

// EncryptBroadcast encrypts plaintext to every listed identity, fanning the
// per-recipient session-key wraps out over all CPUs.
func (p *PKG) EncryptBroadcast(recipients []string, plaintext []byte) (*Broadcast, error) {
	return p.EncryptBroadcastWorkers(recipients, plaintext, 0)
}

// EncryptBroadcastWorkers is EncryptBroadcast with an explicit worker bound
// for the per-recipient wraps (0 = all CPUs, 1 = serial). The broadcast is
// identical at any setting: wraps are collected in recipient order.
func (p *PKG) EncryptBroadcastWorkers(recipients []string, plaintext []byte, workers int) (*Broadcast, error) {
	if len(recipients) == 0 {
		return nil, ErrNoRecipients
	}
	session, err := symmetric.NewKey()
	if err != nil {
		return nil, fmt.Errorf("ibe: generating session key: %w", err)
	}
	// Each wrap is an independent directory lookup (concurrency-safe) plus
	// an ECIES encryption — the O(recipients) cost of the broadcast.
	wraps, err := parallel.Map(workers, recipients, func(_ int, id string) ([]byte, error) {
		pk, err := p.DirectoryLookup(id)
		if err != nil {
			return nil, err
		}
		w, err := pubkey.Encrypt(pk, session)
		if err != nil {
			return nil, fmt.Errorf("ibe: wrapping session key for %q: %w", id, err)
		}
		return w, nil
	})
	if err != nil {
		return nil, err
	}
	body, err := symmetric.Seal(session, plaintext, nil)
	if err != nil {
		return nil, fmt.Errorf("ibe: sealing broadcast body: %w", err)
	}
	return &Broadcast{
		Recipients:  append([]string(nil), recipients...),
		WrappedKeys: wraps,
		Body:        body,
	}, nil
}

// UnwrapSession recovers the broadcast's session key for one of its listed
// recipients — the public-key phase of DecryptBroadcast, split out so callers
// can memoize the session key per (recipient, broadcast) and skip the ECIES
// unwrap on repeat reads.
func (k *IdentityKey) UnwrapSession(b *Broadcast) ([]byte, error) {
	if b == nil || len(b.Recipients) != len(b.WrappedKeys) {
		return nil, ErrBadCiphertext
	}
	idx := -1
	for i, id := range b.Recipients {
		if id == k.Identity {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, ErrNotRecipient
	}
	session, err := k.pair.Decrypt(b.WrappedKeys[idx])
	if err != nil {
		return nil, fmt.Errorf("ibe: unwrapping session key: %w", err)
	}
	return session, nil
}

// OpenBroadcast opens a broadcast body with an already-unwrapped session key
// — the symmetric phase of DecryptBroadcast.
func OpenBroadcast(session []byte, b *Broadcast) ([]byte, error) {
	if b == nil {
		return nil, ErrBadCiphertext
	}
	plaintext, err := symmetric.Open(session, b.Body, nil)
	if err != nil {
		return nil, fmt.Errorf("ibe: opening broadcast body: %w", err)
	}
	return plaintext, nil
}

// DecryptBroadcast decrypts a broadcast for one of its listed recipients:
// UnwrapSession followed by OpenBroadcast.
func (k *IdentityKey) DecryptBroadcast(b *Broadcast) ([]byte, error) {
	session, err := k.UnwrapSession(b)
	if err != nil {
		return nil, err
	}
	return OpenBroadcast(session, b)
}
