package abe

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
	"sync"

	"godosn/internal/crypto/prf"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/crypto/shamir"
	"godosn/internal/crypto/symmetric"
)

// Authority is the attribute authority: it owns one keypair per attribute,
// publishes the public parameters, and issues user keys.
//
// An Authority is safe for concurrent use.
type Authority struct {
	mu sync.RWMutex
	// epoch increments on every revocation-driven re-key (Section III-D:
	// "usual revocation methods for ABE use frequent re-keying").
	epoch uint64
	attrs map[string]*attributeKeys
	sig   *pubkey.SigningKeyPair
}

// attributeKeys holds the secret and public half of one attribute parameter.
type attributeKeys struct {
	secret *pubkey.EncryptionKeyPair
	public *pubkey.EncryptionPublicKey
}

// NewAuthority creates an authority managing the given attribute universe.
// Attributes can be added later with AddAttribute.
func NewAuthority(universe ...string) (*Authority, error) {
	sig, err := pubkey.NewSigningKeyPair()
	if err != nil {
		return nil, fmt.Errorf("abe: creating authority signer: %w", err)
	}
	a := &Authority{
		epoch: 1,
		attrs: make(map[string]*attributeKeys),
		sig:   sig,
	}
	for _, attr := range universe {
		if err := a.AddAttribute(attr); err != nil {
			return nil, err
		}
	}
	return a, nil
}

// AddAttribute registers a new attribute in the universe. Adding an existing
// attribute is a no-op.
func (a *Authority) AddAttribute(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.attrs[name]; ok {
		return nil
	}
	kp, err := pubkey.NewEncryptionKeyPair()
	if err != nil {
		return fmt.Errorf("abe: generating attribute %q parameter: %w", name, err)
	}
	a.attrs[name] = &attributeKeys{secret: kp, public: kp.Public()}
	return nil
}

// Epoch returns the current re-keying epoch.
func (a *Authority) Epoch() uint64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.epoch
}

// PublicParams returns the public encryption parameters: one public key per
// attribute, at the current epoch. The result is a snapshot safe to retain.
type PublicParams struct {
	// Epoch is the re-keying epoch these parameters belong to.
	Epoch uint64
	// Attrs maps attribute name to its public parameter.
	Attrs map[string]*pubkey.EncryptionPublicKey
	// Verification verifies authority-issued key policies (KP-ABE).
	Verification pubkey.VerificationKey
}

// PublicParams returns a snapshot of the authority's public parameters.
func (a *Authority) PublicParams() *PublicParams {
	a.mu.RLock()
	defer a.mu.RUnlock()
	attrs := make(map[string]*pubkey.EncryptionPublicKey, len(a.attrs))
	for name, ak := range a.attrs {
		attrs[name] = ak.public
	}
	return &PublicParams{Epoch: a.epoch, Attrs: attrs, Verification: a.sig.Verification()}
}

// UserKey is a CP-ABE decryption key: the attribute secrets for the user's
// attribute set, issued at a particular epoch.
type UserKey struct {
	// Epoch is the epoch the key was issued at; keys from earlier epochs
	// cannot decrypt ciphertexts created after a revocation re-key.
	Epoch uint64
	// Attributes is the user's attribute set, as issued.
	Attributes []string

	secrets map[string]*pubkey.EncryptionKeyPair
}

// IssueKey issues a CP-ABE key for the given attribute set. Every attribute
// must exist in the universe.
func (a *Authority) IssueKey(attributes []string) (*UserKey, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	secrets := make(map[string]*pubkey.EncryptionKeyPair, len(attributes))
	for _, attr := range attributes {
		ak, ok := a.attrs[attr]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
		}
		secrets[attr] = ak.secret
	}
	return &UserKey{
		Epoch:      a.epoch,
		Attributes: append([]string(nil), attributes...),
		secrets:    secrets,
	}, nil
}

// Revoke performs the re-keying step the paper describes for ABE revocation:
// every attribute held by the revoked user gets a fresh parameter and the
// epoch advances. Previously issued keys for those attributes stop working
// for new ciphertexts; already-published data must be re-encrypted by its
// owners (measured in experiment E2).
func (a *Authority) Revoke(revokedAttributes []string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, attr := range revokedAttributes {
		if _, ok := a.attrs[attr]; !ok {
			return fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
		}
		kp, err := pubkey.NewEncryptionKeyPair()
		if err != nil {
			return fmt.Errorf("abe: re-keying attribute %q: %w", attr, err)
		}
		a.attrs[attr] = &attributeKeys{secret: kp, public: kp.Public()}
	}
	a.epoch++
	return nil
}

// Ciphertext is a CP-ABE ciphertext.
type Ciphertext struct {
	// Epoch records the parameter epoch used at encryption time.
	Epoch uint64
	// Policy is the access structure; it is public, as in CP-ABE.
	Policy *Policy
	// Shares maps share index to the ECIES-wrapped Shamir share for the
	// corresponding policy leaf.
	Shares map[uint32][]byte
	// Body is the AES-GCM payload under the shared seed-derived key.
	Body []byte
}

// Size returns the total serialized size in bytes of the ciphertext,
// approximating wire cost for the size experiments (E3).
func (c *Ciphertext) Size() int {
	n := 8 + len(c.Body) + len(c.Policy.String())
	for _, s := range c.Shares {
		n += 4 + len(s)
	}
	return n
}

const seedContext = "godosn/abe/seed-v1"

// Encrypt encrypts plaintext under the access policy using the public
// parameters. Any party holding PublicParams can encrypt (standard CP-ABE).
func Encrypt(params *PublicParams, policy *Policy, plaintext []byte) (*Ciphertext, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	for _, attr := range policy.Attributes() {
		if _, ok := params.Attrs[attr]; !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
		}
	}
	// Fresh seed in the Shamir field.
	seedKey, err := symmetric.NewKey()
	if err != nil {
		return nil, fmt.Errorf("abe: sampling seed: %w", err)
	}
	seed := new(big.Int).SetBytes(seedKey)
	seed.Mod(seed, shamir.Prime())

	ct := &Ciphertext{
		Epoch:  params.Epoch,
		Policy: policy,
		Shares: make(map[uint32][]byte),
	}
	var nextIdx uint32 = 1
	if err := shareTree(params, policy, seed, ct, &nextIdx); err != nil {
		return nil, err
	}
	key, err := seedToKey(seed)
	if err != nil {
		return nil, err
	}
	body, err := symmetric.Seal(key, plaintext, []byte(policy.String()))
	if err != nil {
		return nil, fmt.Errorf("abe: sealing body: %w", err)
	}
	ct.Body = body
	return ct, nil
}

// shareTree recursively Shamir-shares secret down the policy tree, wrapping
// leaf shares to the leaf attribute parameters. Leaf share indices are
// assigned depth-first and recorded in ct.Shares; internal structure is
// reproducible from the public policy, so only leaf wraps are stored.
func shareTree(params *PublicParams, node *Policy, secret *big.Int, ct *Ciphertext, nextIdx *uint32) error {
	if node.Kind == GateLeaf {
		idx := *nextIdx
		*nextIdx++
		pk := params.Attrs[node.Attribute]
		wrapped, err := pubkey.Encrypt(pk, secret.Bytes())
		if err != nil {
			return fmt.Errorf("abe: wrapping share for %q: %w", node.Attribute, err)
		}
		ct.Shares[idx] = wrapped
		return nil
	}
	shares, err := shamir.Split(secret, node.threshold(), len(node.Children))
	if err != nil {
		return fmt.Errorf("abe: sharing at gate: %w", err)
	}
	for i, child := range node.Children {
		if err := shareTree(params, child, shares[i].Y, ct, nextIdx); err != nil {
			return err
		}
	}
	return nil
}

// RecoverKey runs the public-key phase of Decrypt — policy satisfaction,
// share unwrapping, Shamir interpolation, and payload-key derivation — and
// returns the payload key. It is split out so callers can memoize the key per
// (reader, ciphertext) and skip the share recovery on repeat reads; OpenBody
// completes the decryption.
func (k *UserKey) RecoverKey(ct *Ciphertext) (symmetric.Key, error) {
	if ct == nil || ct.Policy == nil {
		return nil, ErrBadPolicy
	}
	if !ct.Policy.Satisfied(k.Attributes) {
		return nil, ErrNotSatisfied
	}
	var nextIdx uint32 = 1
	seed, err := recoverTree(k, ct.Policy, ct, &nextIdx)
	if err != nil {
		return nil, err
	}
	return seedToKey(seed)
}

// OpenBody opens the ciphertext body with an already-recovered payload key —
// the symmetric phase of Decrypt.
func OpenBody(key symmetric.Key, ct *Ciphertext) ([]byte, error) {
	if ct == nil || ct.Policy == nil {
		return nil, ErrBadPolicy
	}
	plaintext, err := symmetric.Open(key, ct.Body, []byte(ct.Policy.String()))
	if err != nil {
		return nil, fmt.Errorf("abe: opening body: %w", err)
	}
	return plaintext, nil
}

// Decrypt recovers the plaintext if the key's attributes satisfy the
// ciphertext policy and the key epoch matches the ciphertext epoch:
// RecoverKey followed by OpenBody.
func (k *UserKey) Decrypt(ct *Ciphertext) ([]byte, error) {
	key, err := k.RecoverKey(ct)
	if err != nil {
		return nil, err
	}
	return OpenBody(key, ct)
}

// recoverTree walks the policy tree, decrypting leaf shares the key can open
// and interpolating gate secrets bottom-up. It returns nil secret with
// ErrNotSatisfied when a needed subtree cannot be recovered.
func recoverTree(k *UserKey, node *Policy, ct *Ciphertext, nextIdx *uint32) (*big.Int, error) {
	if node.Kind == GateLeaf {
		idx := *nextIdx
		*nextIdx++
		sk, ok := k.secrets[node.Attribute]
		if !ok {
			return nil, ErrNotSatisfied
		}
		wrapped, ok := ct.Shares[idx]
		if !ok {
			return nil, fmt.Errorf("%w: missing share %d", ErrBadPolicy, idx)
		}
		raw, err := sk.Decrypt(wrapped)
		if err != nil {
			// A wrap that no longer opens (e.g. the attribute was re-keyed
			// after a revocation) counts as an unsatisfied leaf, so an OR
			// branch over a still-valid attribute can proceed.
			return nil, ErrNotSatisfied
		}
		return new(big.Int).SetBytes(raw), nil
	}
	need := node.threshold()
	recovered := make([]shamir.Share, 0, need)
	for i, child := range node.Children {
		// Every child consumes its leaf index range whether or not we can
		// open it, so indices stay aligned with shareTree's assignment.
		before := *nextIdx
		sec, err := recoverTree(k, child, ct, nextIdx)
		if err != nil {
			// Structural errors abort; unsatisfied subtrees are skipped.
			if !isUnsatisfied(err) {
				return nil, err
			}
			*nextIdx = before + child.leafCount()
			continue
		}
		if len(recovered) < need {
			recovered = append(recovered, shamir.Share{X: uint32(i + 1), Y: sec})
		}
	}
	if len(recovered) < need {
		return nil, ErrNotSatisfied
	}
	secret, err := shamir.Combine(recovered[:need])
	if err != nil {
		return nil, fmt.Errorf("abe: combining at gate: %w", err)
	}
	return secret, nil
}

func isUnsatisfied(err error) bool {
	return errors.Is(err, ErrNotSatisfied)
}

// leafCount returns the number of leaves under the node.
func (p *Policy) leafCount() uint32 {
	if p.Kind == GateLeaf {
		return 1
	}
	var n uint32
	for _, c := range p.Children {
		n += c.leafCount()
	}
	return n
}

// seedToKey derives the payload AES key from the shared seed.
func seedToKey(seed *big.Int) (symmetric.Key, error) {
	h := sha256.Sum256(seed.Bytes())
	key, err := prf.Derive(h[:], seedContext, symmetric.KeySize)
	if err != nil {
		return nil, fmt.Errorf("abe: deriving payload key: %w", err)
	}
	return key, nil
}
