package abe

import (
	"bytes"
	"errors"
	"testing"
)

// The two-phase decrypt API: RecoverKey then OpenBody must compose to
// exactly Decrypt, and the recovered payload key must be reusable across
// opens (the property the privacy layer's key cache relies on).

func TestRecoverKeyOpenBodyCompose(t *testing.T) {
	auth, err := NewAuthority("relative", "doctor")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	pol, err := ParsePolicy("(relative AND doctor)")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	ct, err := Encrypt(auth.PublicParams(), pol, []byte("two-phase"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	key, err := auth.IssueKey([]string{"relative", "doctor"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	payloadKey, err := key.RecoverKey(ct)
	if err != nil {
		t.Fatalf("RecoverKey: %v", err)
	}
	for i := 0; i < 2; i++ {
		pt, err := OpenBody(payloadKey, ct)
		if err != nil || !bytes.Equal(pt, []byte("two-phase")) {
			t.Fatalf("OpenBody %d: %q, %v", i, pt, err)
		}
	}
	whole, err := key.Decrypt(ct)
	if err != nil || !bytes.Equal(whole, []byte("two-phase")) {
		t.Fatalf("Decrypt: %q, %v", whole, err)
	}
}

func TestRecoverKeyUnsatisfiedAndRevoked(t *testing.T) {
	auth, err := NewAuthority("relative", "doctor")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	pol, err := ParsePolicy("(relative AND doctor)")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	ct, err := Encrypt(auth.PublicParams(), pol, []byte("guarded"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	partial, err := auth.IssueKey([]string{"relative"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	if _, err := partial.RecoverKey(ct); !errors.Is(err, ErrNotSatisfied) {
		t.Fatalf("RecoverKey with partial attributes = %v; want ErrNotSatisfied", err)
	}
	// A pre-revocation key cannot recover the payload key of a ciphertext
	// encrypted under re-keyed parameters.
	full, err := auth.IssueKey([]string{"relative", "doctor"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	if err := auth.Revoke([]string{"relative", "doctor"}); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	fresh, err := Encrypt(auth.PublicParams(), pol, []byte("post-rekey"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := full.RecoverKey(fresh); !errors.Is(err, ErrNotSatisfied) {
		t.Fatalf("RecoverKey with stale key = %v; want ErrNotSatisfied", err)
	}
}
