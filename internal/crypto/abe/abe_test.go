package abe

import (
	"bytes"
	"testing"
)

func newTestAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority("relative", "doctor", "painter", "friend", "colleague")
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

func TestCPABERoundTrip(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	tests := []struct {
		name   string
		policy string
		attrs  []string
	}{
		{"single attr", "relative", []string{"relative"}},
		{"and", "(relative AND doctor)", []string{"relative", "doctor"}},
		{"or left", "(relative OR painter)", []string{"relative"}},
		{"or right", "(relative OR painter)", []string{"painter"}},
		{"threshold", "2-of(relative, doctor, painter)", []string{"doctor", "painter"}},
		{"nested", "(friend AND (relative OR doctor))", []string{"friend", "doctor"}},
		{"extra attrs", "relative", []string{"relative", "colleague", "painter"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			pol, err := ParsePolicy(tt.policy)
			if err != nil {
				t.Fatalf("ParsePolicy: %v", err)
			}
			ct, err := Encrypt(params, pol, []byte("come to my party"))
			if err != nil {
				t.Fatalf("Encrypt: %v", err)
			}
			key, err := auth.IssueKey(tt.attrs)
			if err != nil {
				t.Fatalf("IssueKey: %v", err)
			}
			got, err := key.Decrypt(ct)
			if err != nil {
				t.Fatalf("Decrypt: %v", err)
			}
			if string(got) != "come to my party" {
				t.Fatalf("got %q", got)
			}
		})
	}
}

func TestCPABEUnsatisfiedFails(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	tests := []struct {
		policy string
		attrs  []string
	}{
		{"(relative AND doctor)", []string{"relative"}},
		{"(relative AND doctor)", []string{"doctor", "painter"}},
		{"relative", []string{"doctor"}},
		{"2-of(relative, doctor, painter)", []string{"relative"}},
		{"relative", nil},
	}
	for _, tt := range tests {
		pol, _ := ParsePolicy(tt.policy)
		ct, err := Encrypt(params, pol, []byte("secret"))
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		key, err := auth.IssueKey(tt.attrs)
		if err != nil {
			t.Fatalf("IssueKey: %v", err)
		}
		if _, err := key.Decrypt(ct); err == nil {
			t.Errorf("policy %q decrypted with attrs %v", tt.policy, tt.attrs)
		}
	}
}

func TestCPABEUnknownAttributeRejected(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	pol, _ := ParsePolicy("martian")
	if _, err := Encrypt(params, pol, []byte("x")); err == nil {
		t.Fatal("encrypted under unknown attribute")
	}
	if _, err := auth.IssueKey([]string{"martian"}); err == nil {
		t.Fatal("issued key for unknown attribute")
	}
}

func TestRevocationBlocksNewCiphertexts(t *testing.T) {
	auth := newTestAuthority(t)
	oldParams := auth.PublicParams()
	oldKey, err := auth.IssueKey([]string{"relative"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	pol, _ := ParsePolicy("relative")

	oldCt, err := Encrypt(oldParams, pol, []byte("before revocation"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if _, err := oldKey.Decrypt(oldCt); err != nil {
		t.Fatalf("pre-revocation decrypt: %v", err)
	}

	if err := auth.Revoke([]string{"relative"}); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	if auth.Epoch() != oldParams.Epoch+1 {
		t.Fatalf("epoch did not advance")
	}
	newParams := auth.PublicParams()
	newCt, err := Encrypt(newParams, pol, []byte("after revocation"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	// The revoked key must not open post-revocation ciphertexts...
	if _, err := oldKey.Decrypt(newCt); err == nil {
		t.Fatal("revoked key decrypted new ciphertext")
	}
	// ...but prior ciphertexts remain readable until re-encrypted, which is
	// exactly the re-encryption overhead the paper attributes to ABE.
	if _, err := oldKey.Decrypt(oldCt); err != nil {
		t.Fatalf("old ciphertext became unreadable: %v", err)
	}
	// A freshly issued key works with new parameters.
	freshKey, err := auth.IssueKey([]string{"relative"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	got, err := freshKey.Decrypt(newCt)
	if err != nil || string(got) != "after revocation" {
		t.Fatalf("fresh key decrypt: %v", err)
	}
}

func TestRevokedAttributeORBranchStillWorks(t *testing.T) {
	auth := newTestAuthority(t)
	key, err := auth.IssueKey([]string{"relative", "doctor"})
	if err != nil {
		t.Fatalf("IssueKey: %v", err)
	}
	if err := auth.Revoke([]string{"relative"}); err != nil {
		t.Fatalf("Revoke: %v", err)
	}
	// Key's doctor attribute is still valid; (relative OR doctor) under the
	// new params must decrypt via the doctor branch.
	pol, _ := ParsePolicy("(relative OR doctor)")
	ct, err := Encrypt(auth.PublicParams(), pol, []byte("still visible"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	got, err := key.Decrypt(ct)
	if err != nil || string(got) != "still visible" {
		t.Fatalf("OR branch decrypt after partial revocation: %v", err)
	}
}

func TestCiphertextSizeGrowsWithPolicy(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	small, _ := ParsePolicy("relative")
	big, _ := ParsePolicy("(relative AND doctor AND painter AND friend AND colleague)")
	pt := []byte("same payload")
	ctSmall, err := Encrypt(params, small, pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	ctBig, err := Encrypt(params, big, pt)
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	if ctBig.Size() <= ctSmall.Size() {
		t.Fatalf("ciphertext size did not grow with policy: %d vs %d", ctBig.Size(), ctSmall.Size())
	}
}

func TestTamperedCiphertextFails(t *testing.T) {
	auth := newTestAuthority(t)
	pol, _ := ParsePolicy("relative")
	ct, err := Encrypt(auth.PublicParams(), pol, []byte("payload"))
	if err != nil {
		t.Fatalf("Encrypt: %v", err)
	}
	key, _ := auth.IssueKey([]string{"relative"})
	ct.Body[len(ct.Body)-1] ^= 1
	if _, err := key.Decrypt(ct); err == nil {
		t.Fatal("tampered body decrypted")
	}
}

func TestAddAttributeIdempotent(t *testing.T) {
	auth := newTestAuthority(t)
	before := auth.PublicParams().Attrs["relative"]
	if err := auth.AddAttribute("relative"); err != nil {
		t.Fatalf("AddAttribute: %v", err)
	}
	after := auth.PublicParams().Attrs["relative"]
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("re-adding attribute rotated its parameter")
	}
}

func TestKPABERoundTrip(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	pol, _ := ParsePolicy("(relative AND doctor)")
	key, err := auth.IssueKPKey(pol)
	if err != nil {
		t.Fatalf("IssueKPKey: %v", err)
	}
	ct, err := EncryptKP(params, []string{"relative", "doctor", "painter"}, []byte("kp message"))
	if err != nil {
		t.Fatalf("EncryptKP: %v", err)
	}
	got, err := key.Decrypt(params, ct)
	if err != nil {
		t.Fatalf("Decrypt: %v", err)
	}
	if string(got) != "kp message" {
		t.Fatalf("got %q", got)
	}
}

func TestKPABEPolicyNotSatisfied(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	pol, _ := ParsePolicy("(relative AND doctor)")
	key, _ := auth.IssueKPKey(pol)
	ct, err := EncryptKP(params, []string{"relative", "painter"}, []byte("x"))
	if err != nil {
		t.Fatalf("EncryptKP: %v", err)
	}
	if _, err := key.Decrypt(params, ct); err == nil {
		t.Fatal("KP key decrypted ciphertext not satisfying its policy")
	}
}

func TestKPABEForgedPolicyRejected(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	narrow, _ := ParsePolicy("(relative AND doctor)")
	key, _ := auth.IssueKPKey(narrow)
	// Attacker widens the certified policy without a matching signature.
	key.Policy, _ = ParsePolicy("(relative OR doctor)")
	ct, _ := EncryptKP(params, []string{"relative"}, []byte("x"))
	if _, err := key.Decrypt(params, ct); err == nil {
		t.Fatal("forged key policy accepted")
	}
}

func TestKPABEUnknownAttribute(t *testing.T) {
	auth := newTestAuthority(t)
	params := auth.PublicParams()
	if _, err := EncryptKP(params, []string{"martian"}, []byte("x")); err == nil {
		t.Fatal("encrypted with unknown attribute label")
	}
	pol, _ := ParsePolicy("martian")
	if _, err := auth.IssueKPKey(pol); err == nil {
		t.Fatal("issued KP key over unknown attribute")
	}
}

func TestKPABEEmptyAttributes(t *testing.T) {
	auth := newTestAuthority(t)
	if _, err := EncryptKP(auth.PublicParams(), nil, []byte("x")); err == nil {
		t.Fatal("encrypted with empty attribute set")
	}
}
