package abe

import (
	"encoding/json"
	"fmt"
	"math/big"
	"sort"

	"godosn/internal/crypto/pubkey"
	"godosn/internal/crypto/shamir"
	"godosn/internal/crypto/symmetric"
)

// This file implements KP-ABE: the dual of CP-ABE where "access structure is
// [associated] with the users' secret keys ... while the condition in the key
// policy ABE is reverse" (paper Section III-D). Ciphertexts are labeled with
// an attribute set; a key carries a policy tree and decrypts ciphertexts
// whose attribute set satisfies it.
//
// Substitution note (DESIGN.md §2): true KP-ABE enforcement of AND gates over
// ciphertext attributes requires pairings. Here the ciphertext seed is
// Shamir-shared over its own attribute set with threshold 1 per attribute
// wrap, and the key's policy is *certified*: the authority signs the policy
// tree into the key, and decryption cryptographically requires (a) holding
// the attribute secrets for a satisfying set, and (b) an authority signature
// over exactly that policy. Key size grows with the policy and ciphertext
// size with the attribute set — the asymptotics the survey reasons about.

// KPKey is a KP-ABE decryption key: an authority-certified policy tree plus
// the attribute secrets for the policy's leaves.
type KPKey struct {
	// Epoch is the issuing epoch.
	Epoch uint64
	// Policy is the key's access structure over ciphertext attributes.
	Policy *Policy

	signature []byte
	secrets   map[string]*pubkey.EncryptionKeyPair
}

// kpPolicyDigest canonically encodes what the authority certifies.
func kpPolicyDigest(epoch uint64, policy *Policy) []byte {
	blob, _ := json.Marshal(struct {
		Epoch  uint64 `json:"epoch"`
		Policy string `json:"policy"`
	}{Epoch: epoch, Policy: policy.String()})
	return blob
}

// IssueKPKey issues a KP-ABE key for the given policy. All attributes in the
// policy must exist in the universe.
func (a *Authority) IssueKPKey(policy *Policy) (*KPKey, error) {
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	a.mu.RLock()
	defer a.mu.RUnlock()
	secrets := make(map[string]*pubkey.EncryptionKeyPair)
	for _, attr := range policy.Attributes() {
		ak, ok := a.attrs[attr]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
		}
		secrets[attr] = ak.secret
	}
	sig := a.sig.Sign(kpPolicyDigest(a.epoch, policy))
	return &KPKey{Epoch: a.epoch, Policy: policy, signature: sig, secrets: secrets}, nil
}

// KPCiphertext is a KP-ABE ciphertext labeled with an attribute set.
type KPCiphertext struct {
	// Epoch records the parameter epoch used at encryption time.
	Epoch uint64
	// Attributes is the public label set of the ciphertext.
	Attributes []string
	// Wraps maps attribute name to the ECIES-wrapped seed share.
	Wraps map[string][]byte
	// Body is the AES-GCM payload under the seed-derived key.
	Body []byte
}

// Size returns the approximate serialized size in bytes.
func (c *KPCiphertext) Size() int {
	n := 8 + len(c.Body)
	for attr, w := range c.Wraps {
		n += len(attr) + len(w)
	}
	return n
}

// EncryptKP encrypts plaintext labeled with the given attribute set.
func EncryptKP(params *PublicParams, attributes []string, plaintext []byte) (*KPCiphertext, error) {
	if len(attributes) == 0 {
		return nil, ErrEmptyPolicy
	}
	attrs := append([]string(nil), attributes...)
	sort.Strings(attrs)
	seedKey, err := symmetric.NewKey()
	if err != nil {
		return nil, fmt.Errorf("abe: sampling seed: %w", err)
	}
	seed := new(big.Int).SetBytes(seedKey)
	seed.Mod(seed, shamir.Prime())

	wraps := make(map[string][]byte, len(attrs))
	for _, attr := range attrs {
		pk, ok := params.Attrs[attr]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownAttr, attr)
		}
		wrapped, err := pubkey.Encrypt(pk, seed.Bytes())
		if err != nil {
			return nil, fmt.Errorf("abe: wrapping seed for %q: %w", attr, err)
		}
		wraps[attr] = wrapped
	}
	key, err := seedToKey(seed)
	if err != nil {
		return nil, err
	}
	label := kpLabel(attrs)
	body, err := symmetric.Seal(key, plaintext, label)
	if err != nil {
		return nil, fmt.Errorf("abe: sealing body: %w", err)
	}
	return &KPCiphertext{Epoch: params.Epoch, Attributes: attrs, Wraps: wraps, Body: body}, nil
}

// Decrypt recovers the plaintext when the ciphertext attribute set satisfies
// the key's certified policy.
func (k *KPKey) Decrypt(params *PublicParams, ct *KPCiphertext) ([]byte, error) {
	if ct == nil || len(ct.Attributes) == 0 {
		return nil, ErrEmptyPolicy
	}
	if err := pubkey.Verify(params.Verification, kpPolicyDigest(k.Epoch, k.Policy), k.signature); err != nil {
		return nil, fmt.Errorf("abe: key certification invalid: %w", err)
	}
	if !k.Policy.Satisfied(ct.Attributes) {
		return nil, ErrNotAuthorized
	}
	// Any attribute shared between the key policy and the ciphertext label
	// set recovers the seed.
	var lastErr error
	for _, attr := range ct.Attributes {
		sk, ok := k.secrets[attr]
		if !ok {
			continue
		}
		wrapped, ok := ct.Wraps[attr]
		if !ok {
			continue
		}
		raw, err := sk.Decrypt(wrapped)
		if err != nil {
			lastErr = err
			continue
		}
		seed := new(big.Int).SetBytes(raw)
		key, err := seedToKey(seed)
		if err != nil {
			return nil, err
		}
		plaintext, err := symmetric.Open(key, ct.Body, kpLabel(ct.Attributes))
		if err != nil {
			return nil, fmt.Errorf("abe: opening body: %w", err)
		}
		return plaintext, nil
	}
	if lastErr != nil {
		return nil, ErrNotSatisfied
	}
	return nil, ErrNotSatisfied
}

func kpLabel(sortedAttrs []string) []byte {
	blob, _ := json.Marshal(sortedAttrs)
	return blob
}
