package abe

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestParsePolicy(t *testing.T) {
	tests := []struct {
		in   string
		want *Policy
	}{
		{"relative", Attr("relative")},
		{"(relative AND doctor)", And(Attr("relative"), Attr("doctor"))},
		{"(relative OR painter)", Or(Attr("relative"), Attr("painter"))},
		{"(a and b and c)", And(Attr("a"), Attr("b"), Attr("c"))},
		{"(a OR (b AND c))", Or(Attr("a"), And(Attr("b"), Attr("c")))},
		{"2-of(a, b, c)", Threshold(2, Attr("a"), Attr("b"), Attr("c"))},
		{"2-of(a, (b AND c), d)", Threshold(2, Attr("a"), And(Attr("b"), Attr("c")), Attr("d"))},
		{"(x)", Attr("x")},
	}
	for _, tt := range tests {
		t.Run(tt.in, func(t *testing.T) {
			got, err := ParsePolicy(tt.in)
			if err != nil {
				t.Fatalf("ParsePolicy(%q): %v", tt.in, err)
			}
			if !reflect.DeepEqual(got, tt.want) {
				t.Fatalf("ParsePolicy(%q) = %s, want %s", tt.in, got, tt.want)
			}
		})
	}
}

func TestParsePolicyErrors(t *testing.T) {
	for _, in := range []string{
		"", "()", "(a AND)", "(a AND b OR c)", "(a", "a b",
		"0-of(a)", "3-of(a, b)", "(AND a b)",
	} {
		if _, err := ParsePolicy(in); err == nil {
			t.Errorf("ParsePolicy(%q) succeeded, want error", in)
		}
	}
}

func TestPolicyRoundTripThroughString(t *testing.T) {
	policies := []*Policy{
		Attr("a"),
		And(Attr("a"), Attr("b")),
		Or(And(Attr("a"), Attr("b")), Attr("c")),
		Threshold(2, Attr("a"), Attr("b"), Attr("c")),
	}
	for _, p := range policies {
		got, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", p.String(), err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip %q: got %s", p.String(), got)
		}
	}
}

func TestSatisfied(t *testing.T) {
	pol := Or(And(Attr("relative"), Attr("doctor")), Attr("admin"))
	tests := []struct {
		attrs []string
		want  bool
	}{
		{[]string{"relative", "doctor"}, true},
		{[]string{"admin"}, true},
		{[]string{"relative"}, false},
		{[]string{"doctor"}, false},
		{nil, false},
		{[]string{"relative", "doctor", "admin"}, true},
	}
	for _, tt := range tests {
		if got := pol.Satisfied(tt.attrs); got != tt.want {
			t.Errorf("Satisfied(%v) = %v, want %v", tt.attrs, got, tt.want)
		}
	}
}

func TestThresholdSatisfied(t *testing.T) {
	pol := Threshold(2, Attr("a"), Attr("b"), Attr("c"))
	if pol.Satisfied([]string{"a"}) {
		t.Error("1 of 3 satisfied a 2-threshold")
	}
	if !pol.Satisfied([]string{"a", "c"}) {
		t.Error("2 of 3 did not satisfy a 2-threshold")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Policy{
		nil,
		{Kind: GateLeaf},
		{Kind: GateAnd},
		{Kind: GateThreshold, K: 0, Children: []*Policy{Attr("a")}},
		{Kind: GateThreshold, K: 2, Children: []*Policy{Attr("a")}},
		{Kind: GateKind(99), Children: []*Policy{Attr("a")}},
		{Kind: GateLeaf, Attribute: "a", Children: []*Policy{Attr("b")}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid policy", i)
		}
	}
}

func TestAttributes(t *testing.T) {
	pol := Or(And(Attr("b"), Attr("a")), Attr("c"), Attr("a"))
	got := pol.Attributes()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Attributes() = %v, want %v", got, want)
	}
}

func TestLeafCount(t *testing.T) {
	pol := Or(And(Attr("a"), Attr("b")), Threshold(1, Attr("c"), Attr("d"), Attr("e")))
	if got := pol.leafCount(); got != 5 {
		t.Fatalf("leafCount = %d, want 5", got)
	}
}

func TestQuickSatisfiedMonotone(t *testing.T) {
	// Monotonicity: adding attributes never unsatisfies a policy.
	pol := Or(And(Attr("a"), Attr("b")), Threshold(2, Attr("c"), Attr("d"), Attr("e")))
	all := []string{"a", "b", "c", "d", "e", "f"}
	f := func(mask, extra uint8) bool {
		var subset []string
		for i, a := range all {
			if mask&(1<<i) != 0 {
				subset = append(subset, a)
			}
		}
		superset := append(append([]string(nil), subset...), all[int(extra)%len(all)])
		if pol.Satisfied(subset) && !pol.Satisfied(superset) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
