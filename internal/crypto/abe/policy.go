// Package abe implements attribute-based encryption (CP-ABE and KP-ABE) over
// monotone boolean access structures, pairing-free.
//
// The paper (Section III-D) classifies ABE as the data-privacy mechanism used
// by Persona and Cachet: a message is encrypted under an access structure
// (a logical expression over attributes such as ('relative' OR 'painter')),
// and a user holding a key for a satisfying attribute set decrypts.
//
// Construction (documented substitution; see DESIGN.md §2). The pairing-based
// schemes the paper cites (Bethencourt et al., Goyal et al.) are replaced by:
//
//   - An Authority publishes, per attribute, a P-256 public parameter; it
//     keeps the matching private scalar as the attribute secret.
//   - CP-ABE Encrypt compiles the policy into a tree of threshold gates,
//     Shamir-shares a fresh message seed down the tree, and encrypts each
//     leaf share to the leaf attribute's public parameter (ECIES).
//   - A user key is the set of attribute private keys for the user's
//     attributes; Decrypt recovers exactly the leaf shares for attributes the
//     user holds and reconstructs the seed if and only if the tree is
//     satisfied.
//
// The access-structure semantics, the cost structure the survey reasons about
// (single encryption per group, ciphertext growing with the policy,
// revocation forcing re-keying plus re-encryption of prior data), and the key
// distribution model are all preserved. The known deviation is collusion
// resistance across users, which fundamentally requires pairings; the
// Authority issuing per-user randomized keys is out of scope and flagged in
// DESIGN.md.
package abe

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// GateKind distinguishes the node types of a policy tree.
type GateKind int

// Policy node kinds.
const (
	GateLeaf GateKind = iota + 1
	GateAnd
	GateOr
	GateThreshold
)

// Policy is a node of a monotone access-structure tree.
type Policy struct {
	Kind GateKind
	// Attribute is set for GateLeaf nodes.
	Attribute string
	// K is the threshold for GateThreshold nodes (k of len(Children)).
	K int
	// Children are the sub-policies for non-leaf nodes.
	Children []*Policy
}

// Errors returned by policy handling.
var (
	ErrEmptyPolicy   = errors.New("abe: empty policy")
	ErrBadPolicy     = errors.New("abe: malformed policy")
	ErrParse         = errors.New("abe: policy parse error")
	ErrNotSatisfied  = errors.New("abe: key attributes do not satisfy policy")
	ErrUnknownAttr   = errors.New("abe: unknown attribute")
	ErrNotAuthorized = errors.New("abe: key policy does not cover ciphertext attributes")
)

// Attr returns a leaf policy requiring the given attribute.
func Attr(name string) *Policy {
	return &Policy{Kind: GateLeaf, Attribute: name}
}

// And returns a policy satisfied only when all children are satisfied.
func And(children ...*Policy) *Policy {
	return &Policy{Kind: GateAnd, Children: children}
}

// Or returns a policy satisfied when any child is satisfied.
func Or(children ...*Policy) *Policy {
	return &Policy{Kind: GateOr, Children: children}
}

// Threshold returns a policy satisfied when at least k children are.
func Threshold(k int, children ...*Policy) *Policy {
	return &Policy{Kind: GateThreshold, K: k, Children: children}
}

// Validate checks structural well-formedness of the policy tree.
func (p *Policy) Validate() error {
	if p == nil {
		return ErrEmptyPolicy
	}
	switch p.Kind {
	case GateLeaf:
		if p.Attribute == "" {
			return fmt.Errorf("%w: leaf with empty attribute", ErrBadPolicy)
		}
		if len(p.Children) != 0 {
			return fmt.Errorf("%w: leaf with children", ErrBadPolicy)
		}
		return nil
	case GateAnd, GateOr:
		if len(p.Children) == 0 {
			return fmt.Errorf("%w: gate with no children", ErrBadPolicy)
		}
	case GateThreshold:
		if len(p.Children) == 0 {
			return fmt.Errorf("%w: threshold with no children", ErrBadPolicy)
		}
		if p.K < 1 || p.K > len(p.Children) {
			return fmt.Errorf("%w: threshold %d of %d", ErrBadPolicy, p.K, len(p.Children))
		}
	default:
		return fmt.Errorf("%w: unknown gate kind %d", ErrBadPolicy, p.Kind)
	}
	for _, c := range p.Children {
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// threshold returns the effective Shamir threshold of the node.
func (p *Policy) threshold() int {
	switch p.Kind {
	case GateAnd:
		return len(p.Children)
	case GateOr:
		return 1
	case GateThreshold:
		return p.K
	default:
		return 1
	}
}

// Satisfied reports whether the given attribute set satisfies the policy.
func (p *Policy) Satisfied(attrs []string) bool {
	set := make(map[string]struct{}, len(attrs))
	for _, a := range attrs {
		set[a] = struct{}{}
	}
	return p.satisfied(set)
}

func (p *Policy) satisfied(set map[string]struct{}) bool {
	if p == nil {
		return false
	}
	if p.Kind == GateLeaf {
		_, ok := set[p.Attribute]
		return ok
	}
	count := 0
	for _, c := range p.Children {
		if c.satisfied(set) {
			count++
		}
	}
	return count >= p.threshold()
}

// Attributes returns the sorted set of attributes mentioned in the policy.
func (p *Policy) Attributes() []string {
	set := make(map[string]struct{})
	p.collectAttrs(set)
	out := make([]string, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

func (p *Policy) collectAttrs(set map[string]struct{}) {
	if p == nil {
		return
	}
	if p.Kind == GateLeaf {
		set[p.Attribute] = struct{}{}
		return
	}
	for _, c := range p.Children {
		c.collectAttrs(set)
	}
}

// String renders the policy in the surface syntax accepted by ParsePolicy.
func (p *Policy) String() string {
	if p == nil {
		return ""
	}
	switch p.Kind {
	case GateLeaf:
		return p.Attribute
	case GateAnd:
		return "(" + joinPolicies(p.Children, " AND ") + ")"
	case GateOr:
		return "(" + joinPolicies(p.Children, " OR ") + ")"
	case GateThreshold:
		return fmt.Sprintf("%d-of(%s)", p.K, joinPolicies(p.Children, ", "))
	default:
		return "<invalid>"
	}
}

func joinPolicies(ps []*Policy, sep string) string {
	parts := make([]string, len(ps))
	for i, c := range ps {
		parts[i] = c.String()
	}
	return strings.Join(parts, sep)
}

// ParsePolicy parses the textual policy syntax used throughout the examples:
//
//	relative
//	(relative AND doctor)
//	(relative OR painter)
//	2-of(relative, doctor, painter)
//
// AND and OR are case insensitive and may not be mixed within a single
// parenthesis group without nesting.
func ParsePolicy(s string) (*Policy, error) {
	p := &policyParser{input: s}
	pol, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.input) {
		return nil, fmt.Errorf("%w: trailing input at %d", ErrParse, p.pos)
	}
	if err := pol.Validate(); err != nil {
		return nil, err
	}
	return pol, nil
}

type policyParser struct {
	input string
	pos   int
}

func (p *policyParser) skipSpace() {
	for p.pos < len(p.input) && (p.input[p.pos] == ' ' || p.input[p.pos] == '\t') {
		p.pos++
	}
}

func (p *policyParser) parseExpr() (*Policy, error) {
	p.skipSpace()
	if p.pos >= len(p.input) {
		return nil, fmt.Errorf("%w: unexpected end of input", ErrParse)
	}
	// k-of(...) threshold form.
	if pol, ok, err := p.tryThreshold(); err != nil {
		return nil, err
	} else if ok {
		return pol, nil
	}
	if p.input[p.pos] == '(' {
		return p.parseGroup()
	}
	return p.parseLeaf()
}

func (p *policyParser) tryThreshold() (*Policy, bool, error) {
	save := p.pos
	numEnd := p.pos
	for numEnd < len(p.input) && p.input[numEnd] >= '0' && p.input[numEnd] <= '9' {
		numEnd++
	}
	if numEnd == p.pos || !strings.HasPrefix(p.input[numEnd:], "-of(") {
		p.pos = save
		return nil, false, nil
	}
	k := 0
	for _, ch := range p.input[p.pos:numEnd] {
		k = k*10 + int(ch-'0')
	}
	p.pos = numEnd + len("-of(")
	var children []*Policy
	for {
		child, err := p.parseExpr()
		if err != nil {
			return nil, false, err
		}
		children = append(children, child)
		p.skipSpace()
		if p.pos < len(p.input) && p.input[p.pos] == ',' {
			p.pos++
			continue
		}
		break
	}
	p.skipSpace()
	if p.pos >= len(p.input) || p.input[p.pos] != ')' {
		return nil, false, fmt.Errorf("%w: expected ')' at %d", ErrParse, p.pos)
	}
	p.pos++
	return Threshold(k, children...), true, nil
}

func (p *policyParser) parseGroup() (*Policy, error) {
	p.pos++ // consume '('
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	children := []*Policy{first}
	var op string
	for {
		p.skipSpace()
		if p.pos < len(p.input) && p.input[p.pos] == ')' {
			p.pos++
			break
		}
		word := p.peekWord()
		upper := strings.ToUpper(word)
		if upper != "AND" && upper != "OR" {
			return nil, fmt.Errorf("%w: expected AND/OR at %d, got %q", ErrParse, p.pos, word)
		}
		if op == "" {
			op = upper
		} else if op != upper {
			return nil, fmt.Errorf("%w: mixed AND/OR without nesting at %d", ErrParse, p.pos)
		}
		p.pos += len(word)
		child, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		children = append(children, child)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	if op == "AND" {
		return And(children...), nil
	}
	return Or(children...), nil
}

func (p *policyParser) peekWord() string {
	p.skipSpace()
	end := p.pos
	for end < len(p.input) && isWordChar(p.input[end]) {
		end++
	}
	return p.input[p.pos:end]
}

func (p *policyParser) parseLeaf() (*Policy, error) {
	p.skipSpace()
	end := p.pos
	for end < len(p.input) && isWordChar(p.input[end]) {
		end++
	}
	if end == p.pos {
		return nil, fmt.Errorf("%w: expected attribute at %d", ErrParse, p.pos)
	}
	name := p.input[p.pos:end]
	p.pos = end
	return Attr(name), nil
}

func isWordChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	case c == '_', c == '-', c == ':', c == '.':
		return true
	default:
		return false
	}
}
