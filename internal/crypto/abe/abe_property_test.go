package abe

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickDecryptIffSatisfied is the core ABE correctness property: for
// random policies and random attribute subsets, decryption succeeds exactly
// when the attribute set satisfies the policy.
func TestQuickDecryptIffSatisfied(t *testing.T) {
	universe := []string{"a", "b", "c", "d", "e"}
	auth, err := NewAuthority(universe...)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	params := auth.PublicParams()

	f := func(policySeed int64, attrMask uint8) bool {
		rng := rand.New(rand.NewSource(policySeed))
		policy := randomPolicy(rng, universe, 0)
		if policy.Validate() != nil {
			return true // generator should not produce these; skip if so
		}
		var attrs []string
		for i, a := range universe {
			if attrMask&(1<<i) != 0 {
				attrs = append(attrs, a)
			}
		}
		ct, err := Encrypt(params, policy, []byte("payload"))
		if err != nil {
			return false
		}
		key, err := auth.IssueKey(attrs)
		if err != nil {
			return false
		}
		pt, err := key.Decrypt(ct)
		satisfied := policy.Satisfied(attrs)
		if satisfied {
			return err == nil && string(pt) == "payload"
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// randomPolicy builds a random monotone policy of bounded depth.
func randomPolicy(rng *rand.Rand, universe []string, depth int) *Policy {
	if depth >= 2 || rng.Intn(3) == 0 {
		return Attr(universe[rng.Intn(len(universe))])
	}
	nChildren := rng.Intn(3) + 2
	children := make([]*Policy, nChildren)
	for i := range children {
		children[i] = randomPolicy(rng, universe, depth+1)
	}
	switch rng.Intn(3) {
	case 0:
		return And(children...)
	case 1:
		return Or(children...)
	default:
		return Threshold(rng.Intn(nChildren)+1, children...)
	}
}

// TestQuickKPDecryptIffSatisfied is the dual property for KP-ABE.
func TestQuickKPDecryptIffSatisfied(t *testing.T) {
	universe := []string{"a", "b", "c", "d"}
	auth, err := NewAuthority(universe...)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	params := auth.PublicParams()

	f := func(policySeed int64, labelMask uint8) bool {
		rng := rand.New(rand.NewSource(policySeed))
		policy := randomPolicy(rng, universe, 0)
		var labels []string
		for i, a := range universe {
			if labelMask&(1<<i) != 0 {
				labels = append(labels, a)
			}
		}
		if len(labels) == 0 {
			return true
		}
		key, err := auth.IssueKPKey(policy)
		if err != nil {
			return false
		}
		ct, err := EncryptKP(params, labels, []byte("payload"))
		if err != nil {
			return false
		}
		pt, err := key.Decrypt(params, ct)
		if policy.Satisfied(labels) {
			return err == nil && string(pt) == "payload"
		}
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestDeepNestedPolicies exercises multi-level trees deterministically.
func TestDeepNestedPolicies(t *testing.T) {
	auth, _ := NewAuthority("a", "b", "c", "d", "e", "f")
	params := auth.PublicParams()
	policy, err := ParsePolicy("((a AND b) OR 2-of(c, d, (e AND f)))")
	if err != nil {
		t.Fatalf("ParsePolicy: %v", err)
	}
	cases := []struct {
		attrs []string
		want  bool
	}{
		{[]string{"a", "b"}, true},
		{[]string{"c", "d"}, true},
		{[]string{"c", "e", "f"}, true},
		{[]string{"d", "e", "f"}, true},
		{[]string{"a", "c"}, false},
		{[]string{"e", "f"}, false},
		{[]string{"a", "d"}, false},
	}
	for _, tc := range cases {
		ct, err := Encrypt(params, policy, []byte("x"))
		if err != nil {
			t.Fatalf("Encrypt: %v", err)
		}
		key, err := auth.IssueKey(tc.attrs)
		if err != nil {
			t.Fatalf("IssueKey: %v", err)
		}
		_, err = key.Decrypt(ct)
		if (err == nil) != tc.want {
			t.Errorf("attrs %v: decrypt success=%v, want %v", tc.attrs, err == nil, tc.want)
		}
	}
}
