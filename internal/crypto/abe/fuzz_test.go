package abe

import "testing"

// FuzzParsePolicy ensures the policy parser never panics and that anything
// it accepts round-trips through String() to an equivalent policy.
func FuzzParsePolicy(f *testing.F) {
	for _, seed := range []string{
		"relative",
		"(relative AND doctor)",
		"(relative OR painter)",
		"2-of(a, b, c)",
		"((a AND b) OR 2-of(c, d, (e AND f)))",
		"(a AND b OR c)",
		"0-of(a)",
		"(",
		"",
		"9999999999-of(a)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, input string) {
		p, err := ParsePolicy(input)
		if err != nil {
			return
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("ParsePolicy accepted invalid policy %q: %v", input, err)
		}
		// Round-trip: the rendered form must re-parse to the same tree.
		again, err := ParsePolicy(p.String())
		if err != nil {
			t.Fatalf("re-parse of %q (from %q) failed: %v", p.String(), input, err)
		}
		if again.String() != p.String() {
			t.Fatalf("round trip drift: %q -> %q", p.String(), again.String())
		}
	})
}
