// Package centralized models the centralized OSN of the paper's Section
// II-A — the architecture whose "security issues raised by the central
// service provider" motivate DOSNs — together with the two mitigation
// approaches the paper surveys for it.
//
// The Provider exhibits the three threats the paper lists:
//
//   - Data retention: "Provider takes backups of users' data and when users
//     delete their data, service provider may pretend to delete, but
//     nothing may change from the provider's view." Delete removes the item
//     from the user-visible store but the backup keeps it.
//   - OSN employee browsing private information: EmployeeBrowse returns
//     everything the provider can read for a user.
//   - Selling of data: SellUserData extracts the plaintext-readable
//     interest profile an advertiser would buy.
//
// Two mitigations run ON TOP of the same provider:
//
//   - flyByNight-style proxy cryptography (pre package): users upload only
//     PRE ciphertext; the provider re-encrypts per friend using delegated
//     re-keys but can never read content.
//   - VPSN-style substitution: profile fields visible to the provider are
//     plausible fakes; real values travel out of band to friends.
//
// The Knowledge report quantifies the provider's view under each mode —
// experiment E11 compares them against the DOSN.
package centralized

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"godosn/internal/crypto/pre"
)

// Errors returned by this package.
var (
	ErrUnknownUser = errors.New("centralized: unknown user")
	ErrNoSuchItem  = errors.New("centralized: no such item")
	ErrNoDelegate  = errors.New("centralized: no re-encryption key for recipient")
	ErrNotPlain    = errors.New("centralized: item is not plaintext")
)

// Item is one stored piece of user content.
type Item struct {
	// ID identifies the item within the owner's store.
	ID string
	// Plaintext holds readable content ("" when encrypted).
	Plaintext string
	// Ciphertext holds PRE ciphertext for flyByNight items (nil otherwise).
	Ciphertext *pre.Ciphertext
	// Fake holds the substituted value shown for VPSN items.
	Fake string
}

// readable reports whether the provider can read the item's real content.
func (it *Item) readable() bool { return it.Plaintext != "" && it.Ciphertext == nil }

// Provider is the central OSN operator: it stores everything, backs
// everything up, and can inspect whatever is plaintext.
type Provider struct {
	mu sync.Mutex
	// store is the user-visible data.
	store map[string]map[string]*Item
	// backup is the retention copy that survives deletes.
	backup map[string]map[string]*Item
	// edges is the social graph the provider observes.
	edges map[string]map[string]bool
	// rekeys holds delegated PRE re-encryption keys: owner -> friend -> rk.
	rekeys map[string]map[string]*pre.ReKey
	// retention controls whether Delete really deletes from backup.
	honestDeletes bool
}

// NewProvider creates a provider. honestDeletes=false reproduces the data
// retention threat.
func NewProvider(honestDeletes bool) *Provider {
	return &Provider{
		store:         make(map[string]map[string]*Item),
		backup:        make(map[string]map[string]*Item),
		edges:         make(map[string]map[string]bool),
		rekeys:        make(map[string]map[string]*pre.ReKey),
		honestDeletes: honestDeletes,
	}
}

// Register creates a user account.
func (p *Provider) Register(user string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store[user] == nil {
		p.store[user] = make(map[string]*Item)
		p.backup[user] = make(map[string]*Item)
		p.edges[user] = make(map[string]bool)
	}
}

// Connect records a friendship — visible to the provider, as the paper
// stresses ("It also knows the social graph").
func (p *Provider) Connect(a, b string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.edges[a] == nil || p.edges[b] == nil {
		return ErrUnknownUser
	}
	p.edges[a][b] = true
	p.edges[b][a] = true
	return nil
}

// put stores an item (and its backup copy).
func (p *Provider) put(user string, it *Item) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.store[user] == nil {
		return fmt.Errorf("%w: %s", ErrUnknownUser, user)
	}
	cp := *it
	p.store[user][it.ID] = it
	p.backup[user][it.ID] = &cp
	return nil
}

// UploadPlain stores plaintext content — the default centralized OSN flow.
func (p *Provider) UploadPlain(user, id, content string) error {
	return p.put(user, &Item{ID: id, Plaintext: content})
}

// UploadEncrypted stores flyByNight-style PRE ciphertext.
func (p *Provider) UploadEncrypted(user, id string, ct *pre.Ciphertext) error {
	return p.put(user, &Item{ID: id, Ciphertext: ct})
}

// UploadSubstituted stores a VPSN-style item: the provider sees the fake.
func (p *Provider) UploadSubstituted(user, id, fake string) error {
	return p.put(user, &Item{ID: id, Fake: fake, Plaintext: fake})
}

// Delegate registers a re-encryption key allowing the provider to transform
// owner's ciphertexts for friend.
func (p *Provider) Delegate(owner, friend string, rk *pre.ReKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rekeys[owner] == nil {
		p.rekeys[owner] = make(map[string]*pre.ReKey)
	}
	p.rekeys[owner][friend] = rk
}

// FetchFor serves an item to a friend. Plaintext items are returned as-is;
// encrypted items are proxy-re-encrypted for the recipient (the provider
// never decrypts).
func (p *Provider) FetchFor(owner, id, recipient string) (*Item, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	items, ok := p.store[owner]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownUser, owner)
	}
	it, ok := items[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoSuchItem, owner, id)
	}
	if it.Ciphertext == nil || recipient == owner {
		// Plaintext, or the owner fetching their own original ciphertext
		// (decryptable with their own key, no re-encryption needed).
		cp := *it
		return &cp, nil
	}
	rk := p.rekeys[owner][recipient]
	if rk == nil {
		return nil, fmt.Errorf("%w: %s -> %s", ErrNoDelegate, owner, recipient)
	}
	transformed, err := pre.ReEncrypt(rk, it.Ciphertext)
	if err != nil {
		return nil, fmt.Errorf("centralized: re-encrypting for %s: %w", recipient, err)
	}
	return &Item{ID: it.ID, Ciphertext: transformed}, nil
}

// Delete removes an item from the user-visible store. With dishonest
// retention the backup copy survives — the paper's data-retention threat.
func (p *Provider) Delete(user, id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.store[user], id)
	if p.honestDeletes {
		delete(p.backup[user], id)
	}
}

// EmployeeBrowse is the insider threat: everything the provider can read
// about a user, including retained "deleted" items.
func (p *Provider) EmployeeBrowse(user string) []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := map[string]bool{}
	var out []string
	for _, src := range []map[string]*Item{p.store[user], p.backup[user]} {
		for _, it := range src {
			if it.readable() && !seen[it.ID] {
				seen[it.ID] = true
				out = append(out, it.Plaintext)
			}
		}
	}
	sort.Strings(out)
	return out
}

// SellUserData models the advertising threat: the interest keywords an
// advertiser would receive, extracted from the provider-readable content.
func (p *Provider) SellUserData(user string) []string {
	browse := p.EmployeeBrowse(user)
	seen := map[string]bool{}
	var interests []string
	for _, content := range browse {
		for _, w := range strings.Fields(strings.ToLower(content)) {
			if len(w) >= 6 && !seen[w] {
				seen[w] = true
				interests = append(interests, w)
			}
		}
	}
	sort.Strings(interests)
	return interests
}

// Knowledge quantifies the provider's view of a user.
type Knowledge struct {
	// PlaintextItems the provider can read (including retained deletes).
	PlaintextItems int
	// OpaqueItems stored but unreadable (ciphertext).
	OpaqueItems int
	// FakeItems where the provider sees a decoy (counted in
	// PlaintextItems too — the provider cannot tell it is fake).
	FakeItems int
	// SocialEdges observed.
	SocialEdges int
	// RetainedDeleted counts "deleted" items still in backup.
	RetainedDeleted int
}

// KnowledgeOf reports what the provider knows about a user.
func (p *Provider) KnowledgeOf(user string) Knowledge {
	p.mu.Lock()
	defer p.mu.Unlock()
	var k Knowledge
	counted := map[string]bool{}
	for _, it := range p.store[user] {
		counted[it.ID] = true
		p.countItem(it, &k)
	}
	for id, it := range p.backup[user] {
		if !counted[id] {
			p.countItem(it, &k)
			k.RetainedDeleted++
		}
	}
	k.SocialEdges = len(p.edges[user])
	return k
}

func (p *Provider) countItem(it *Item, k *Knowledge) {
	switch {
	case it.Ciphertext != nil:
		k.OpaqueItems++
	case it.Fake != "":
		k.PlaintextItems++
		k.FakeItems++
	default:
		k.PlaintextItems++
	}
}

// Client is a flyByNight-style user agent: it holds the PRE key pair and
// never uploads plaintext.
type Client struct {
	// Name is the account name.
	Name string

	keys     *pre.KeyPair
	provider *Provider
}

// NewClient registers a user with the provider and provisions keys.
func NewClient(provider *Provider, name string) (*Client, error) {
	keys, err := pre.NewKeyPair()
	if err != nil {
		return nil, fmt.Errorf("centralized: provisioning %q: %w", name, err)
	}
	provider.Register(name)
	return &Client{Name: name, keys: keys, provider: provider}, nil
}

// Befriend connects two clients and delegates a re-encryption key so the
// provider can serve the friend without reading content. Both directions
// must be delegated separately.
func (c *Client) Befriend(friend *Client) error {
	if err := c.provider.Connect(c.Name, friend.Name); err != nil {
		return err
	}
	rk, err := pre.NewReKey(c.keys, friend.keys, c.Name, friend.Name)
	if err != nil {
		return err
	}
	c.provider.Delegate(c.Name, friend.Name, rk)
	return nil
}

// Post uploads content encrypted under the client's own key.
func (c *Client) Post(id, content string) error {
	ct, err := pre.Encrypt(c.keys.Public(), []byte(content))
	if err != nil {
		return fmt.Errorf("centralized: encrypting post: %w", err)
	}
	return c.provider.UploadEncrypted(c.Name, id, ct)
}

// Read fetches and decrypts a friend's item via provider re-encryption.
func (c *Client) Read(owner, id string) (string, error) {
	it, err := c.provider.FetchFor(owner, id, c.Name)
	if err != nil {
		return "", err
	}
	if it.Ciphertext == nil {
		return it.Plaintext, nil
	}
	pt, err := c.keys.Decrypt(it.Ciphertext)
	if err != nil {
		return "", fmt.Errorf("centralized: decrypting %s/%s: %w", owner, id, err)
	}
	return string(pt), nil
}
