package centralized

import (
	"errors"
	"strings"
	"testing"
)

func TestPlainCentralizedThreats(t *testing.T) {
	p := NewProvider(false) // dishonest retention
	p.Register("alice")
	p.Register("bob")
	p.Connect("alice", "bob")
	p.UploadPlain("alice", "post1", "visiting the oncology clinic tuesday")
	p.UploadPlain("alice", "post2", "birthday dinner downtown friday")

	// Employee browsing reads everything.
	browse := p.EmployeeBrowse("alice")
	if len(browse) != 2 {
		t.Fatalf("employee read %d items", len(browse))
	}

	// Data retention: deletion doesn't remove the backup.
	p.Delete("alice", "post1")
	browse = p.EmployeeBrowse("alice")
	if len(browse) != 2 {
		t.Fatalf("deleted item vanished from provider view: %d items", len(browse))
	}
	k := p.KnowledgeOf("alice")
	if k.RetainedDeleted != 1 {
		t.Fatalf("RetainedDeleted = %d", k.RetainedDeleted)
	}
	if k.PlaintextItems != 2 || k.SocialEdges != 1 {
		t.Fatalf("Knowledge = %+v", k)
	}

	// Selling data: interests extracted from plaintext.
	interests := p.SellUserData("alice")
	found := false
	for _, w := range interests {
		if strings.Contains(w, "oncology") {
			found = true
		}
	}
	if !found {
		t.Fatalf("sensitive interest not extracted: %v", interests)
	}
}

func TestHonestDeletion(t *testing.T) {
	p := NewProvider(true)
	p.Register("alice")
	p.UploadPlain("alice", "post1", "hello")
	p.Delete("alice", "post1")
	if got := p.EmployeeBrowse("alice"); len(got) != 0 {
		t.Fatalf("honest delete retained %v", got)
	}
}

func TestFlyByNightHidesContentFromProvider(t *testing.T) {
	p := NewProvider(false)
	alice, err := NewClient(p, "alice")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	bob, err := NewClient(p, "bob")
	if err != nil {
		t.Fatalf("NewClient: %v", err)
	}
	if err := alice.Befriend(bob); err != nil {
		t.Fatalf("Befriend: %v", err)
	}
	if err := alice.Post("p1", "medical appointment tuesday"); err != nil {
		t.Fatalf("Post: %v", err)
	}
	// Provider reads nothing.
	if got := p.EmployeeBrowse("alice"); len(got) != 0 {
		t.Fatalf("provider read encrypted content: %v", got)
	}
	k := p.KnowledgeOf("alice")
	if k.OpaqueItems != 1 || k.PlaintextItems != 0 {
		t.Fatalf("Knowledge = %+v", k)
	}
	// But the friend reads via proxy re-encryption.
	got, err := bob.Read("alice", "p1")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got != "medical appointment tuesday" {
		t.Fatalf("bob got %q", got)
	}
	// Alice reads her own items directly (no re-encryption needed).
	own, err := alice.Read("alice", "p1")
	if err != nil || own != "medical appointment tuesday" {
		t.Fatalf("self read: %q, %v", own, err)
	}
}

func TestFlyByNightNonFriendDenied(t *testing.T) {
	p := NewProvider(false)
	alice, _ := NewClient(p, "alice")
	eve, _ := NewClient(p, "eve")
	alice.Post("p1", "secret")
	if _, err := eve.Read("alice", "p1"); !errors.Is(err, ErrNoDelegate) {
		t.Fatalf("non-friend read: %v", err)
	}
}

func TestFlyByNightRetentionHarmless(t *testing.T) {
	// Even with dishonest deletion, retained flyByNight items stay opaque.
	p := NewProvider(false)
	alice, _ := NewClient(p, "alice")
	alice.Post("p1", "ephemeral thought")
	p.Delete("alice", "p1")
	if got := p.EmployeeBrowse("alice"); len(got) != 0 {
		t.Fatalf("provider read retained ciphertext: %v", got)
	}
	k := p.KnowledgeOf("alice")
	if k.RetainedDeleted != 1 || k.PlaintextItems != 0 {
		t.Fatalf("Knowledge = %+v", k)
	}
}

func TestVPSNSubstitution(t *testing.T) {
	p := NewProvider(false)
	p.Register("alice")
	p.UploadSubstituted("alice", "city", "Springfield")
	// The provider sees A value and cannot tell it's fake.
	browse := p.EmployeeBrowse("alice")
	if len(browse) != 1 || browse[0] != "Springfield" {
		t.Fatalf("provider view %v", browse)
	}
	k := p.KnowledgeOf("alice")
	if k.FakeItems != 1 {
		t.Fatalf("Knowledge = %+v", k)
	}
}

func TestFetchErrors(t *testing.T) {
	p := NewProvider(false)
	p.Register("alice")
	if _, err := p.FetchFor("ghost", "x", "bob"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("unknown user: %v", err)
	}
	if _, err := p.FetchFor("alice", "x", "bob"); !errors.Is(err, ErrNoSuchItem) {
		t.Fatalf("missing item: %v", err)
	}
	if err := p.Connect("alice", "ghost"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("connect unknown: %v", err)
	}
	if err := p.UploadPlain("ghost", "x", "y"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("upload unknown: %v", err)
	}
}
