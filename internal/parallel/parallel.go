// Package parallel provides a bounded, deterministic worker pool for the
// fan-out loops that dominate the framework's hot paths: per-member
// public-key wraps on group rekey (internal/social/privacy), archive
// re-encryption on revocation, replica contact in the DHT and replication
// manager, and independent experiments in the bench harness.
//
// Determinism contract (the property the seeded experiments rely on):
//
//   - Results are collected index-ordered: Map(w, items, f)[i] is f's result
//     for items[i] regardless of worker count or scheduling.
//   - On success the returned slice is byte-for-byte what the serial loop
//     would have produced, for any pure f.
//   - On failure the error returned is the failing call with the LOWEST
//     index among those that ran, so the surfaced error does not depend on
//     goroutine scheduling. Indices are claimed in increasing order, and
//     once a failure is observed no further indices are started
//     (first-error cancellation); already-started calls run to completion.
//
// workers <= 0 selects DefaultWorkers (GOMAXPROCS); workers == 1 runs the
// plain serial loop with classic stop-at-first-error semantics.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers is the worker count used when the caller passes <= 0:
// one worker per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// resolve normalizes a requested worker count against the item count.
func resolve(workers, items int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > items {
		workers = items
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// indexedErr pairs a failure with the index it occurred at.
type indexedErr struct {
	index int
	err   error
}

// Map applies f to every item on up to workers goroutines and returns the
// results index-ordered. See the package comment for the determinism
// contract. f must not mutate shared state without its own synchronization;
// the intended use is pure computation (crypto, encoding) whose results the
// caller merges into shared structures after Map returns.
func Map[T, R any](workers int, items []T, f func(i int, item T) (R, error)) ([]R, error) {
	results := make([]R, len(items))
	if len(items) == 0 {
		return results, nil
	}
	w := resolve(workers, len(items))
	if w == 1 {
		for i, item := range items {
			r, err := f(i, item)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next  atomic.Int64 // next index to claim
		stop  atomic.Bool  // set after the first observed failure
		mu    sync.Mutex
		first indexedErr = indexedErr{index: -1}
		wg    sync.WaitGroup
	)
	record := func(i int, err error) {
		stop.Store(true)
		mu.Lock()
		if first.index < 0 || i < first.index {
			first = indexedErr{index: i, err: err}
		}
		mu.Unlock()
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				r, err := f(i, items[i])
				if err != nil {
					record(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if first.index >= 0 {
		return nil, first.err
	}
	return results, nil
}

// ForEach applies f to every item on up to workers goroutines. It shares
// Map's claiming, cancellation, and lowest-index error semantics.
func ForEach[T any](workers int, items []T, f func(i int, item T) error) error {
	_, err := Map(workers, items, func(i int, item T) (struct{}, error) {
		return struct{}{}, f(i, item)
	})
	return err
}
