package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrdersResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, items, func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d]=%d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapMatchesSerial(t *testing.T) {
	items := make([]string, 257)
	for i := range items {
		items[i] = fmt.Sprintf("item-%03d", i)
	}
	f := func(i int, item string) (string, error) { return item + "!", nil }
	serial, err := Map(1, items, f)
	if err != nil {
		t.Fatal(err)
	}
	concurrent, err := Map(8, items, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if serial[i] != concurrent[i] {
			t.Fatalf("index %d: serial %q != concurrent %q", i, serial[i], concurrent[i])
		}
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	if got, err := Map(8, []int(nil), func(i, v int) (int, error) { return v, nil }); err != nil || len(got) != 0 {
		t.Fatalf("empty: got %v, %v", got, err)
	}
	got, err := Map(8, []int{41}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(got) != 1 || got[0] != 42 {
		t.Fatalf("single: got %v, %v", got, err)
	}
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	// Indices 30 and 70 both fail; the surfaced error must always be 30's,
	// regardless of worker count or scheduling.
	items := make([]int, 100)
	fail := map[int]bool{30: true, 70: true}
	for run := 0; run < 20; run++ {
		for _, workers := range []int{2, 4, 16} {
			_, err := Map(workers, items, func(i, item int) (int, error) {
				if fail[i] {
					return 0, fmt.Errorf("boom at %d", i)
				}
				return 0, nil
			})
			if err == nil || err.Error() != "boom at 30" {
				t.Fatalf("workers=%d run=%d: got error %v, want boom at 30", workers, run, err)
			}
		}
	}
}

func TestMapCancelsAfterError(t *testing.T) {
	// After the first failure no new indices should start (beyond the small
	// claim-race window); with a failure at index 0 and many items, far
	// fewer than all items must run.
	const n = 10000
	items := make([]int, n)
	var started atomic.Int64
	_, err := Map(4, items, func(i, item int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("immediate failure")
		}
		return 0, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if s := started.Load(); s >= n {
		t.Fatalf("cancellation did not stop the pool: %d of %d items ran", s, n)
	}
}

func TestForEachPropagatesError(t *testing.T) {
	sentinel := errors.New("sentinel")
	err := ForEach(4, []int{0, 1, 2, 3}, func(i, item int) error {
		if i == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

// TestMapRaceHammer drives many concurrent Map invocations, each with its
// own error/cancel churn, to give the race detector surface area over the
// claim counter, stop flag, and error recording.
func TestMapRaceHammer(t *testing.T) {
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			items := make([]int, 200)
			for run := 0; run < 25; run++ {
				failAt := (g*31 + run*7) % len(items)
				wantErr := run%2 == 0
				var counter atomic.Int64
				got, err := Map(3+g%4, items, func(i, item int) (int, error) {
					counter.Add(1)
					if wantErr && i >= failAt {
						return 0, fmt.Errorf("fail %d", i)
					}
					return i, nil
				})
				if wantErr {
					if err == nil || err.Error() != fmt.Sprintf("fail %d", failAt) {
						panic(fmt.Sprintf("goroutine %d run %d: got %v, want fail %d", g, run, err, failAt))
					}
				} else {
					if err != nil {
						panic(err)
					}
					for i, v := range got {
						if v != i {
							panic(fmt.Sprintf("goroutine %d: got[%d]=%d", g, i, v))
						}
					}
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestResolve(t *testing.T) {
	if w := resolve(0, 100); w != DefaultWorkers() && w != 100 {
		t.Fatalf("resolve(0,100)=%d", w)
	}
	if w := resolve(8, 3); w != 3 {
		t.Fatalf("resolve(8,3)=%d, want 3", w)
	}
	if w := resolve(-1, 0); w != 1 {
		t.Fatalf("resolve(-1,0)=%d, want 1", w)
	}
}
