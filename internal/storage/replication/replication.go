// Package replication models data availability through replica placement
// under churn — the core operational concern of DOSNs.
//
// Paper, Section I: "The main obstacle of decentralization is that users are
// responsible for their data availability. Users, their friends, or other
// peers need to be online for better availability. Also, proxy nodes can be
// used for storing users' data"; and "replication and caching are proven
// techniques to ensure availability". Experiment E7 sweeps replication
// factor against node uptime and measures retrieval success, which this
// package implements.
package replication

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"godosn/internal/parallel"
	"godosn/internal/storage/store"
)

// Errors returned by this package.
var (
	ErrNoReplicas   = errors.New("replication: object has no replica set")
	ErrNoneOnline   = errors.New("replication: no replica online")
	ErrUnknownPeer  = errors.New("replication: unknown peer")
	ErrNoPeers      = errors.New("replication: no peers registered")
	ErrBadReplicas  = errors.New("replication: replication factor must be >= 1")
	ErrObjectAbsent = errors.New("replication: replica does not hold object")
)

// PlacementPolicy selects which peers replicate an object.
type PlacementPolicy int

// Placement policies. RandomPeers spreads across the network; FriendPeers
// prefers the owner's friends ("users, their friends, or other peers");
// ProxyPeers models dedicated always-on proxy/storage nodes.
const (
	RandomPeers PlacementPolicy = iota + 1
	FriendPeers
	ProxyPeers
)

// String renders the policy name.
func (p PlacementPolicy) String() string {
	switch p {
	case RandomPeers:
		return "random"
	case FriendPeers:
		return "friends"
	case ProxyPeers:
		return "proxies"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Peer is a storage participant.
type Peer struct {
	// Name identifies the peer.
	Name string
	// Online is the peer's current liveness.
	Online bool
	// IsProxy marks dedicated storage nodes with high uptime.
	IsProxy bool
	// Store holds the peer's replicas.
	Store *store.Store
}

// Manager tracks peers and replica sets. It is not safe for concurrent use;
// experiments drive it single-threaded.
type Manager struct {
	rng      *rand.Rand
	peers    map[string]*Peer
	order    []string // deterministic iteration order
	friends  map[string][]string
	replicas map[store.Ref][]string
	// workers bounds the replica-write fan-out in Place (0 = all CPUs,
	// 1 = serial); see SetWorkers.
	workers int
}

// NewManager creates a manager with a deterministic RNG seed.
func NewManager(seed int64) *Manager {
	return &Manager{
		rng:      rand.New(rand.NewSource(seed)),
		peers:    make(map[string]*Peer),
		friends:  make(map[string][]string),
		replicas: make(map[store.Ref][]string),
	}
}

// SetWorkers bounds the worker pool used when Place writes an object to its
// k chosen replicas: 0 (the default) uses all CPUs, 1 forces the serial
// loop. Replica choice happens before the fan-out on the caller's RNG, so
// placement stays deterministic at any setting.
func (m *Manager) SetWorkers(n int) { m.workers = n }

// AddPeer registers a peer (online, non-proxy by default).
func (m *Manager) AddPeer(name string) *Peer {
	if p, ok := m.peers[name]; ok {
		return p
	}
	p := &Peer{Name: name, Online: true, Store: store.NewStore()}
	m.peers[name] = p
	m.order = append(m.order, name)
	return p
}

// AddProxy registers a dedicated proxy storage node.
func (m *Manager) AddProxy(name string) *Peer {
	p := m.AddPeer(name)
	p.IsProxy = true
	return p
}

// SetFriends records the owner's friend list for FriendPeers placement.
func (m *Manager) SetFriends(owner string, friends []string) {
	m.friends[owner] = append([]string(nil), friends...)
}

// SetOnline flips a peer's liveness (churn injection).
func (m *Manager) SetOnline(name string, online bool) error {
	p, ok := m.peers[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownPeer, name)
	}
	p.Online = online
	return nil
}

// Place replicates an object from its owner onto k peers chosen by policy.
// The owner itself always holds a copy (not counted in k).
func (m *Manager) Place(owner string, obj store.Object, k int, policy PlacementPolicy) ([]string, error) {
	if k < 1 {
		return nil, ErrBadReplicas
	}
	op, ok := m.peers[owner]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownPeer, owner)
	}
	if err := op.Store.Put(obj); err != nil {
		return nil, err
	}
	candidates := m.candidates(owner, policy)
	if len(candidates) == 0 {
		return nil, ErrNoPeers
	}
	if k > len(candidates) {
		k = len(candidates)
	}
	m.rng.Shuffle(len(candidates), func(i, j int) { candidates[i], candidates[j] = candidates[j], candidates[i] })
	chosen := candidates[:k]
	sort.Strings(chosen)
	// Fan the replica writes out: each Put verifies the object's content
	// address (a hash over the payload) against an independent store, so
	// the k writes parallelize cleanly.
	if err := parallel.ForEach(m.workers, chosen, func(_ int, name string) error {
		return m.peers[name].Store.Put(obj)
	}); err != nil {
		return nil, err
	}
	set := append([]string{owner}, chosen...)
	m.replicas[obj.Ref] = set
	return set, nil
}

// candidates lists placement candidates for the policy, excluding the owner.
func (m *Manager) candidates(owner string, policy PlacementPolicy) []string {
	var out []string
	switch policy {
	case FriendPeers:
		for _, f := range m.friends[owner] {
			if _, ok := m.peers[f]; ok && f != owner {
				out = append(out, f)
			}
		}
	case ProxyPeers:
		for _, name := range m.order {
			if p := m.peers[name]; p.IsProxy && name != owner {
				out = append(out, name)
			}
		}
	default: // RandomPeers
		for _, name := range m.order {
			if p := m.peers[name]; !p.IsProxy && name != owner {
				out = append(out, name)
			}
		}
	}
	return out
}

// Retrieve fetches an object from any online replica. It reports which
// replica served the request.
func (m *Manager) Retrieve(ref store.Ref) (store.Object, string, error) {
	set, ok := m.replicas[ref]
	if !ok {
		return store.Object{}, "", fmt.Errorf("%w: %s", ErrNoReplicas, ref)
	}
	for _, name := range set {
		p := m.peers[name]
		if p == nil || !p.Online {
			continue
		}
		obj, err := p.Store.Get(ref)
		if err != nil {
			return store.Object{}, "", fmt.Errorf("%w: %s@%s", ErrObjectAbsent, ref, name)
		}
		if err := obj.Verify(); err != nil {
			return store.Object{}, "", err
		}
		return obj, name, nil
	}
	return store.Object{}, "", ErrNoneOnline
}

// ReplicaSet returns the peers holding an object.
func (m *Manager) ReplicaSet(ref store.Ref) []string {
	return append([]string(nil), m.replicas[ref]...)
}

// ApplyChurn samples each non-proxy peer's liveness from uptime (probability
// of being online); proxies stay online. Deterministic given the manager's
// seed and call sequence.
func (m *Manager) ApplyChurn(uptime float64) {
	for _, name := range m.order {
		p := m.peers[name]
		if p.IsProxy {
			p.Online = true
			continue
		}
		p.Online = m.rng.Float64() < uptime
	}
}

// OnlineFraction reports the currently online fraction of peers.
func (m *Manager) OnlineFraction() float64 {
	if len(m.order) == 0 {
		return 0
	}
	online := 0
	for _, name := range m.order {
		if m.peers[name].Online {
			online++
		}
	}
	return float64(online) / float64(len(m.order))
}

// Availability runs trials retrievals of ref under repeated churn sampling
// at the given uptime and returns the success fraction — experiment E7's
// measurement primitive.
func (m *Manager) Availability(ref store.Ref, uptime float64, trials int) float64 {
	if trials <= 0 {
		return 0
	}
	success := 0
	for i := 0; i < trials; i++ {
		m.ApplyChurn(uptime)
		if _, _, err := m.Retrieve(ref); err == nil {
			success++
		}
	}
	return float64(success) / float64(trials)
}
