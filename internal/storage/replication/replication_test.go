package replication

import (
	"errors"
	"fmt"
	"testing"

	"godosn/internal/storage/store"
)

func newManager(t *testing.T, peers int) *Manager {
	t.Helper()
	m := NewManager(11)
	for i := 0; i < peers; i++ {
		m.AddPeer(fmt.Sprintf("peer-%d", i))
	}
	return m
}

func TestPlaceAndRetrieve(t *testing.T) {
	m := newManager(t, 10)
	obj := store.NewObject([]byte("payload"))
	set, err := m.Place("peer-0", obj, 3, RandomPeers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if len(set) != 4 { // owner + 3
		t.Fatalf("replica set size %d", len(set))
	}
	got, served, err := m.Retrieve(obj.Ref)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if string(got.Data) != "payload" || served == "" {
		t.Fatalf("Retrieve returned %q from %q", got.Data, served)
	}
}

func TestRetrieveFallsBackToReplicas(t *testing.T) {
	m := newManager(t, 10)
	obj := store.NewObject([]byte("x"))
	set, _ := m.Place("peer-0", obj, 3, RandomPeers)
	// Take the owner offline; replicas must serve.
	m.SetOnline("peer-0", false)
	_, served, err := m.Retrieve(obj.Ref)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if served == "peer-0" {
		t.Fatal("offline owner served")
	}
	// Take everything offline.
	for _, name := range set {
		m.SetOnline(name, false)
	}
	if _, _, err := m.Retrieve(obj.Ref); !errors.Is(err, ErrNoneOnline) {
		t.Fatalf("got %v, want ErrNoneOnline", err)
	}
}

func TestFriendPlacement(t *testing.T) {
	m := newManager(t, 10)
	m.SetFriends("peer-0", []string{"peer-3", "peer-7"})
	obj := store.NewObject([]byte("x"))
	set, err := m.Place("peer-0", obj, 5, FriendPeers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	for _, name := range set {
		if name != "peer-0" && name != "peer-3" && name != "peer-7" {
			t.Fatalf("non-friend %s in friend placement", name)
		}
	}
}

func TestProxyPlacement(t *testing.T) {
	m := newManager(t, 5)
	m.AddProxy("proxy-0")
	m.AddProxy("proxy-1")
	obj := store.NewObject([]byte("x"))
	set, err := m.Place("peer-0", obj, 2, ProxyPeers)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	proxies := 0
	for _, name := range set {
		if name == "proxy-0" || name == "proxy-1" {
			proxies++
		}
	}
	if proxies != 2 {
		t.Fatalf("placed on %d proxies, want 2", proxies)
	}
	// Proxies survive churn.
	m.ApplyChurn(0.0)
	if _, served, err := m.Retrieve(obj.Ref); err != nil || (served != "proxy-0" && served != "proxy-1") {
		t.Fatalf("proxy retrieval failed: %v (served %q)", err, served)
	}
}

func TestPlaceValidation(t *testing.T) {
	m := newManager(t, 3)
	obj := store.NewObject([]byte("x"))
	if _, err := m.Place("peer-0", obj, 0, RandomPeers); !errors.Is(err, ErrBadReplicas) {
		t.Fatalf("got %v, want ErrBadReplicas", err)
	}
	if _, err := m.Place("ghost", obj, 1, RandomPeers); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("got %v, want ErrUnknownPeer", err)
	}
}

func TestRetrieveUnknownObject(t *testing.T) {
	m := newManager(t, 3)
	if _, _, err := m.Retrieve(store.Ref("nothing")); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("got %v, want ErrNoReplicas", err)
	}
}

func TestSetOnlineUnknown(t *testing.T) {
	m := newManager(t, 1)
	if err := m.SetOnline("ghost", false); !errors.Is(err, ErrUnknownPeer) {
		t.Fatalf("got %v, want ErrUnknownPeer", err)
	}
}

func TestAvailabilityIncreasesWithReplication(t *testing.T) {
	// E7's core shape: more replicas -> higher availability at fixed uptime.
	avail := func(k int) float64 {
		m := NewManager(42)
		for i := 0; i < 50; i++ {
			m.AddPeer(fmt.Sprintf("p%d", i))
		}
		obj := store.NewObject([]byte("content"))
		if _, err := m.Place("p0", obj, k, RandomPeers); err != nil {
			t.Fatalf("Place: %v", err)
		}
		return m.Availability(obj.Ref, 0.5, 400)
	}
	a1 := avail(1)
	a4 := avail(4)
	if a4 <= a1 {
		t.Fatalf("availability did not increase with replication: k=1 %.2f, k=4 %.2f", a1, a4)
	}
	if a4 < 0.85 {
		t.Fatalf("k=4 at 50%% uptime should be ~0.97, got %.2f", a4)
	}
}

func TestAvailabilityIncreasesWithUptime(t *testing.T) {
	m := NewManager(43)
	for i := 0; i < 50; i++ {
		m.AddPeer(fmt.Sprintf("p%d", i))
	}
	obj := store.NewObject([]byte("content"))
	m.Place("p0", obj, 2, RandomPeers)
	low := m.Availability(obj.Ref, 0.2, 300)
	high := m.Availability(obj.Ref, 0.9, 300)
	if high <= low {
		t.Fatalf("availability did not increase with uptime: %.2f vs %.2f", low, high)
	}
}

func TestOnlineFraction(t *testing.T) {
	m := newManager(t, 4)
	if got := m.OnlineFraction(); got != 1.0 {
		t.Fatalf("OnlineFraction = %f", got)
	}
	m.SetOnline("peer-0", false)
	m.SetOnline("peer-1", false)
	if got := m.OnlineFraction(); got != 0.5 {
		t.Fatalf("OnlineFraction = %f", got)
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []PlacementPolicy{RandomPeers, FriendPeers, ProxyPeers, PlacementPolicy(9)} {
		if p.String() == "" {
			t.Fatal("empty policy name")
		}
	}
}
