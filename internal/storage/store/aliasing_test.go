package store

import (
	"bytes"
	"testing"
)

// Regression: the store must never alias caller-visible slices with its own
// state, in either direction — a caller mutating bytes it handed in or got
// back must not be able to corrupt stored content.
func TestGetAndPutReturnDetachedBytes(t *testing.T) {
	s := NewStore()
	data := []byte("immutable content bytes")
	orig := append([]byte(nil), data...)
	obj := NewObject(data)
	if err := s.Put(obj); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Mutate the slice we stored from: the store's copy must not move.
	data[0] ^= 0xFF
	got, err := s.Get(obj.Ref)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(got.Data, orig) {
		t.Fatal("mutating the Put slice corrupted the stored object")
	}
	// Mutate what Get returned: a re-read must be pristine.
	got.Data[1] ^= 0xFF
	again, err := s.Get(obj.Ref)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !bytes.Equal(again.Data, orig) {
		t.Fatal("mutating a Get result corrupted the stored object")
	}
	// Content addressing still verifies after all that mutation.
	if err := again.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}
