// Package store provides a content-addressed encrypted object store: the
// unit of storage the DOSN replicates across peers.
//
// In DOSNs "users replicate or cache data in other users of the OSN" (paper
// Section I); what is replicated must be ciphertext, since "the replica
// nodes are indeed another kind of service provider in a small scale". An
// Object therefore couples an opaque encrypted payload with its
// content-address (hash), so replicas can serve and verify data they cannot
// read.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Errors returned by this package.
var (
	ErrNotFound  = errors.New("store: object not found")
	ErrCorrupted = errors.New("store: object does not match its address")
)

// Ref is the content address of an object (hex SHA-256 of its bytes).
type Ref string

// RefOf computes the content address of a payload.
func RefOf(data []byte) Ref {
	h := sha256.Sum256(data)
	return Ref(hex.EncodeToString(h[:]))
}

// Object is an immutable, content-addressed blob — typically a ciphertext
// produced by one of the privacy schemes.
type Object struct {
	// Ref is the content address.
	Ref Ref
	// Data is the (usually encrypted) payload.
	Data []byte
}

// NewObject wraps a payload with its content address.
func NewObject(data []byte) Object {
	d := append([]byte(nil), data...)
	return Object{Ref: RefOf(d), Data: d}
}

// Verify checks the object against its content address.
func (o Object) Verify() error {
	if RefOf(o.Data) != o.Ref {
		return ErrCorrupted
	}
	return nil
}

// Store is an in-memory content-addressed store. It is safe for concurrent
// use; the zero value is NOT ready — use NewStore.
type Store struct {
	mu      sync.RWMutex
	objects map[Ref][]byte
}

// NewStore creates an empty store.
func NewStore() *Store {
	return &Store{objects: make(map[Ref][]byte)}
}

// Put stores an object after verifying its address. Putting an existing
// object is a no-op.
func (s *Store) Put(o Object) error {
	if err := o.Verify(); err != nil {
		return fmt.Errorf("store: put: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[o.Ref]; !ok {
		s.objects[o.Ref] = append([]byte(nil), o.Data...)
	}
	return nil
}

// Get retrieves an object by address.
func (s *Store) Get(ref Ref) (Object, error) {
	s.mu.RLock()
	data, ok := s.objects[ref]
	s.mu.RUnlock()
	if !ok {
		return Object{}, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return Object{Ref: ref, Data: append([]byte(nil), data...)}, nil
}

// Has reports whether the store holds the address.
func (s *Store) Has(ref Ref) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[ref]
	return ok
}

// Delete removes an object. Deleting an absent object is a no-op, mirroring
// the "data retention" caveat: a replica that ignores deletes is modeled by
// simply not calling this.
func (s *Store) Delete(ref Ref) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, ref)
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Refs lists all stored addresses in deterministic order.
func (s *Store) Refs() []Ref {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Ref, 0, len(s.objects))
	for r := range s.objects {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
