package store

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestPutGet(t *testing.T) {
	s := NewStore()
	obj := NewObject([]byte("ciphertext blob"))
	if err := s.Put(obj); err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(obj.Ref)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if string(got.Data) != "ciphertext blob" {
		t.Fatalf("got %q", got.Data)
	}
	if !s.Has(obj.Ref) {
		t.Fatal("Has = false")
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestGetMissing(t *testing.T) {
	s := NewStore()
	if _, err := s.Get(Ref("deadbeef")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestPutRejectsCorruptedObject(t *testing.T) {
	s := NewStore()
	obj := NewObject([]byte("data"))
	obj.Data = []byte("tampered")
	if err := s.Put(obj); !errors.Is(err, ErrCorrupted) {
		t.Fatalf("got %v, want ErrCorrupted", err)
	}
}

func TestPutIdempotent(t *testing.T) {
	s := NewStore()
	obj := NewObject([]byte("x"))
	s.Put(obj)
	s.Put(obj)
	if s.Len() != 1 {
		t.Fatalf("Len = %d after double put", s.Len())
	}
}

func TestDelete(t *testing.T) {
	s := NewStore()
	obj := NewObject([]byte("x"))
	s.Put(obj)
	s.Delete(obj.Ref)
	if s.Has(obj.Ref) {
		t.Fatal("deleted object still present")
	}
	s.Delete(obj.Ref) // no-op
}

func TestRefsSorted(t *testing.T) {
	s := NewStore()
	for _, d := range []string{"c", "a", "b", "zz"} {
		s.Put(NewObject([]byte(d)))
	}
	refs := s.Refs()
	if len(refs) != 4 {
		t.Fatalf("Refs len = %d", len(refs))
	}
	for i := 1; i < len(refs); i++ {
		if refs[i-1] >= refs[i] {
			t.Fatal("Refs not sorted")
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	obj := NewObject([]byte("original"))
	s.Put(obj)
	got, _ := s.Get(obj.Ref)
	got.Data[0] = 'X'
	again, _ := s.Get(obj.Ref)
	if string(again.Data) != "original" {
		t.Fatal("Get exposed internal buffer")
	}
}

func TestQuickContentAddressing(t *testing.T) {
	f := func(data []byte) bool {
		obj := NewObject(data)
		return obj.Verify() == nil && obj.Ref == RefOf(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
