// Package godosn is a security and privacy framework for distributed online
// social networks (DOSNs), reproducing the classification of "Security and
// Privacy of Distributed Online Social Networks" (Taheri Boshrooyeh, Küpçü,
// Özkasap — ICDCS 2015) as a working system.
//
// The framework implements every row of the paper's Table I:
//
//   - Data privacy: information substitution, symmetric key encryption,
//     public key encryption, attribute-based encryption (CP- and KP-ABE),
//     identity-based broadcast encryption, and hybrid encryption — all
//     behind one Group interface (internal/social/privacy).
//   - Data integrity: signed messages (owner/content), hash-chained
//     timelines with cross-publisher anchors, Frientegrity-style fork
//     consistent walls, and per-post comment keys (internal/social/
//     integrity, internal/crypto/...).
//   - Secure social search: blind-signature subscriptions, OPRF key
//     dissemination, proxy aliases, trusted-friend routing, pseudonymous
//     ZKP access, resource handles, and trust-chain ranking
//     (internal/search/...).
//
// The architectures of the paper's Section II-B — structured DHT,
// unstructured gossip, semi-structured super-peers, hybrid, and server
// federation — run on a deterministic simulated network
// (internal/overlay/...). internal/core composes everything into a running
// DOSN; cmd/dosnd boots one, cmd/dosnbench regenerates the experiment
// tables (E1–E10, see DESIGN.md and EXPERIMENTS.md), and cmd/dosndemo walks
// focused attack scenarios.
package godosn
