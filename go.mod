module godosn

go 1.22
