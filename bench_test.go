package godosn

// bench_test.go holds the testing.B benchmarks behind the experiment tables
// of DESIGN.md / EXPERIMENTS.md — one benchmark family per experiment:
//
//	E1  BenchmarkPrivacyEncrypt / BenchmarkPrivacyDecrypt
//	E2  BenchmarkMembershipJoin / BenchmarkMembershipRevoke
//	E3  (sizes: reported by dosnbench -exp e3; no timing dimension)
//	E4  BenchmarkIntegrity*
//	E5  BenchmarkForkDetection
//	E6  BenchmarkLookup*
//	E7  BenchmarkAvailabilityTrial
//	E8  BenchmarkSearch*
//	E9  BenchmarkTrustRank
//	E10 BenchmarkHummingbird*
//	E26 BenchmarkScrub (batched vs per-key anti-entropy, 1k/10k/100k keys)
//
// `go test -bench=. -benchmem` prints the machine-specific numbers;
// `go run ./cmd/dosnbench` prints the digested experiment tables.

import (
	"fmt"
	"strings"
	"testing"

	"godosn/internal/crypto/abe"
	"godosn/internal/crypto/historytree"
	"godosn/internal/crypto/ibe"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/overlay"
	"godosn/internal/overlay/dht"
	"godosn/internal/overlay/federation"
	"godosn/internal/overlay/gossip"
	"godosn/internal/overlay/simnet"
	"godosn/internal/overlay/superpeer"
	"godosn/internal/resilience/scrub"
	"godosn/internal/search/blindsub"
	"godosn/internal/search/trustrank"
	"godosn/internal/search/zkpauth"
	"godosn/internal/social/graph"
	"godosn/internal/social/identity"
	"godosn/internal/social/integrity"
	"godosn/internal/social/privacy"
	"godosn/internal/storage/replication"
	"godosn/internal/storage/store"
	"godosn/internal/workload"
)

// --- shared fixtures -------------------------------------------------------

func benchRegistry(b *testing.B, n int) (*identity.Registry, []*identity.User) {
	b.Helper()
	reg := identity.NewRegistry()
	users := make([]*identity.User, n)
	for i := range users {
		u, err := identity.NewUser(fmt.Sprintf("user-%04d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := reg.Register(u); err != nil {
			b.Fatal(err)
		}
		users[i] = u
	}
	return reg, users
}

func benchGroup(b *testing.B, scheme privacy.Scheme, reg *identity.Registry, users []*identity.User, k int) privacy.Group {
	b.Helper()
	var (
		g   privacy.Group
		err error
	)
	switch scheme {
	case privacy.SchemeSubstitution:
		g, err = privacy.NewSubstitutionGroup("bench", privacy.NewDictionary(), [][]byte{[]byte("fake")})
	case privacy.SchemeSymmetric:
		g, err = privacy.NewSymmetricGroup("bench")
	case privacy.SchemePublicKey:
		g = privacy.NewPublicKeyGroup("bench", reg)
	case privacy.SchemeABE:
		var auth *abe.Authority
		auth, err = abe.NewAuthority()
		if err == nil {
			g, err = privacy.NewABEGroup("bench", auth, "(member)")
		}
	case privacy.SchemeIBBE:
		var pkg *ibe.PKG
		pkg, err = ibe.NewPKG()
		if err == nil {
			g = privacy.NewIBBEGroup("bench", pkg)
		}
	case privacy.SchemeHybrid:
		var owner *pubkey.SigningKeyPair
		owner, err = pubkey.NewSigningKeyPair()
		if err == nil {
			g, err = privacy.NewHybridGroup("bench", reg, owner)
		}
	}
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < k; i++ {
		if err := g.Add(users[i].Name); err != nil {
			b.Fatal(err)
		}
	}
	return g
}

var benchSchemes = []privacy.Scheme{
	privacy.SchemeSubstitution, privacy.SchemeSymmetric, privacy.SchemePublicKey,
	privacy.SchemeABE, privacy.SchemeIBBE, privacy.SchemeHybrid,
}

// --- E1: privacy encrypt/decrypt -------------------------------------------

func BenchmarkPrivacyEncrypt(b *testing.B) {
	reg, users := benchRegistry(b, 32)
	msg := make([]byte, 4096)
	for _, scheme := range benchSchemes {
		for _, k := range []int{8, 32} {
			b.Run(fmt.Sprintf("%s/group=%d", scheme, k), func(b *testing.B) {
				g := benchGroup(b, scheme, reg, users, k)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := g.Encrypt(msg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkPrivacyDecrypt(b *testing.B) {
	reg, users := benchRegistry(b, 32)
	msg := make([]byte, 4096)
	for _, scheme := range benchSchemes {
		b.Run(string(scheme), func(b *testing.B) {
			g := benchGroup(b, scheme, reg, users, 8)
			env, err := g.Encrypt(msg)
			if err != nil {
				b.Fatal(err)
			}
			member := users[0]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Decrypt(member, env); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E2: membership churn ---------------------------------------------------

func BenchmarkMembershipJoin(b *testing.B) {
	reg, users := benchRegistry(b, 600)
	for _, scheme := range benchSchemes {
		b.Run(string(scheme), func(b *testing.B) {
			g := benchGroup(b, scheme, reg, users, 8)
			joined := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if joined == 500 {
					// Member pool exhausted: rebuild untimed and continue.
					b.StopTimer()
					g = benchGroup(b, scheme, reg, users, 8)
					joined = 0
					b.StartTimer()
				}
				if err := g.Add(users[8+joined].Name); err != nil {
					b.Fatal(err)
				}
				joined++
			}
		})
	}
}

func BenchmarkMembershipRevoke(b *testing.B) {
	reg, users := benchRegistry(b, 64)
	const priorPosts = 20
	for _, scheme := range benchSchemes {
		b.Run(fmt.Sprintf("%s/archive=%d", scheme, priorPosts), func(b *testing.B) {
			g := benchGroup(b, scheme, reg, users, 16)
			for p := 0; p < priorPosts; p++ {
				if _, err := g.Encrypt([]byte("post")); err != nil {
					b.Fatal(err)
				}
			}
			victim := users[0].Name
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Remove(victim); err != nil {
					b.Fatal(err)
				}
				// Untimed re-admission restores the group for the next
				// revocation; the re-encrypting schemes re-encrypt the same
				// 20-envelope archive on every timed Remove.
				b.StopTimer()
				if err := g.Add(victim); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}

// --- E4: integrity mechanisms -----------------------------------------------

func BenchmarkIntegritySign(b *testing.B) {
	_, users := benchRegistry(b, 1)
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		users[0].Sign(payload)
	}
}

func BenchmarkIntegrityTimelineAppend(b *testing.B) {
	_, users := benchRegistry(b, 1)
	tl := integrity.NewTimeline(users[0])
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tl.Publish(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityTimelineVerify(b *testing.B) {
	reg, users := benchRegistry(b, 1)
	tl := integrity.NewTimeline(users[0])
	for i := 0; i < 1000; i++ {
		tl.Publish([]byte("post"))
	}
	entries := tl.Entries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := integrity.VerifyTimeline(reg, users[0].Name, entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityWallAppend(b *testing.B) {
	key, err := pubkey.NewSigningKeyPair()
	if err != nil {
		b.Fatal(err)
	}
	wall := integrity.NewWall("alice", historytree.NewServer(key))
	payload := make([]byte, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wall.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIntegrityCommentRoundTrip(b *testing.B) {
	reg, users := benchRegistry(b, 2)
	commenters, err := privacy.NewSymmetricGroup("c")
	if err != nil {
		b.Fatal(err)
	}
	commenters.Add(users[0].Name)
	commenters.Add(users[1].Name)
	post, err := integrity.NewCommentKeyPost(users[0], []byte("post"), commenters)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := integrity.WriteComment(users[1], post, commenters, []byte("hi"))
		if err != nil {
			b.Fatal(err)
		}
		if err := integrity.VerifyComment(reg, post, c); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: fork detection ------------------------------------------------------

func BenchmarkForkDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		key, err := pubkey.NewSigningKeyPair()
		if err != nil {
			b.Fatal(err)
		}
		vk := key.Verification()
		forX := historytree.NewServer(key)
		forY := historytree.NewServer(key)
		wx := integrity.NewWall("v", forX)
		wy := integrity.NewWall("v", forY)
		wx.Append([]byte("real"))
		wy.Append([]byte("fake"))
		x := wx.NewReader("x", vk)
		y := wy.NewReader("y", vk)
		if err := x.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := y.Sync(); err != nil {
			b.Fatal(err)
		}
		if err := integrity.CrossCheck(x, y, vk); err == nil {
			b.Fatal("fork undetected")
		}
	}
}

// --- E6: overlay lookups -----------------------------------------------------

// lookupBench drives lookups through an overlay. tolerateMisses allows
// overlays with bounded recall (TTL-limited flooding) to report misses as
// data rather than failures; a fully-miss run still fails.
func lookupBench(b *testing.B, kv overlay.KV, names []simnet.NodeID, tolerateMisses bool) {
	b.Helper()
	for i := 0; i < 32; i++ {
		if _, err := kv.Store(string(names[i%len(names)]), fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			b.Fatal(err)
		}
	}
	misses := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		origin := names[(i*31+7)%len(names)]
		if _, _, err := kv.Lookup(string(origin), fmt.Sprintf("k%d", i%32)); err != nil {
			if !tolerateMisses {
				b.Fatal(err)
			}
			misses++
		}
	}
	if tolerateMisses {
		if misses == b.N {
			b.Fatal("every lookup missed")
		}
		b.ReportMetric(float64(misses)/float64(b.N)*100, "miss%")
	}
}

func benchNames(n int) []simnet.NodeID {
	names := make([]simnet.NodeID, n)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	return names
}

func BenchmarkLookupDHT(b *testing.B) {
	for _, n := range []int{64, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := simnet.New(simnet.Config{Seed: 1})
			names := benchNames(n)
			kv, err := dht.New(net, names, dht.Config{ReplicationFactor: 2})
			if err != nil {
				b.Fatal(err)
			}
			lookupBench(b, kv, names, false)
		})
	}
}

func BenchmarkLookupGossip(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			net := simnet.New(simnet.Config{Seed: 1})
			names := benchNames(n)
			kv, err := gossip.New(net, names, gossip.Config{Degree: 4, TTL: 12})
			if err != nil {
				b.Fatal(err)
			}
			lookupBench(b, kv, names, true)
		})
	}
}

func BenchmarkLookupSuperPeer(b *testing.B) {
	net := simnet.New(simnet.Config{Seed: 1})
	names := benchNames(256)
	kv, err := superpeer.New(net, names, superpeer.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, kv, names, false)
}

func BenchmarkLookupFederation(b *testing.B) {
	net := simnet.New(simnet.Config{Seed: 1})
	names := benchNames(256)
	kv, err := federation.New(net, names, federation.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	lookupBench(b, kv, names, false)
}

// --- E7: availability trials --------------------------------------------------

func BenchmarkAvailabilityTrial(b *testing.B) {
	m := replication.NewManager(11)
	for i := 0; i < 60; i++ {
		m.AddPeer(fmt.Sprintf("p%d", i))
	}
	obj := store.NewObject([]byte("content"))
	if _, err := m.Place("p0", obj, 3, replication.RandomPeers); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ApplyChurn(0.5)
		m.Retrieve(obj.Ref) //nolint:errcheck // failures are the datum
	}
}

// --- E8/E9: search ------------------------------------------------------------

func BenchmarkSearchZKPRequest(b *testing.B) {
	cred, err := zkpauth.NewCredential()
	if err != nil {
		b.Fatal(err)
	}
	owner := zkpauth.NewOwner()
	owner.Publish("r", "v")
	owner.Authorize(cred.Statement())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := cred.NewRequest("r")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := owner.Serve(req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrustRank(b *testing.B) {
	wg, err := workload.WattsStrogatz(200, 6, 0.2, 1)
	if err != nil {
		b.Fatal(err)
	}
	trust := workload.NewTrust(wg, 0.4, 1)
	users := workload.UserNames(200)
	g := graph.New()
	for _, u := range users {
		g.AddUser(u)
	}
	for u := 0; u < wg.N; u++ {
		for _, v := range wg.Adj[u] {
			if u < v {
				g.Befriend(users[u], users[v], trust.Trust(u, v))
			}
		}
	}
	r := trustrank.New(g, trustrank.DefaultConfig())
	candidates := g.FriendsOfFriends(users[0])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Rank(users[0], candidates)
	}
}

// --- E10: Hummingbird -----------------------------------------------------------

func BenchmarkHummingbirdSubscribe(b *testing.B) {
	pub, err := blindsub.NewPublisher(1024)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blindsub.Subscribe(pub, fmt.Sprintf("#tag-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHummingbirdOPRFSubscribe(b *testing.B) {
	owner, err := blindsub.NewOPRFKeyOwner()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := blindsub.SubscribeOPRF(owner, fmt.Sprintf("#tag-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHummingbirdFilter(b *testing.B) {
	pub, err := blindsub.NewPublisher(1024)
	if err != nil {
		b.Fatal(err)
	}
	tweets := make([]*blindsub.Tweet, 200)
	for i := range tweets {
		tw, err := pub.Publish(fmt.Sprintf("#tag-%d", i%10), []byte("content"))
		if err != nil {
			b.Fatal(err)
		}
		tweets[i] = tw
	}
	sub, err := blindsub.Subscribe(pub, "#tag-3")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tw := range tweets {
			if sub.Matches(tw) {
				if _, err := sub.Open(tw); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// benchScrub measures one anti-entropy pass over a DHT keyspace with 10%
// of keys carrying one silently corrupted copy, at either maintenance-RPC
// granularity. Corruption is re-injected off the clock before every pass,
// so each iteration scrubs (and repairs) the same damage. The custom
// msgs/key metric is the number E26 pins: batched must come in >= 3x under
// per-key.
func benchScrub(b *testing.B, keys int, perKey bool) {
	const peers = 40
	net := simnet.New(simnet.DefaultConfig(2602))
	names := make([]simnet.NodeID, peers)
	for i := range names {
		names[i] = simnet.NodeID(fmt.Sprintf("node-%d", i))
	}
	d, err := dht.New(net, names, dht.Config{ReplicationFactor: 3})
	if err != nil {
		b.Fatal(err)
	}
	client := string(names[0])
	allKeys := make([]string, keys)
	for i := range allKeys {
		key := fmt.Sprintf("post-%06d", i)
		allKeys[i] = key
		if _, err := d.Store(client, key, scrub.Seal(key, []byte(fmt.Sprintf("body-%06d", i)))); err != nil {
			b.Fatal(err)
		}
	}
	// Group formation from local placement state, as the sweep scheduler
	// plans chunks — network-free, so the timed region is maintenance RPCs.
	var groups []scrub.Group
	index := make(map[string]int)
	for _, key := range allKeys {
		plan := d.PlanReplicas(key)
		sig := strings.Join(plan, "\x00")
		gi, ok := index[sig]
		if !ok {
			gi = len(groups)
			index[sig] = gi
			groups = append(groups, scrub.Group{Replicas: plan})
		}
		groups[gi].Keys = append(groups[gi].Keys, key)
	}
	cfg := scrub.DefaultConfig(client)
	cfg.PerKey = perKey
	scr := scrub.New(d, cfg)

	totalMsgs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < keys; j += 10 {
			key := allKeys[j]
			for _, name := range d.PlanReplicas(key) {
				if d.CorruptStored(name, key, func(v []byte) []byte {
					v[len(v)/2] ^= 0x40
					return v
				}) {
					break
				}
			}
		}
		b.StartTimer()
		rep, err := scr.ScrubResolved(groups)
		if err != nil {
			b.Fatal(err)
		}
		if rep.CorruptCopies == 0 || rep.RepairedWrites != rep.CorruptCopies {
			b.Fatalf("pass found %d corrupt, repaired %d — injection or repair broken", rep.CorruptCopies, rep.RepairedWrites)
		}
		totalMsgs += rep.Stats.Messages
	}
	b.ReportMetric(float64(totalMsgs)/float64(b.N)/float64(keys), "msgs/key")
}

func BenchmarkScrub(b *testing.B) {
	for _, size := range []int{1_000, 10_000, 100_000} {
		if size > 10_000 && testing.Short() {
			continue
		}
		for _, arm := range []struct {
			name   string
			perKey bool
		}{{"per-key", true}, {"batched", false}} {
			b.Run(fmt.Sprintf("%s/keys=%d", arm.name, size), func(b *testing.B) {
				benchScrub(b, size, arm.perKey)
			})
		}
	}
}
