// Command dosnbench runs the experiment harness: every experiment of
// DESIGN.md's per-experiment index (E1–E23), printed as aligned tables.
//
// Usage:
//
//	dosnbench                   # run everything (full parameters)
//	dosnbench -exp e1,e6        # run selected experiments
//	dosnbench -quick            # reduced parameters (seconds, for smoke runs)
//	dosnbench -parallel 4       # run independent experiments concurrently
//	dosnbench -json out.json    # also write machine-readable metrics
//	dosnbench -validate f.json  # smoke-parse a previously written report
//	dosnbench -zipf-s 1.5       # E21 read-popularity Zipf skew (> 1)
//	dosnbench -hotset 16        # E21 hot-set size (0 = full key space)
//	dosnbench -hotnode 5        # E22 flash-crowd load factor on the hot node (>= 3)
//	dosnbench -capacity 2       # E22 hot-node capacity in requests/tick (>= 1)
//	dosnbench -batch 256        # E23 read/write batch size ([2, 4096])
//	dosnbench -list             # list experiments
//
// Experiments are independent (own seeds, own simulated networks), and
// -parallel buffers each experiment's output, so tables print in registry
// order and byte-identically at any parallelism level.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"godosn/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag    = flag.Bool("quick", false, "reduced parameters for a fast smoke run")
		listFlag     = flag.Bool("list", false, "list available experiments")
		parallelFlag = flag.Int("parallel", 1, "number of experiments to run concurrently (0 = all CPUs)")
		jsonFlag     = flag.String("json", "", "write machine-readable per-experiment metrics to this file")
		validateFlag = flag.String("validate", "", "validate a -json report file and exit")
		zipfFlag     = flag.Float64("zipf-s", 1.2, "E21 read-popularity Zipf skew (must be > 1)")
		hotsetFlag   = flag.Int("hotset", 0, "E21 hot-set size: restrict reads to the first N keys (0 = full key space)")
		hotnodeFlag  = flag.Float64("hotnode", 5, "E22 flash-crowd load factor on the hot node, as a multiple of its capacity (must be >= 3)")
		capacityFlag = flag.Int("capacity", 2, "E22 hot-node capacity in full-speed requests per tick (must be >= 1)")
		batchFlag    = flag.Int("batch", 256, "E23 read/write batch size (must be in [2, 4096])")
	)
	flag.Parse()

	if err := bench.SetE21Workload(*zipfFlag, *hotsetFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	if err := bench.SetE22Workload(*hotnodeFlag, *capacityFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	if err := bench.SetE23Workload(*batchFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}

	if *validateFlag != "" {
		data, err := os.ReadFile(*validateFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		report, err := bench.ValidateReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		fmt.Printf("dosnbench: %s is a valid report (%d experiments)\n", *validateFlag, len(report.Experiments))
		return 0
	}

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Description)
		}
		return 0
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dosnbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("godosn experiment harness (%d experiments, quick=%v, parallel=%d)\n", len(selected), *quickFlag, *parallelFlag)
	results, err := bench.RunSelected(selected, *quickFlag, *parallelFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Print(r.Output)
	}

	if *jsonFlag != "" {
		f, err := os.Create(*jsonFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		report := bench.BuildReport(results, *quickFlag)
		werr := report.WriteJSON(f)
		cerr := f.Close()
		if werr != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", werr)
			return 1
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", cerr)
			return 1
		}
		fmt.Printf("\nwrote %s (%d experiments)\n", *jsonFlag, len(report.Experiments))
	}
	return 0
}
