// Command dosnbench runs the experiment harness: every experiment of
// DESIGN.md's per-experiment index (E1–E17), printed as aligned tables.
//
// Usage:
//
//	dosnbench              # run everything (full parameters)
//	dosnbench -exp e1,e6   # run selected experiments
//	dosnbench -quick       # reduced parameters (seconds, for smoke runs)
//	dosnbench -list        # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"godosn/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag = flag.Bool("quick", false, "reduced parameters for a fast smoke run")
		listFlag  = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Description)
		}
		return 0
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dosnbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("godosn experiment harness (%d experiments, quick=%v)\n", len(selected), *quickFlag)
	for _, e := range selected {
		table, err := e.Run(*quickFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %s failed: %v\n", e.ID, err)
			return 1
		}
		table.Render(os.Stdout)
	}
	return 0
}
