// Command dosnbench runs the experiment harness: every experiment of
// DESIGN.md's per-experiment index (E1–E25), printed as aligned tables.
//
// Usage:
//
//	dosnbench                   # run everything (full parameters)
//	dosnbench -exp e1,e6        # run selected experiments
//	dosnbench -quick            # reduced parameters (seconds, for smoke runs)
//	dosnbench -parallel 4       # run independent experiments concurrently
//	dosnbench -json out.json    # also write machine-readable metrics
//	dosnbench -validate f.json  # smoke-parse a previously written report
//	dosnbench -zipf-s 1.5       # E21 read-popularity Zipf skew (> 1)
//	dosnbench -hotset 16        # E21 hot-set size (0 = full key space)
//	dosnbench -hotnode 5        # E22 flash-crowd load factor on the hot node (>= 3)
//	dosnbench -capacity 2       # E22 hot-node capacity in requests/tick (>= 1)
//	dosnbench -batch 256        # E23 read/write batch size ([2, 4096])
//	dosnbench -list             # list experiments
//
// Chaos-scenario modes (mutually exclusive with each other; see
// internal/scenario):
//
//	dosnbench -scenario 'scenarios/*.scenario'   # replay files (globs/commas), enforce invariants
//	dosnbench -scenario f.scenario -trace-out t.jsonl  # also leave a JSONL trace artifact
//	dosnbench -scenario f.scenario -trace-out tcp://localhost:4318  # stream it instead
//	dosnbench -scenario f.scenario -scenario-report  # print the per-window breakdown
//	dosnbench -scenario-record-library scenarios # (re)record the builtin library into a directory
//	dosnbench -scenario-minimize failing.scenario # shrink a failing scenario, write .min.scenario
//
// -trace-out accepts a file path, file://path, tcp://host:port, or
// unix:///path; an otlp+ prefix (e.g. otlp+tcp://host:port) switches the
// stream to OTLP-shaped JSON. A failing replay always prints its
// guilty-window localization; -scenario-report adds the full per-window
// table whether or not the scenario failed.
//
// Exit codes: 0 success, 1 failed invariants / failed runs, 2 malformed
// scenario files or invalid flags.
//
// Experiments are independent (own seeds, own simulated networks), and
// -parallel buffers each experiment's output, so tables print in registry
// order and byte-identically at any parallelism level.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"godosn/internal/bench"
	"godosn/internal/scenario"
	"godosn/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		expFlag      = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quickFlag    = flag.Bool("quick", false, "reduced parameters for a fast smoke run")
		listFlag     = flag.Bool("list", false, "list available experiments")
		parallelFlag = flag.Int("parallel", 1, "number of experiments to run concurrently (0 = all CPUs)")
		jsonFlag     = flag.String("json", "", "write machine-readable per-experiment metrics to this file")
		validateFlag = flag.String("validate", "", "validate a -json report file and exit")
		zipfFlag     = flag.Float64("zipf-s", 1.2, "E21 read-popularity Zipf skew (must be > 1)")
		hotsetFlag   = flag.Int("hotset", 0, "E21 hot-set size: restrict reads to the first N keys (0 = full key space)")
		hotnodeFlag  = flag.Float64("hotnode", 5, "E22 flash-crowd load factor on the hot node, as a multiple of its capacity (must be >= 3)")
		capacityFlag = flag.Int("capacity", 2, "E22 hot-node capacity in full-speed requests per tick (must be >= 1)")
		batchFlag    = flag.Int("batch", 256, "E23 read/write batch size (must be in [2, 4096])")

		scenarioFlag      = flag.String("scenario", "", "replay .scenario files (comma-separated paths/globs) and enforce their invariants")
		recordLibraryFlag = flag.String("scenario-record-library", "", "record the builtin scenario library into this directory")
		minimizeFlag      = flag.String("scenario-minimize", "", "minimize a failing .scenario file, writing <name>.min.scenario next to it")
		traceOutFlag      = flag.String("trace-out", "", "emit a telemetry trace of a single -scenario replay: file path, tcp://host:port, unix:///path, optional otlp+ prefix")
		scenarioRptFlag   = flag.Bool("scenario-report", false, "with -scenario: print each replay's per-window time-series breakdown")
	)
	flag.Parse()

	scenarioModes := 0
	for _, f := range []string{*scenarioFlag, *recordLibraryFlag, *minimizeFlag} {
		if f != "" {
			scenarioModes++
		}
	}
	if scenarioModes > 1 {
		fmt.Fprintf(os.Stderr, "dosnbench: -scenario, -scenario-record-library and -scenario-minimize are mutually exclusive\n")
		return 2
	}
	if *traceOutFlag != "" && *scenarioFlag == "" {
		fmt.Fprintf(os.Stderr, "dosnbench: -trace-out requires -scenario\n")
		return 2
	}
	if *scenarioRptFlag && *scenarioFlag == "" {
		fmt.Fprintf(os.Stderr, "dosnbench: -scenario-report requires -scenario\n")
		return 2
	}
	if *scenarioFlag != "" {
		return runScenarios(*scenarioFlag, *traceOutFlag, *scenarioRptFlag)
	}
	if *recordLibraryFlag != "" {
		return recordLibrary(*recordLibraryFlag)
	}
	if *minimizeFlag != "" {
		return minimizeScenario(*minimizeFlag)
	}

	if err := bench.SetE21Workload(*zipfFlag, *hotsetFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	if err := bench.SetE22Workload(*hotnodeFlag, *capacityFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	if err := bench.SetE23Workload(*batchFlag); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}

	if *validateFlag != "" {
		data, err := os.ReadFile(*validateFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		report, err := bench.ValidateReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		fmt.Printf("dosnbench: %s is a valid report (%d experiments)\n", *validateFlag, len(report.Experiments))
		return 0
	}

	if *listFlag {
		for _, e := range bench.All() {
			fmt.Printf("  %-4s %s\n", e.ID, e.Description)
		}
		return 0
	}

	var selected []bench.Experiment
	if *expFlag == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*expFlag, ",") {
			id = strings.TrimSpace(strings.ToLower(id))
			e, ok := bench.Find(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "dosnbench: unknown experiment %q (try -list)\n", id)
				return 2
			}
			selected = append(selected, e)
		}
	}

	fmt.Printf("godosn experiment harness (%d experiments, quick=%v, parallel=%d)\n", len(selected), *quickFlag, *parallelFlag)
	results, err := bench.RunSelected(selected, *quickFlag, *parallelFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Print(r.Output)
	}

	if *jsonFlag != "" {
		f, err := os.Create(*jsonFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		report := bench.BuildReport(results, *quickFlag)
		werr := report.WriteJSON(f)
		cerr := f.Close()
		if werr != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", werr)
			return 1
		}
		if cerr != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", cerr)
			return 1
		}
		fmt.Printf("\nwrote %s (%d experiments)\n", *jsonFlag, len(report.Experiments))
	}
	return 0
}

// expandScenarioArgs resolves the -scenario value (comma-separated paths
// and/or globs) to a sorted, de-duplicated file list.
func expandScenarioArgs(arg string) ([]string, error) {
	seen := make(map[string]bool)
	var files []string
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if strings.ContainsAny(part, "*?[") {
			matches, err := filepath.Glob(part)
			if err != nil {
				return nil, fmt.Errorf("bad glob %q: %w", part, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("glob %q matches no files", part)
			}
			for _, m := range matches {
				if !seen[m] {
					seen[m] = true
					files = append(files, m)
				}
			}
			continue
		}
		if !seen[part] {
			seen[part] = true
			files = append(files, part)
		}
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("-scenario %q names no files", arg)
	}
	sort.Strings(files)
	return files, nil
}

// loadScenario reads and strictly parses one .scenario file.
func loadScenario(path string) (*scenario.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", scenario.ErrScenario, path, err)
	}
	sc, err := scenario.Parse(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return sc, nil
}

// runScenarios replays every named scenario file through the full protocol
// (run-twice and workers-1-vs-8 determinism, invariants, pinned counters).
// Exit 2 on malformed files, 1 on any failed check, 0 when all pass.
func runScenarios(arg, traceOut string, windowReport bool) int {
	files, err := expandScenarioArgs(arg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	if traceOut != "" && len(files) != 1 {
		fmt.Fprintf(os.Stderr, "dosnbench: -trace-out wants exactly one scenario, got %d\n", len(files))
		return 2
	}

	failed := 0
	for _, path := range files {
		sc, err := loadScenario(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 2
		}
		report, err := scenario.Replay(sc)
		if err != nil {
			// Engine-level failure (e.g. determinism divergence).
			fmt.Fprintf(os.Stderr, "dosnbench: %s: %v\n", path, err)
			return 1
		}
		res := report.Result
		status := "PASS"
		if report.Failed() {
			status = "FAIL"
			failed++
		}
		fmt.Printf("scenario %-20s %s  events=%d served=%.4f p99=%.1fms sheds=%d digest=%016x\n",
			sc.Name, status, len(sc.Events), res.ServedRate(), res.P99MS(), res.ServerSheds, res.Digest)
		for _, v := range report.Violations {
			fmt.Printf("  violation %s\n", v)
		}
		for _, g := range report.Guilty {
			fmt.Printf("  guilty %s\n", g)
		}
		if windowReport {
			scenario.WriteWindowBreakdown(os.Stdout, res)
		}
		if traceOut != "" {
			if code := writeScenarioTrace(sc, traceOut); code != 0 {
				return code
			}
		}
	}
	if failed > 0 {
		fmt.Printf("%d of %d scenarios failed\n", failed, len(files))
		return 1
	}
	fmt.Printf("%d scenarios passed\n", len(files))
	return 0
}

// writeScenarioTrace runs the scenario once more with a telemetry sink
// attached — file, socket, or OTLP-shaped per the spec — and reports the
// artifact. The traced run is identical to the replay runs (tracing is
// nil-safe annotation on the same code path, and socket sinks drop rather
// than block).
func writeScenarioTrace(sc *scenario.Scenario, spec string) int {
	sink, err := telemetry.OpenSink(spec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 1
	}
	_, rerr := scenario.Run(sc, scenario.RunConfig{Workers: 1, Trace: sink})
	records := sink.Records()
	dropped := sink.Dropped()
	cerr := sink.Close()
	if rerr != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: trace run: %v\n", rerr)
		return 1
	}
	if cerr != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: trace sink: %v\n", cerr)
		return 1
	}
	if dropped > 0 {
		fmt.Printf("wrote %s (%d records, %d dropped)\n", spec, records, dropped)
	} else {
		fmt.Printf("wrote %s (%d records)\n", spec, records)
	}
	return 0
}

// recordLibrary records every builtin scenario into dir as canonical
// .scenario files (creating dir if needed).
func recordLibrary(dir string) int {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 1
	}
	for _, cfg := range scenario.BuiltinLibrary() {
		sc, rep, err := scenario.Record(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		path := filepath.Join(dir, sc.Name+".scenario")
		if err := os.WriteFile(path, sc.Format(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
			return 1
		}
		fmt.Printf("recorded %-40s events=%d invariants=%d served=%.4f\n",
			path, len(sc.Events), len(sc.Invariants), rep.Result.ServedRate())
	}
	return 0
}

// minimizeScenario shrinks a failing scenario file and writes the minimal
// reproduction next to it as <name>.min.scenario. A scenario that passes
// its invariants is an operational error (exit 1); a malformed file exits 2.
func minimizeScenario(path string) int {
	sc, err := loadScenario(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 2
	}
	min, err := scenario.Minimize(sc, 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		if errors.Is(err, scenario.ErrScenario) && !errors.Is(err, scenario.ErrScenarioPasses) {
			return 2
		}
		return 1
	}
	out := strings.TrimSuffix(path, ".scenario") + ".min.scenario"
	if err := os.WriteFile(out, min.Scenario.Format(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "dosnbench: %v\n", err)
		return 1
	}
	fmt.Printf("minimized %s: %d -> %d events in %d runs (violated: %v)\nwrote %s\n",
		path, min.OriginalEvents, min.MinimizedEvents, min.Runs, min.Violated, out)
	return 0
}
