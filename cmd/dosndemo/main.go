// Command dosndemo runs focused security-scenario demonstrations, one per
// threat the paper discusses:
//
//	dosndemo -scenario fork        # storage equivocation caught by clients
//	dosndemo -scenario revocation  # revocation cost across all six schemes
//	dosndemo -scenario search      # searcher privacy: who learns what
//	dosndemo -scenario invitation  # the Section IV party-invitation checks
//	dosndemo -scenario provider    # Section II-A provider threats + mitigations
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"godosn/internal/centralized"
	"godosn/internal/crypto/historytree"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/search/friendnet"
	"godosn/internal/search/proxy"
	"godosn/internal/social/graph"
	"godosn/internal/social/identity"
	"godosn/internal/social/integrity"
	"godosn/internal/social/privacy"
)

func main() {
	os.Exit(run())
}

func run() int {
	scenario := flag.String("scenario", "fork", "fork|revocation|search|invitation|provider")
	flag.Parse()
	var err error
	switch *scenario {
	case "fork":
		err = demoFork()
	case "revocation":
		err = demoRevocation()
	case "search":
		err = demoSearch()
	case "invitation":
		err = demoInvitation()
	case "provider":
		err = demoProvider()
	default:
		fmt.Fprintf(os.Stderr, "dosndemo: unknown scenario %q\n", *scenario)
		return 2
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosndemo: %v\n", err)
		return 1
	}
	return 0
}

func demoFork() error {
	fmt.Println("== fork attack: equivocating storage provider ==")
	storageKey, err := pubkey.NewSigningKeyPair()
	if err != nil {
		return err
	}
	vk := storageKey.Verification()
	forBob := historytree.NewServer(storageKey)
	forCarol := historytree.NewServer(storageKey)
	wallBob := integrity.NewWall("alice", forBob)
	wallCarol := integrity.NewWall("alice", forCarol)

	wallBob.Append([]byte("alice: meet at the protest, saturday 10am"))
	wallCarol.Append([]byte("alice: nothing planned this weekend"))
	fmt.Println("provider shows bob the real post, carol a censored one")

	bob := wallBob.NewReader("bob", vk)
	carol := wallCarol.NewReader("carol", vk)
	if err := bob.Sync(); err != nil {
		return err
	}
	if err := carol.Sync(); err != nil {
		return err
	}
	fmt.Println("each view individually verifies (signed commitments)")

	if err := integrity.CrossCheck(bob, carol, vk); err != nil {
		fmt.Printf("bob and carol compare notes -> %v\n", err)
		fmt.Println("two signed roots for the same version: cryptographic proof of equivocation")
		return nil
	}
	return fmt.Errorf("fork went undetected")
}

func demoRevocation() error {
	fmt.Println("== revocation cost across the six Table-I schemes ==")
	registry := identity.NewRegistry()
	var members []*identity.User
	for i := 0; i < 10; i++ {
		u, err := identity.NewUser(fmt.Sprintf("member-%d", i))
		if err != nil {
			return err
		}
		registry.Register(u)
		members = append(members, u)
	}
	build := func(scheme privacy.Scheme) (privacy.Group, error) {
		switch scheme {
		case privacy.SchemeSymmetric:
			return privacy.NewSymmetricGroup("g")
		case privacy.SchemePublicKey:
			return privacy.NewPublicKeyGroup("g", registry), nil
		case privacy.SchemeHybrid:
			owner, err := pubkey.NewSigningKeyPair()
			if err != nil {
				return nil, err
			}
			return privacy.NewHybridGroup("g", registry, owner)
		default:
			return nil, fmt.Errorf("not in this demo")
		}
	}
	for _, scheme := range []privacy.Scheme{privacy.SchemeSymmetric, privacy.SchemePublicKey, privacy.SchemeHybrid} {
		g, err := build(scheme)
		if err != nil {
			return err
		}
		for _, m := range members {
			g.Add(m.Name)
		}
		for i := 0; i < 20; i++ {
			if _, err := g.Encrypt([]byte(fmt.Sprintf("post %d", i))); err != nil {
				return err
			}
		}
		start := time.Now()
		report, err := g.Remove(members[0].Name)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s revoke: %8s  re-encrypted=%d  re-keyed=%d  free=%v\n",
			scheme, time.Since(start).Round(time.Microsecond), report.ReencryptedEnvelopes,
			report.RekeyedMembers, report.Free)
	}
	fmt.Println("(run 'dosnbench -exp e2' for all six schemes)")
	return nil
}

func demoSearch() error {
	fmt.Println("== searcher privacy: who learns that alice searched for carol ==")
	dir := proxy.NewDirectory()
	dir.Add("carol", "carol@node-17")

	fmt.Println("\n1. direct query:")
	dir.Query("alice", "carol")
	fmt.Printf("   directory observed searchers: %v\n", dir.Observed("carol"))

	fmt.Println("\n2. via proxy alias:")
	p := proxy.NewServer("proxy-a")
	p.Register("alice")
	p.Search("alice", "carol", dir)
	fmt.Printf("   directory observed searchers: %v\n", dir.Observed("carol"))
	fmt.Printf("   collusion with the proxy exposes: %v\n", proxy.Collude(dir, "carol", p))

	fmt.Println("\n3. via trusted friend routing:")
	g := graph.New()
	for _, u := range []string{"alice", "friend1", "friend2", "carol"} {
		g.AddUser(u)
	}
	g.Befriend("alice", "friend1", 0.9)
	g.Befriend("friend1", "friend2", 0.9)
	g.Befriend("friend2", "carol", 0.9)
	fn := friendnet.New(g)
	fn.Publish("carol", "profile", "carol@node-17")
	res, err := fn.Query("alice", "carol", "profile", 0)
	if err != nil {
		return err
	}
	for _, obs := range res.Observations {
		fmt.Printf("   %-8s saw request from %-8s forwarded to %q\n",
			obs.Node, obs.SawRequestFrom, obs.ForwardedTo)
	}
	fmt.Printf("   nodes that can identify alice: %v (her own trusted friend)\n",
		friendnet.SearcherVisibleTo(res, "alice"))
	return nil
}

func demoInvitation() error {
	fmt.Println("== the Section IV party-invitation integrity checks ==")
	registry := identity.NewRegistry()
	bob, err := identity.NewUser("bob")
	if err != nil {
		return err
	}
	mallory, err := identity.NewUser("mallory")
	if err != nil {
		return err
	}
	registry.Register(bob)
	registry.Register(mallory)

	now := time.Date(2015, 6, 29, 12, 0, 0, 0, time.UTC)
	inv := integrity.NewSignedMessage(bob, "alice",
		[]byte("Come to my party held at my home on Friday"), now, 7*24*time.Hour)

	check := func(label string, err error) {
		if err != nil {
			fmt.Printf("   %-38s REJECTED: %v\n", label, err)
		} else {
			fmt.Printf("   %-38s ACCEPTED\n", label)
		}
	}
	check("genuine invitation", integrity.VerifyMessage(registry, inv, "alice", now.Add(time.Hour)))

	forged := integrity.NewSignedMessage(mallory, "alice", []byte("party!"), now, time.Hour)
	forged.From = "bob"
	check("mallory forging bob's name", integrity.VerifyMessage(registry, forged, "alice", now))

	tampered := *inv
	tampered.Content = []byte("Come to my party on Saturday")
	check("content changed to saturday", integrity.VerifyMessage(registry, &tampered, "alice", now))

	check("replay one month later", integrity.VerifyMessage(registry, inv, "alice", now.Add(31*24*time.Hour)))
	check("delivered to carol instead", integrity.VerifyMessage(registry, inv, "carol", now))
	return nil
}

func demoProvider() error {
	fmt.Println("== the central provider's view, with and without mitigations ==")
	sensitive := []string{
		"visiting the oncology clinic on tuesday",
		"attending the union meeting thursday",
		"my new address: 12 Elm Street",
	}

	fmt.Println("\n1. plain centralized OSN (dishonest deletion):")
	p := centralized.NewProvider(false)
	p.Register("alice")
	for i, s := range sensitive {
		p.UploadPlain("alice", fmt.Sprintf("p%d", i), s)
	}
	p.Delete("alice", "p0") // alice "deletes" the medical post
	for _, item := range p.EmployeeBrowse("alice") {
		fmt.Printf("   employee reads: %q\n", item)
	}
	fmt.Printf("   sold to advertisers: %v\n", p.SellUserData("alice"))

	fmt.Println("\n2. flyByNight proxy re-encryption on the same provider:")
	p2 := centralized.NewProvider(false)
	alice, err := centralized.NewClient(p2, "alice")
	if err != nil {
		return err
	}
	bob, err := centralized.NewClient(p2, "bob")
	if err != nil {
		return err
	}
	if err := alice.Befriend(bob); err != nil {
		return err
	}
	for i, s := range sensitive {
		if err := alice.Post(fmt.Sprintf("p%d", i), s); err != nil {
			return err
		}
	}
	p2.Delete("alice", "p0")
	fmt.Printf("   employee reads: %v (nothing)\n", p2.EmployeeBrowse("alice"))
	got, err := bob.Read("alice", "p1")
	if err != nil {
		return err
	}
	fmt.Printf("   bob still reads via provider re-encryption: %q\n", got)
	k := p2.KnowledgeOf("alice")
	fmt.Printf("   provider knowledge: %d readable, %d opaque, %d social edges\n",
		k.PlaintextItems, k.OpaqueItems, k.SocialEdges)
	fmt.Println("   (the social graph remains visible — the residual leak both mitigations share)")
	return nil
}
