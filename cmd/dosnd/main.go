// Command dosnd boots a simulated DOSN deployment end-to-end and prints a
// session transcript: users join, befriend, form groups under different
// privacy schemes, publish, read feeds, sync fork-consistent walls, and run
// a trust-ranked friend search.
//
// Usage:
//
//	dosnd -users 20 -overlay dht -seed 7
//	dosnd -users 20 -overlay dht -resilient -loss 0.15
//	dosnd -users 20 -resilient -loss 0.15 -metrics
//	dosnd -users 20 -resilient -pprof localhost:6060
//	dosnd -users 20 -trace-out session.jsonl        # JSONL trace of the session
//	dosnd -users 20 -trace-out otlp+tcp://host:4318 # stream OTLP-shaped JSON
//
// The session advances the deployment's tick clock once per phase (boot,
// groups, publish, wall-sync, revocation, search), so -metrics can also
// show the last phase's windowed telemetry deltas and -trace-out carries
// the whole per-phase time-series.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"

	"godosn/internal/core"
	"godosn/internal/resilience"
	"godosn/internal/social/privacy"
	"godosn/internal/telemetry"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		usersFlag   = flag.Int("users", 12, "number of users")
		overlayFlag = flag.String("overlay", "dht", "overlay: dht|gossip|superpeer|hybrid|federation")
		seedFlag    = flag.Int64("seed", 7, "deterministic seed")
		resilFlag   = flag.Bool("resilient", false, "wrap the overlay in the resilience layer (retries, hedged reads, breaker)")
		lossFlag    = flag.Float64("loss", 0, "message loss rate injected after boot (0..1)")
		metricsFlag = flag.Bool("metrics", false, "dump the deployment's telemetry registry (plain-text /metrics style) after the session")
		pprofFlag   = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060) and keep the process alive after the session")
		traceFlag   = flag.String("trace-out", "", "emit the session's telemetry: file path, tcp://host:port, unix:///path, optional otlp+ prefix")
	)
	flag.Parse()
	if *lossFlag < 0 || *lossFlag >= 1 {
		fmt.Fprintln(os.Stderr, "dosnd: -loss must be in [0,1)")
		return 2
	}

	kind, ok := map[string]core.OverlayKind{
		"dht":        core.OverlayDHT,
		"gossip":     core.OverlayGossip,
		"superpeer":  core.OverlaySuperPeer,
		"hybrid":     core.OverlayHybrid,
		"federation": core.OverlayFederation,
	}[*overlayFlag]
	if !ok {
		fmt.Fprintf(os.Stderr, "dosnd: unknown overlay %q\n", *overlayFlag)
		return 2
	}
	if *usersFlag < 4 {
		fmt.Fprintln(os.Stderr, "dosnd: need at least 4 users")
		return 2
	}

	users := make([]string, *usersFlag)
	for i := range users {
		users[i] = fmt.Sprintf("user-%02d", i)
	}
	var friendships []core.Friendship
	for i := range users {
		friendships = append(friendships, core.Friendship{
			A: users[i], B: users[(i+1)%len(users)], Trust: 0.85,
		})
		if i%3 == 0 {
			friendships = append(friendships, core.Friendship{
				A: users[i], B: users[(i+5)%len(users)], Trust: 0.6,
			})
		}
	}
	cfg := core.Config{
		Seed:        *seedFlag,
		Overlay:     kind,
		Users:       users,
		Friendships: friendships,
	}
	if *resilFlag {
		rcfg := resilience.DefaultConfig(0) // 0: inherit the network seed
		cfg.Resilience = &rcfg
	}
	net, err := core.NewNetwork(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: building network: %v\n", err)
		return 1
	}
	if *pprofFlag != "" {
		// The default mux already carries the /debug/pprof handlers via the
		// pprof import's side effect.
		go func() {
			if err := http.ListenAndServe(*pprofFlag, nil); err != nil {
				fmt.Fprintf(os.Stderr, "dosnd: pprof server: %v\n", err)
			}
		}()
		fmt.Printf("pprof serving on http://%s/debug/pprof/\n", *pprofFlag)
	}
	// Streaming telemetry: attach the chosen sink to the registry's event
	// log, and ride the simnet tick clock for windowed deltas — the session
	// advances one tick per phase, so each window is one phase's worth of
	// registry movement.
	var sink telemetry.Sink
	if *traceFlag != "" {
		s, err := telemetry.OpenSink(*traceFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dosnd: trace sink: %v\n", err)
			return 2
		}
		sink = s
		// dosnd has no determinism contract, so drop accounting may live in
		// the registry where -metrics will show it.
		sink.SetTelemetry(net.Telemetry)
		telemetry.AttachLog(net.Telemetry.Events(), sink)
	}
	win := telemetry.NewWindows(net.Telemetry, telemetry.WindowsConfig{Width: 1, Retain: 16})
	net.Sim.OnTick(func(int) { win.Tick() })
	phase := func(name string) {
		net.Sim.TickCapacity() // advance the shared tick clock: close a window
		if sink != nil {
			sink.Note("phase", telemetry.A("name", name))
		}
	}

	fmt.Printf("booted %d-user DOSN on %s overlay (kv: %s)\n", len(users), net.OverlayKind(), net.KV.Name())
	if *lossFlag > 0 {
		net.Sim.SetLossRate(*lossFlag)
		fmt.Printf("injected %.0f%% message loss\n", *lossFlag*100)
	}
	phase("boot")

	alice, bob, carol := net.MustNode(users[0]), net.MustNode(users[1]), net.MustNode(users[2])

	// Group formation under two schemes.
	friends, err := alice.CreateGroup("friends", privacy.SchemeHybrid, "")
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: %v\n", err)
		return 1
	}
	friends.Add(bob.Name())
	friends.Add(carol.Name())
	alice.ShareGroup("friends", bob)
	alice.ShareGroup("friends", carol)
	fmt.Printf("%s created group %q (%s) with members %v\n",
		alice.Name(), friends.Name(), friends.Scheme(), friends.Members())
	phase("groups")

	// Publish and read through the overlay.
	if _, st, err := alice.Publish("friends", []byte("hello, distributed world")); err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: publish: %v\n", err)
		return 1
	} else {
		fmt.Printf("%s published post 0 (store: %d msgs, %d hops)\n", alice.Name(), st.Messages, st.Hops)
	}
	body, st, err := bob.ReadPost(alice.Name(), 0)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: read: %v\n", err)
		return 1
	}
	fmt.Printf("%s read it via overlay (%d msgs, %d hops): %q\n", bob.Name(), st.Messages, st.Hops, body)
	phase("publish-read")

	// Fork-consistent wall views.
	if err := bob.SyncWall(alice.Name()); err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: wall sync: %v\n", err)
		return 1
	}
	if err := carol.SyncWall(alice.Name()); err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: wall sync: %v\n", err)
		return 1
	}
	if err := bob.CrossCheckWall(alice.Name(), carol); err != nil {
		fmt.Printf("wall cross-check: MISBEHAVIOUR: %v\n", err)
	} else {
		fmt.Printf("%s and %s cross-checked %s's wall: consistent at version %d\n",
			bob.Name(), carol.Name(), alice.Name(), bob.WallReader(alice.Name()).Commitment().Version)
	}
	phase("wall-sync")

	// Revocation.
	report, err := friends.Remove(carol.Name())
	if err != nil {
		fmt.Fprintf(os.Stderr, "dosnd: revoke: %v\n", err)
		return 1
	}
	fmt.Printf("%s revoked %s: re-encrypted %d envelopes, re-keyed %d members\n",
		alice.Name(), carol.Name(), report.ReencryptedEnvelopes, report.RekeyedMembers)
	if _, _, err := carol.ReadPost(alice.Name(), 0); err != nil {
		fmt.Printf("%s can no longer read the archive: OK\n", carol.Name())
	}
	phase("revocation")

	// Trust-ranked friend search.
	found := alice.FindUsers()
	limit := 5
	if len(found) < limit {
		limit = len(found)
	}
	fmt.Printf("%s searched for new friends (trust-ranked): %v\n", alice.Name(), found[:limit])
	phase("search")

	if m, ok := net.ResilienceMetrics(); ok {
		fmt.Printf("resilience: %d ops, %d retries, %d hedges, %d breaker skips, %d failures\n",
			m.Ops, m.Retries, m.Hedges, m.BreakerSkips, m.Failures)
	}
	win.CloseFinal()
	if sink != nil {
		sink.Windows(win.Snapshot())
		sink.Snapshot(net.Telemetry.Snapshot())
		records, dropped := sink.Records(), sink.Dropped()
		if err := sink.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "dosnd: trace sink: %v\n", err)
			return 1
		}
		if dropped > 0 {
			fmt.Printf("trace: %s (%d records, %d dropped)\n", *traceFlag, records, dropped)
		} else {
			fmt.Printf("trace: %s (%d records)\n", *traceFlag, records)
		}
	}
	fmt.Println("session complete")
	if *metricsFlag {
		fmt.Println("\n--- telemetry ---")
		net.Telemetry.WriteText(os.Stdout)
		if last, ok := win.Latest(); ok {
			fmt.Printf("\n--- last window (ticks [%d,%d)) ---\n", last.FromTick, last.ToTick)
			telemetry.WindowsSnapshot{
				Width:    win.Width(),
				FromTick: last.FromTick,
				ToTick:   last.ToTick,
				Windows:  []telemetry.WindowDelta{last},
			}.WriteText(os.Stdout)
		}
	}
	if *pprofFlag != "" {
		fmt.Println("session done; pprof endpoint stays up (Ctrl-C to exit)")
		select {}
	}
	return 0
}
