// Quickstart: boot a 20-user DOSN, form friendships and a hybrid-encrypted
// group, publish posts, read a feed, and cross-check fork-consistent walls.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"godosn/internal/core"
	"godosn/internal/social/privacy"
)

func main() {
	// 1. Describe the deployment: users, friendships, overlay architecture.
	users := make([]string, 20)
	for i := range users {
		users[i] = fmt.Sprintf("user-%02d", i)
	}
	var friendships []core.Friendship
	for i := range users {
		friendships = append(friendships,
			core.Friendship{A: users[i], B: users[(i+1)%len(users)], Trust: 0.9},
			core.Friendship{A: users[i], B: users[(i+4)%len(users)], Trust: 0.6},
		)
	}
	net, err := core.NewNetwork(core.Config{
		Seed:        42,
		Overlay:     core.OverlayDHT,
		Users:       users,
		Friendships: friendships,
	})
	if err != nil {
		log.Fatalf("building network: %v", err)
	}
	fmt.Printf("booted %d users on a %s overlay\n", len(users), net.OverlayKind())

	alice := net.MustNode("user-00")
	bob := net.MustNode("user-01")
	carol := net.MustNode("user-04")

	// 2. Alice creates a group. Hybrid encryption = fast symmetric data
	// path + public-key key distribution (the paper's Section III-F).
	group, err := alice.CreateGroup("close-friends", privacy.SchemeHybrid, "")
	if err != nil {
		log.Fatalf("creating group: %v", err)
	}
	for _, member := range []*core.Node{bob, carol} {
		if err := group.Add(member.Name()); err != nil {
			log.Fatalf("adding member: %v", err)
		}
		if err := alice.ShareGroup("close-friends", member); err != nil {
			log.Fatalf("sharing group: %v", err)
		}
	}
	fmt.Printf("group %q members: %v\n", group.Name(), group.Members())

	// 3. Publish: the post is encrypted, chained into Alice's timeline,
	// appended to her wall, and stored in the overlay.
	for i, body := range []string{
		"first post: hello DOSN!",
		"second post: no central provider can read this",
		"third post: replicas store only ciphertext",
	} {
		if _, st, err := alice.Publish("close-friends", []byte(body)); err != nil {
			log.Fatalf("publish %d: %v", i, err)
		} else {
			fmt.Printf("published post %d (overlay store: %d msgs, %d hops)\n", i, st.Messages, st.Hops)
		}
	}

	// 4. Bob reads his feed through the overlay.
	feed, st, err := bob.ReadFeed()
	if err != nil {
		log.Fatalf("reading feed: %v", err)
	}
	fmt.Printf("bob's feed (%d msgs over the overlay):\n", st.Messages)
	for _, item := range feed {
		fmt.Printf("  - %s\n", item)
	}

	// 5. Fork-consistent walls: bob and carol verify they see the same
	// history of alice's wall.
	if err := bob.SyncWall("user-00"); err != nil {
		log.Fatalf("bob wall sync: %v", err)
	}
	if err := carol.SyncWall("user-00"); err != nil {
		log.Fatalf("carol wall sync: %v", err)
	}
	if err := bob.CrossCheckWall("user-00", carol); err != nil {
		log.Fatalf("fork detected: %v", err)
	}
	fmt.Printf("bob and carol agree on alice's wall at version %d (no fork)\n",
		bob.WallReader("user-00").Commitment().Version)

	// 6. Trust-ranked friend discovery.
	fmt.Printf("alice's trust-ranked friend suggestions: %v\n", alice.FindUsers()[:5])
}
