// Fork attack: a malicious storage provider equivocates — it shows two
// friends different versions of a user's wall (e.g. censoring one post for
// one audience). The Frientegrity-style object history tree of Section IV-B
// catches it: each view individually verifies, but the moment the two
// clients compare signed commitments they hold cryptographic proof of the
// provider's misbehaviour.
//
//	go run ./examples/forkattack
package main

import (
	"errors"
	"fmt"
	"log"

	"godosn/internal/crypto/historytree"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/social/integrity"
)

func main() {
	// The provider has one signing key — required, since clients verify its
	// commitments — but secretly maintains two divergent copies of alice's
	// wall.
	providerKey, err := pubkey.NewSigningKeyPair()
	if err != nil {
		log.Fatalf("creating provider key: %v", err)
	}
	vk := providerKey.Verification()
	copyForBob := historytree.NewServer(providerKey)
	copyForCarol := historytree.NewServer(providerKey)
	wallForBob := integrity.NewWall("alice", copyForBob)
	wallForCarol := integrity.NewWall("alice", copyForCarol)

	fmt.Println("alice posts three updates; the provider censors one for carol:")
	posts := []string{
		"moving to a new city next month",
		"organizing a neighborhood meeting on privacy",
		"see you all there!",
	}
	for i, p := range posts {
		wallForBob.Append([]byte(p))
		if i == 1 {
			// The censored copy replaces the meeting announcement.
			wallForCarol.Append([]byte("nothing new today"))
		} else {
			wallForCarol.Append([]byte(p))
		}
		fmt.Printf("  post %d: %q\n", i, p)
	}

	bob := wallForBob.NewReader("bob", vk)
	carol := wallForCarol.NewReader("carol", vk)
	if err := bob.Sync(); err != nil {
		log.Fatalf("bob sync: %v", err)
	}
	if err := carol.Sync(); err != nil {
		log.Fatalf("carol sync: %v", err)
	}

	fmt.Println("\neach friend's view verifies in isolation:")
	bobOps, err := bob.Read()
	if err != nil {
		log.Fatalf("bob read: %v", err)
	}
	carolOps, err := carol.Read()
	if err != nil {
		log.Fatalf("carol read: %v", err)
	}
	fmt.Printf("  bob sees   %d posts, commitment v%d (signed, membership-proved)\n",
		len(bobOps), bob.Commitment().Version)
	fmt.Printf("  carol sees %d posts, commitment v%d (signed, membership-proved)\n",
		len(carolOps), carol.Commitment().Version)
	fmt.Printf("  bob's post 1:   %q\n", bobOps[1])
	fmt.Printf("  carol's post 1: %q\n", carolOps[1])

	fmt.Println("\nbob and carol gossip their commitments (the paper's client cross-check):")
	err = integrity.CrossCheck(bob, carol, vk)
	var fork *historytree.ForkEvidence
	if !errors.As(err, &fork) {
		log.Fatalf("fork NOT detected — this should never happen: %v", err)
	}
	fmt.Printf("  FORK DETECTED: %v\n", fork)
	fmt.Println("  both commitments carry the provider's valid signature:")
	fmt.Printf("    view A: version %d, root %x...\n", fork.A.Version, fork.A.Root[:8])
	fmt.Printf("    view B: version %d, root %x...\n", fork.B.Version, fork.B.Root[:8])
	fmt.Println("  => transferable, non-repudiable proof of equivocation.")

	// And the provider cannot repair the fork: no consistency proof can
	// bridge two diverged roots. Replay bob's verified view against the
	// censored chain directly at the history-tree layer.
	fmt.Println("\nthe provider tries to move bob's view onto the censored history:")
	wallForCarol.Append([]byte("one more post"))
	latest, err := copyForCarol.Latest(wallForCarol.ObjectID)
	if err != nil {
		log.Fatalf("latest: %v", err)
	}
	proof, err := copyForCarol.ProveConsistency(wallForCarol.ObjectID, bob.Commitment().Version, latest.Version)
	if err != nil {
		log.Fatalf("prove: %v", err)
	}
	bobView := historytree.NewView(wallForBob.ObjectID, vk)
	if err := bobView.Advance(bob.Commitment(), nil); err != nil {
		log.Fatalf("seeding bob's view: %v", err)
	}
	if err := bobView.Advance(latest, proof); err != nil {
		fmt.Printf("  rejected: %v\n", err)
	} else {
		log.Fatal("bob's view advanced across the fork — should be impossible")
	}
}
