// Privacy-preserving advertising: the paper's open-problem section asks for
// "privacy preserving advertising for a service provider storing encrypted
// data of users" (Section VI, citing Privad and Adnostic). This example
// sketches the Hummingbird-based answer the framework enables:
//
//   - users' interests are hashtag subscriptions obtained by BLIND signature,
//     so the ad broker never learns who is interested in what;
//
//   - the broker publishes ads encrypted per interest category;
//
//   - matching happens on the user's device (the Adnostic model), so the
//     provider sees neither interests nor which ad was shown.
//
//     go run ./examples/advertising
package main

import (
	"fmt"
	"log"

	"godosn/internal/search/blindsub"
)

func main() {
	// The ad broker is a blind-signature publisher: interest categories are
	// its "hashtags".
	broker, err := blindsub.NewPublisher(1024)
	if err != nil {
		log.Fatalf("creating broker: %v", err)
	}

	// The broker publishes an encrypted ad per category. The storage layer
	// (or the OSN provider) sees opaque tags and ciphertext only.
	categories := map[string]string{
		"#hiking":      "Ad: 20% off trail boots at MountainCo",
		"#photography": "Ad: mirrorless camera launch event",
		"#crypto":      "Ad: post-quantum key management webinar",
		"#gardening":   "Ad: heirloom seed catalog, new season",
	}
	var inventory []*blindsub.Tweet
	fmt.Println("broker publishes encrypted ads (provider-visible view):")
	for cat, ad := range categories {
		tw, err := broker.Publish(cat, []byte(ad))
		if err != nil {
			log.Fatalf("publish: %v", err)
		}
		inventory = append(inventory, tw)
		fmt.Printf("  tag=%x...  body=<%d bytes ciphertext>  (category hidden)\n", tw.Tag[:8], len(tw.Body))
		_ = cat
	}

	// Alice is interested in hiking and photography. She subscribes via
	// BLIND signatures: the broker signs without learning her interests.
	fmt.Println("\nalice subscribes blindly to her interests:")
	var subs []*blindsub.Subscription
	for _, interest := range []string{"#hiking", "#photography"} {
		sub, err := blindsub.Subscribe(broker, interest)
		if err != nil {
			log.Fatalf("subscribe: %v", err)
		}
		subs = append(subs, sub)
		fmt.Printf("  subscribed to %s (broker saw only a blinded element)\n", interest)
	}

	// On-device matching: alice filters the inventory locally.
	fmt.Println("\non-device ad matching (nothing reported back):")
	for _, tw := range inventory {
		for _, sub := range subs {
			if sub.Matches(tw) {
				ad, err := sub.Open(tw)
				if err != nil {
					log.Fatalf("open: %v", err)
				}
				fmt.Printf("  matched %s -> %q\n", sub.Hashtag, ad)
			}
		}
	}

	// What each party learned.
	fmt.Println("\ninformation flow summary:")
	fmt.Println("  broker:   signed two blinded elements; cannot link them to categories or to alice's views")
	fmt.Println("  provider: stored 4 (tag, ciphertext) pairs; learned no interests, no matches")
	fmt.Println("  alice:    decrypted exactly the ads for her interests, locally")
}
