// Privacy-scheme comparison: the paper's party-invitation scenario run under
// all six Table-I data-privacy mechanisms, printing cost, ciphertext size,
// and revocation behaviour side by side.
//
//	go run ./examples/privacyschemes
package main

import (
	"fmt"
	"log"
	"time"

	"godosn/internal/crypto/abe"
	"godosn/internal/crypto/ibe"
	"godosn/internal/crypto/pubkey"
	"godosn/internal/social/identity"
	"godosn/internal/social/privacy"
)

const invitation = "Come to my party held at my home on Friday"

func main() {
	registry := identity.NewRegistry()
	var members []*identity.User
	for _, name := range []string{"alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi"} {
		u, err := identity.NewUser(name)
		if err != nil {
			log.Fatalf("creating user: %v", err)
		}
		if err := registry.Register(u); err != nil {
			log.Fatalf("registering: %v", err)
		}
		members = append(members, u)
	}

	fmt.Println("Bob invites 8 friends to a party, under each Table-I scheme:")
	fmt.Printf("%-14s %-12s %-12s %-10s %-22s\n", "scheme", "encrypt", "decrypt", "ct bytes", "revoking one member")

	for _, scheme := range []privacy.Scheme{
		privacy.SchemeSubstitution, privacy.SchemeSymmetric, privacy.SchemePublicKey,
		privacy.SchemeABE, privacy.SchemeIBBE, privacy.SchemeHybrid,
	} {
		group, err := build(scheme, registry)
		if err != nil {
			log.Fatalf("%s: %v", scheme, err)
		}
		for _, m := range members {
			if err := group.Add(m.Name); err != nil {
				log.Fatalf("%s add: %v", scheme, err)
			}
		}
		start := time.Now()
		env, err := group.Encrypt([]byte(invitation))
		if err != nil {
			log.Fatalf("%s encrypt: %v", scheme, err)
		}
		encCost := time.Since(start)

		start = time.Now()
		got, err := group.Decrypt(members[0], env)
		if err != nil {
			log.Fatalf("%s decrypt: %v", scheme, err)
		}
		decCost := time.Since(start)
		if string(got) != invitation {
			log.Fatalf("%s round trip mismatch", scheme)
		}

		// Revoke heidi and describe what it cost.
		report, err := group.Remove("heidi")
		if err != nil {
			log.Fatalf("%s remove: %v", scheme, err)
		}
		revocation := "free (list update only)"
		if !report.Free {
			revocation = fmt.Sprintf("re-encrypted %d, re-keyed %d", report.ReencryptedEnvelopes, report.RekeyedMembers)
		}
		fmt.Printf("%-14s %-12s %-12s %-10d %-22s\n",
			scheme, encCost.Round(time.Microsecond), decCost.Round(time.Microsecond),
			env.Size(), revocation)
	}

	// The substitution scheme's special property: what outsiders see.
	fmt.Println("\ninformation substitution detail (NOYB-style):")
	dict := privacy.NewDictionary()
	sub, err := privacy.NewSubstitutionGroup("subst", dict, [][]byte{[]byte("Pizza night at Joe's on Monday")})
	if err != nil {
		log.Fatal(err)
	}
	sub.Add("alice")
	env, err := sub.Encrypt([]byte(invitation))
	if err != nil {
		log.Fatal(err)
	}
	fake, _ := privacy.FakeView(env)
	fmt.Printf("  the service provider sees: %q\n", fake)
	got, err := sub.Decrypt(memberNamed(members, "alice"), env)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  a group member recovers:   %q\n", got)

	// ABE's special property: policy-based audiences.
	fmt.Println("\nattribute-based detail (Persona/Cachet-style):")
	auth, err := abe.NewAuthority()
	if err != nil {
		log.Fatal(err)
	}
	abeGroup, err := privacy.NewABEGroup("policy-group", auth, "(relative OR (friend AND doctor))")
	if err != nil {
		log.Fatal(err)
	}
	abeGroup.AddWithAttributes("alice", "relative")
	abeGroup.AddWithAttributes("bob", "friend", "doctor")
	abeGroup.AddWithAttributes("carol", "friend")
	env2, err := abeGroup.Encrypt([]byte(invitation))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  policy: %s\n", abeGroup.Policy())
	for _, name := range []string{"alice", "bob", "carol"} {
		u := memberNamed(members, name)
		if _, err := abeGroup.Decrypt(u, env2); err != nil {
			fmt.Printf("  %s (%v): DENIED\n", name, abeGroup.MemberAttributes(name))
		} else {
			fmt.Printf("  %s (%v): can read\n", name, abeGroup.MemberAttributes(name))
		}
	}
}

func build(scheme privacy.Scheme, registry *identity.Registry) (privacy.Group, error) {
	switch scheme {
	case privacy.SchemeSubstitution:
		return privacy.NewSubstitutionGroup("g", privacy.NewDictionary(),
			[][]byte{[]byte("Gym session on Tuesday")})
	case privacy.SchemeSymmetric:
		return privacy.NewSymmetricGroup("g")
	case privacy.SchemePublicKey:
		return privacy.NewPublicKeyGroup("g", registry), nil
	case privacy.SchemeABE:
		auth, err := abe.NewAuthority()
		if err != nil {
			return nil, err
		}
		return privacy.NewABEGroup("g", auth, "(partygoer)")
	case privacy.SchemeIBBE:
		pkg, err := ibe.NewPKG()
		if err != nil {
			return nil, err
		}
		return privacy.NewIBBEGroup("g", pkg), nil
	case privacy.SchemeHybrid:
		owner, err := pubkey.NewSigningKeyPair()
		if err != nil {
			return nil, err
		}
		return privacy.NewHybridGroup("g", registry, owner)
	}
	return nil, fmt.Errorf("unknown scheme %q", scheme)
}

func memberNamed(members []*identity.User, name string) *identity.User {
	for _, m := range members {
		if m.Name == name {
			return m
		}
	}
	return nil
}
