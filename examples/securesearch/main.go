// Secure social search: Alice wants to find her old friend Carol and read
// her profile without the relationship being disclosed "to service provider,
// or in the case of DOSN, to the intermediate nodes participating in the
// search" (paper Section I). This example composes all four Table-I search
// mechanisms:
//
//  1. searcher privacy   — the query travels through trusted friends
//
//  2. owner privacy      — the index exposes resource handles, not data
//
//  3. access proof       — Alice dereferences pseudonymously with a ZKP
//
//  4. trusted results    — candidates are trust-chain ranked
//
//     go run ./examples/securesearch
package main

import (
	"fmt"
	"log"

	"godosn/internal/search/friendnet"
	"godosn/internal/search/handles"
	"godosn/internal/search/trustrank"
	"godosn/internal/search/zkpauth"
	"godosn/internal/social/graph"
)

func main() {
	// Social graph: alice -- bob -- {carol, carla, carol2}, with varying
	// trust; three candidates match the name search "carol".
	g := graph.New()
	for _, u := range []string{"alice", "bob", "dana", "carol", "carla", "carol2"} {
		g.AddUser(u)
	}
	g.Befriend("alice", "bob", 0.95)
	g.Befriend("alice", "dana", 0.5)
	g.Befriend("bob", "carol", 0.9)
	g.Befriend("dana", "carla", 0.9)
	g.Befriend("dana", "carol2", 0.2)

	// Step 1 — handle index (owner privacy, V-C): owners decide what is
	// searchable. Carol publishes a handle, not her data.
	ix := handles.NewIndex()
	ix.Publish("carol:profile", "carol — privacy researcher, likes hiking",
		func(requester string) bool { return requester != "" }) // gate below via ZKP
	ix.Publish("carla:profile", "carla — photographer", nil)
	ix.Publish("carol2:profile", "carol2 — crypto spam", nil)

	fmt.Println("alice searches the handle index for \"car\":")
	hits := ix.Search("car")
	for _, h := range hits {
		fmt.Printf("  found handle: %s\n", h)
	}

	// Step 2 — trusted search result (V-D): rank the candidates by chained
	// trust from alice.
	ranker := trustrank.New(g, trustrank.DefaultConfig())
	ranker.SetPopularity("carol", 120)
	ranker.SetPopularity("carla", 80)
	ranker.SetPopularity("carol2", 3000) // spammy but popular
	ranked := ranker.Rank("alice", []string{"carol", "carla", "carol2"})
	fmt.Println("\ntrust-chain ranking of candidates:")
	for i, c := range ranked {
		fmt.Printf("  %d. %-7s score=%.3f  chain=%v (trust %.2f)\n",
			i+1, c.User, c.Score, c.Chain, c.ChainTrust)
	}
	best := ranked[0].User

	// Step 3 — searcher privacy (V-B): route the profile request to the
	// best candidate through trusted friends; record who learned what.
	fn := friendnet.New(g)
	fn.Publish(best, "profile-location", "node-42/carol-profile")
	res, err := fn.Query("alice", best, "profile-location", 0)
	if err != nil {
		log.Fatalf("friend routing: %v", err)
	}
	fmt.Printf("\nfriend-routed request to %s (%d hops):\n", best, res.Hops)
	for _, obs := range res.Observations {
		fmt.Printf("  %-6s saw the request coming from %q\n", obs.Node, obs.SawRequestFrom)
	}
	fmt.Printf("  nodes able to identify alice as the searcher: %v\n",
		friendnet.SearcherVisibleTo(res, "alice"))

	// Step 4 — pseudonymous dereference with a ZKP (V-B + V-C): alice holds
	// a credential carol authorized for her friends; she proves possession
	// without revealing which friend she is.
	owner := zkpauth.NewOwner()
	owner.Publish("carol:profile", "carol — privacy researcher, likes hiking")
	aliceCred, err := zkpauth.NewCredential()
	if err != nil {
		log.Fatalf("credential: %v", err)
	}
	owner.Authorize(aliceCred.Statement())

	req, err := aliceCred.NewRequest("carol:profile")
	if err != nil {
		log.Fatalf("request: %v", err)
	}
	profile, err := owner.Serve(req)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	fmt.Printf("\npseudonymous dereference as %q succeeded:\n  %s\n", req.Pseudonym, profile)

	// An eavesdropper who learned the whitelisted statement cannot forge.
	eve, _ := zkpauth.NewCredential()
	forged, _ := eve.NewRequest("carol:profile")
	forged.Statement = aliceCred.Statement()
	if _, err := owner.Serve(forged); err != nil {
		fmt.Printf("eve replaying alice's public credential image: rejected (%v)\n", err)
	}

	fmt.Println("\ncarol's view of the accesses (pseudonyms + credential images only):")
	for _, obs := range owner.Observations() {
		fmt.Printf("  %s used credential %s... granted=%v\n",
			obs.Pseudonym, obs.StatementHex[:12], obs.Granted)
	}
}
